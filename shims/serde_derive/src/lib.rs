//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! Derives the shim `serde::Serialize` / `serde::Deserialize` traits for
//! the shapes the workspace actually uses: non-generic structs with named
//! fields, tuple structs, and enums with unit / named-field / tuple
//! variants. The generated encoding follows serde's conventions (structs
//! as maps, enums externally tagged, unit variants as bare strings,
//! newtype variants as their inner value) so JSON produced through the
//! shim matches what the real stack would emit for these types.
//!
//! The input item is parsed directly from the token stream — no `syn` /
//! `quote`, since the build environment has no registry access.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// Derives the shim `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = generate_serialize(&item);
    code.parse()
        .unwrap_or_else(|e| panic!("serde_derive generated invalid code: {e}\n{code}"))
}

/// Derives the shim `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = generate_deserialize(&item);
    code.parse()
        .unwrap_or_else(|e| panic!("serde_derive generated invalid code: {e}\n{code}"))
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes and visibility; find `struct` or `enum`.
    let keyword = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute: `#` followed by a bracketed group.
                let _ = tokens.next();
            }
            Some(TokenTree::Ident(ident)) => {
                let text = ident.to_string();
                if text == "pub" {
                    // Possible `pub(crate)` &c.
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            let _ = tokens.next();
                        }
                    }
                } else if text == "struct" || text == "enum" {
                    break text;
                }
                // Other modifiers (e.g. nothing else expected) — skip.
            }
            Some(_) => {}
            None => panic!("serde_derive: no `struct` or `enum` found in input"),
        }
    };

    let name = match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };

    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive shim does not support generic types ({name})");
        }
    }

    let kind = if keyword == "struct" {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("serde_derive: unexpected struct body: {other:?}"),
        }
    } else {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unexpected enum body: {other:?}"),
        }
    };

    Item { name, kind }
}

/// Parses `name: Type, …` field lists, returning the field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    let _ = tokens.next();
                    let _ = tokens.next();
                }
                Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                    let _ = tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            let _ = tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        match tokens.next() {
            Some(TokenTree::Ident(ident)) => fields.push(ident.to_string()),
            None => break,
            other => panic!("serde_derive: expected field name, found {other:?}"),
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:`, found {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        loop {
            match tokens.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == '<' {
                        angle_depth += 1;
                    } else if c == '>' {
                        angle_depth -= 1;
                    } else if c == ',' && angle_depth == 0 {
                        let _ = tokens.next();
                        break;
                    }
                    let _ = tokens.next();
                }
                Some(_) => {
                    let _ = tokens.next();
                }
            }
        }
    }
    fields
}

/// Counts top-level comma-separated entries of a tuple field list.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut angle_depth = 0i32;
    for token in stream {
        match token {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == '<' {
                    angle_depth += 1;
                } else if c == '>' {
                    angle_depth -= 1;
                } else if c == ',' && angle_depth == 0 {
                    count += 1;
                    saw_tokens = false;
                    continue;
                }
                saw_tokens = true;
            }
            _ => saw_tokens = true,
        }
    }
    if saw_tokens {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes (doc comments, `#[default]`, …).
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    let _ = tokens.next();
                    let _ = tokens.next();
                }
                _ => break,
            }
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                let _ = tokens.next();
                Shape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                let _ = tokens.next();
                Shape::Tuple(arity)
            }
            _ => Shape::Unit,
        };
        variants.push(Variant { name, shape });
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => break,
            other => panic!("serde_derive: expected `,` between variants, found {other:?}"),
        }
    }
    variants
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn named_fields_to_map(fields: &[String], access_prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::serialize(&{access_prefix}{f}))"
            )
        })
        .collect();
    format!("::serde::Content::Map(::std::vec![{}])", entries.join(", "))
}

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => named_fields_to_map(fields, "self."),
        Kind::TupleStruct(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "::serde::Content::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Content::Str(::std::string::String::from(\"{vname}\"))"
                        ),
                        Shape::Named(fields) => {
                            let bindings = fields.join(", ");
                            let inner = named_fields_to_map(fields, "");
                            format!(
                                "{name}::{vname} {{ {bindings} }} => ::serde::Content::Map(\
                                 ::std::vec![(::std::string::String::from(\"{vname}\"), {inner})])"
                            )
                        }
                        Shape::Tuple(arity) => {
                            let bindings: Vec<String> =
                                (0..*arity).map(|i| format!("__t{i}")).collect();
                            let inner = if *arity == 1 {
                                "::serde::Serialize::serialize(__t0)".to_string()
                            } else {
                                let items: Vec<String> = bindings
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::serialize({b})"))
                                    .collect();
                                format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vname}({}) => ::serde::Content::Map(\
                                 ::std::vec![(::std::string::String::from(\"{vname}\"), {inner})])",
                                bindings.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

fn named_fields_from_map(fields: &[String], map_var: &str) -> String {
    fields
        .iter()
        .map(|f| {
            format!("{f}: ::serde::Deserialize::deserialize(::serde::field({map_var}, \"{f}\")?)?,")
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn generate_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let build = named_fields_from_map(fields, "__map");
            format!(
                "let __map = __content.as_map().ok_or_else(|| \
                 ::serde::Error::custom(\"expected map for struct {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {build} }})"
            )
        }
        Kind::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__content)?))"
        ),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __content.as_seq().ok_or_else(|| \
                 ::serde::Error::custom(\"expected sequence for struct {name}\"))?;\n\
                 if __items.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::Error::custom(\"wrong tuple length for {name}\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| {
                    format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),",
                        vname = v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => None,
                        Shape::Named(fields) => {
                            let build = named_fields_from_map(fields, "__fields");
                            Some(format!(
                                "\"{vname}\" => {{ let __fields = __inner.as_map()\
                                 .ok_or_else(|| ::serde::Error::custom(\
                                 \"expected map for variant {name}::{vname}\"))?; \
                                 ::std::result::Result::Ok({name}::{vname} {{ {build} }}) }}"
                            ))
                        }
                        Shape::Tuple(1) => Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::deserialize(__inner)?))"
                        )),
                        Shape::Tuple(arity) => {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!("::serde::Deserialize::deserialize(&__items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{ let __items = __inner.as_seq()\
                                 .ok_or_else(|| ::serde::Error::custom(\
                                 \"expected sequence for variant {name}::{vname}\"))?; \
                                 if __items.len() != {arity} {{ \
                                 return ::std::result::Result::Err(::serde::Error::custom(\
                                 \"wrong tuple length for {name}::{vname}\")); }} \
                                 ::std::result::Result::Ok({name}::{vname}({})) }}",
                                items.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __content {{\n\
                     ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                         {unit}\n\
                         __other => ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"unknown unit variant `{{__other}}` for {name}\"))),\n\
                     }},\n\
                     _ => {{\n\
                         let __map = __content.as_map().ok_or_else(|| \
                         ::serde::Error::custom(\"expected string or map for enum {name}\"))?;\n\
                         if __map.len() != 1 {{ return ::std::result::Result::Err(\
                         ::serde::Error::custom(\"expected single-key map for enum {name}\")); }}\n\
                         let (__tag, __inner) = &__map[0];\n\
                         match __tag.as_str() {{\n\
                             {tagged}\n\
                             __other => ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit = unit_arms.join("\n"),
                tagged = tagged_arms.join(",\n"),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize(__content: &::serde::Content) \
             -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}
