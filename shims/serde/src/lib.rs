//! Offline stand-in for the [`serde`](https://crates.io/crates/serde)
//! serialization framework.
//!
//! The build environment has no network access, so the workspace vendors
//! a *much* simpler model than real serde: [`Serialize`] renders a value
//! into the self-describing [`Content`] tree and [`Deserialize`] rebuilds
//! a value from one. `serde_json` (also shimmed) converts `Content` to
//! and from JSON text with serde's standard conventions — maps for
//! structs, externally tagged enums (`{"V":{"data":1,"control":0}}`),
//! bare strings for unit variants — so the pinned-layout tests in the
//! workspace see the same JSON the real stack would produce. The
//! `derive` feature re-exports `serde_derive::{Serialize, Deserialize}`,
//! which generate impls of these traits. Swap these path dependencies
//! for the real crates-io stack once the registry is reachable; no
//! workspace code needs to change.

#![forbid(unsafe_code)]

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the shim's entire data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` / Rust `Option::None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer that does not fit in `i64`’s positive range
    /// or that was produced from an unsigned source.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string (also used for unit enum variants).
    Str(String),
    /// A sequence.
    Seq(Vec<Content>),
    /// A map with string keys, in insertion order (structs, struct
    /// variants and the externally-tagged enum wrapper).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The text if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(text) => Some(text),
            _ => None,
        }
    }

    /// A short description of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) => "integer",
            Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// A (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with the given message.
    pub fn custom(message: impl fmt::Display) -> Self {
        Error {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Values renderable into [`Content`].
pub trait Serialize {
    /// Renders `self` as a content tree.
    fn serialize(&self) -> Content;
}

/// Values rebuildable from [`Content`].
///
/// The lifetime parameter exists only for signature compatibility with
/// real serde (`for<'de> Deserialize<'de>` bounds in downstream code).
pub trait Deserialize<'de>: Sized {
    /// Rebuilds a value from a content tree.
    fn deserialize(content: &Content) -> Result<Self, Error>;
}

/// Looks up a struct field in a serialized map.
pub fn field<'a>(entries: &'a [(String, Content)], key: &str) -> Result<&'a Content, Error> {
    entries
        .iter()
        .find(|(name, _)| name == key)
        .map(|(_, value)| value)
        .ok_or_else(|| Error::custom(format!("missing field `{key}`")))
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::I64(*self as i64)
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn deserialize(content: &Content) -> Result<Self, Error> {
                let wide: i128 = match content {
                    Content::I64(n) => *n as i128,
                    Content::U64(n) => *n as i128,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}
impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::U64(*self as u64)
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn deserialize(content: &Content) -> Result<Self, Error> {
                let wide: i128 = match content {
                    Content::I64(n) => *n as i128,
                    Content::U64(n) => *n as i128,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}
impl_serde_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn serialize(&self) -> Content {
        Content::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Content {
        Content::F64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::F64(x) => Ok(*x),
            Content::I64(n) => Ok(*n as f64),
            Content::U64(n) => Ok(*n as f64),
            other => Err(Error::custom(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn serialize(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(text) => Ok(text.clone()),
            other => Err(Error::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::custom(format!(
                "expected sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Content {
        match self {
            None => Content::Null,
            Some(value) => value.serialize(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+),)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Content {
                Content::Seq(vec![$(self.$idx.serialize()),+])
            }
        }

        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize(content: &Content) -> Result<Self, Error> {
                let items = content.as_seq().ok_or_else(|| {
                    Error::custom(format!("expected sequence, found {}", content.kind()))
                })?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected {expected}-tuple, found {} elements",
                        items.len()
                    )));
                }
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
}
