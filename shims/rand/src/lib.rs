//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the *tiny* slice of the `rand 0.8` API it actually uses: the [`Rng`] /
//! [`SeedableRng`] traits and a deterministic [`rngs::StdRng`]. The
//! generator is SplitMix64 — more than good enough for test sampling and
//! the Section 4 demos, and fully deterministic per seed. Swap this path
//! dependency for the real crates-io `rand` once the registry is
//! reachable; no workspace code needs to change.

#![forbid(unsafe_code)]

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution
    /// (uniform over the type's range; `f64` is uniform in `[0, 1)`).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::from_word(self.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the standard distribution via [`Rng::gen`].
///
/// Every supported type is derived from a single uniform 64-bit word.
pub trait SampleStandard: Sized {
    /// Maps one uniform word to a value.
    fn from_word(word: u64) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn from_word(word: u64) -> Self {
                word as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for bool {
    fn from_word(word: u64) -> Self {
        word & 1 == 1
    }
}

impl SampleStandard for f64 {
    fn from_word(word: u64) -> Self {
        // 53 high bits → uniform in [0, 1), the standard float recipe.
        (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand`'s
    /// `StdRng`. Not cryptographic; plenty for tests and demos.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..4096 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 4096.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 1/2");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn roll<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let x = roll(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
