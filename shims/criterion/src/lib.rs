//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of the criterion 0.5 API its six bench targets use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`] / [`BenchmarkGroup::sample_size`],
//! [`BenchmarkId`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Instead of criterion's statistics it runs
//! each closure `sample_size` times and prints the mean wall-clock time —
//! enough to keep benches compiling, runnable and comparable. Swap this
//! path dependency for the real crates-io `criterion` once the registry
//! is reachable; no bench code needs to change.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver handed to each `criterion_group!` target.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("benchmark group `{name}`");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_one(&format!("{id}"), self.default_sample_size, &mut f);
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) {
        let sample_size = self.sample_size;
        let name = format!("{}/{}", self.name, id);
        run_one(&name, sample_size, &mut |b: &mut Bencher| f(b, input));
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendered after a slash.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `f` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up pass.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iterations += self.samples as u64;
    }
}

fn run_one(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: sample_size,
        elapsed: Duration::ZERO,
        iterations: 0,
    };
    f(&mut bencher);
    if bencher.iterations > 0 {
        let mean = bencher.elapsed / bencher.iterations as u32;
        eprintln!(
            "  {name}: mean {mean:?} over {} iterations",
            bencher.iterations
        );
    } else {
        eprintln!("  {name}: no iterations recorded");
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("counts", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 5), &5u32, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        group.finish();
        assert!(runs >= 3);
    }
}
