//! Offline stand-in for the [`serde_json`](https://crates.io/crates/serde_json)
//! crate: renders the shim [`serde::Content`] model to JSON text and
//! parses JSON text back, following serde's conventions (structs as
//! objects in declaration order, externally tagged enums, unit variants
//! as bare strings). Swap this path dependency for the real crates-io
//! `serde_json` once the registry is reachable; no workspace code needs
//! to change.

#![forbid(unsafe_code)]

use std::fmt;

use serde::{Content, Deserialize, Serialize};

/// A JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(err: serde::Error) -> Self {
        Error::new(err.to_string())
    }
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.serialize(), &mut out)?;
    Ok(out)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: for<'de> Deserialize<'de>>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let content = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::deserialize(&content)?)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_content(content: &Content, out: &mut String) -> Result<(), Error> {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::F64(x) => {
            if !x.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            let text = x.to_string();
            out.push_str(&text);
            if !text.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Content::Str(s) => write_json_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out)?;
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(key, out);
                out.push(':');
                write_content(value, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_json_string(text: &str, out: &mut String) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_whitespace();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => self.parse_literal("null", Content::Null),
            Some(b't') => self.parse_literal("true", Content::Bool(true)),
            Some(b'f') => self.parse_literal("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::new(format!(
                "unexpected character `{}` at offset {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.parse_hex4()?;
                            // A high surrogate must be followed by a low
                            // surrogate escape; anything else is invalid.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                char::from_u32(0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00))
                            } else if (0xDC00..0xE000).contains(&code) {
                                return Err(Error::new("unpaired surrogate"));
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let text = std::str::from_utf8(hex).map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_valid_json_number(text) {
            return Err(Error::new(format!("invalid number `{text}`")));
        }
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Content::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Content::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

/// Checks the JSON number grammar: `-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?`.
/// Rust's `str::parse` is more lenient (leading zeros, `1.`, `.5`), and
/// accepting those here would mask malformed fixtures until the real
/// `serde_json` is swapped back in.
fn is_valid_json_number(text: &str) -> bool {
    let mut bytes = text.as_bytes();
    if let [b'-', rest @ ..] = bytes {
        bytes = rest;
    }
    // Integer part: `0` alone or a non-zero leading digit run.
    let int_len = bytes.iter().take_while(|b| b.is_ascii_digit()).count();
    match int_len {
        0 => return false,
        1 => {}
        _ if bytes[0] == b'0' => return false,
        _ => {}
    }
    bytes = &bytes[int_len..];
    if let [b'.', rest @ ..] = bytes {
        let frac_len = rest.iter().take_while(|b| b.is_ascii_digit()).count();
        if frac_len == 0 {
            return false;
        }
        bytes = &rest[frac_len..];
    }
    if let [b'e' | b'E', rest @ ..] = bytes {
        let rest = match rest {
            [b'+' | b'-', digits @ ..] => digits,
            _ => rest,
        };
        let exp_len = rest.iter().take_while(|b| b.is_ascii_digit()).count();
        if exp_len == 0 {
            return false;
        }
        bytes = &rest[exp_len..];
    }
    bytes.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_containers() {
        assert_eq!(to_string(&3i64).unwrap(), "3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&vec![1u32, 2, 3]).unwrap(), "[1,2,3]");
        let v: Vec<u32> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let s: String = from_str(r#""a\nbA""#).unwrap();
        assert_eq!(s, "a\nbA");
        let n: i64 = from_str("-42").unwrap();
        assert_eq!(n, -42);
    }

    #[test]
    fn string_escaping_roundtrips() {
        let original = "quote \" slash \\ newline \n tab \t unicode é".to_string();
        let json = to_string(&original).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<i64>("1 x").is_err());
    }

    #[test]
    fn rejects_malformed_numbers() {
        assert!(from_str::<i64>("007").is_err());
        assert!(from_str::<f64>("1.").is_err());
        assert!(from_str::<f64>("1e").is_err());
        assert!(from_str::<i64>("-").is_err());
        assert!(from_str::<f64>("-0.5e+2").is_ok());
        assert!(from_str::<i64>("0").is_ok());
    }

    #[test]
    fn rejects_invalid_surrogates() {
        // Unpaired high surrogate followed by a non-surrogate escape.
        assert!(from_str::<String>(r#""\uD834A""#).is_err());
        // Unpaired high surrogate at end of string.
        assert!(from_str::<String>(r#""\uD834""#).is_err());
        // Lone low surrogate.
        assert!(from_str::<String>(r#""\uDC00""#).is_err());
        // A valid escaped pair decodes (U+1D11E, musical G clef).
        let s: String = from_str("\"\\uD834\\uDD1E\"").unwrap();
        assert_eq!(s, "\u{1D11E}");
    }
}
