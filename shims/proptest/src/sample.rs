//! Sampling strategies (`prop::sample::select`).

use std::fmt::Debug;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy choosing uniformly from a fixed list.
#[derive(Debug, Clone)]
pub struct Select<T> {
    items: Vec<T>,
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.items[rng.below(self.items.len() as u64) as usize].clone()
    }
}

/// Uniformly selects one of `items` (which must be non-empty).
pub fn select<T: Clone + Debug>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select requires at least one item");
    Select { items }
}
