//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive-exclusive length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max_exclusive: exact + 1,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(range: std::ops::Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            min: range.start,
            max_exclusive: range.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(range: std::ops::RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty size range");
        SizeRange {
            min: *range.start(),
            max_exclusive: *range.end() + 1,
        }
    }
}

/// A strategy for `Vec`s whose elements come from `element`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_exclusive - self.size.min) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec`s of `size` elements drawn from `element`; `size` may be an exact
/// count or a range.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
