//! The [`Strategy`] trait, primitive strategies and combinators.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy simply draws a fresh value from the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy producing `f(value)` for generated `value`s.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// A strategy that feeds each generated value into `f` to obtain the
    /// strategy that produces the final value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// A strategy that shuffles the generated collection uniformly.
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
        Self::Value: Shuffleable,
    {
        Shuffle { source: self }
    }
}

/// Collections that can be shuffled in place by [`Strategy::prop_shuffle`].
pub trait Shuffleable: Debug {
    /// Uniformly permutes the elements.
    fn shuffle(&mut self, rng: &mut TestRng);
}

impl<T: Debug> Shuffleable for Vec<T> {
    fn shuffle(&mut self, rng: &mut TestRng) {
        // Fisher–Yates.
        for i in (1..self.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_shuffle`].
#[derive(Debug, Clone)]
pub struct Shuffle<S> {
    source: S,
}

impl<S> Strategy for Shuffle<S>
where
    S: Strategy,
    S::Value: Shuffleable,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let mut value = self.source.generate(rng);
        value.shuffle(rng);
        value
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.in_range_i128(self.start as i128, self.end as i128 - 1) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.in_range_i128(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
