//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of the proptest 1.x API its five property suites use:
//! the [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_flat_map` / `prop_shuffle`, integer-range and tuple strategies,
//! [`Just`](strategy::Just), [`any`](arbitrary::any),
//! `prop::collection::vec`, `prop::sample::select`, the [`proptest!`]
//! macro (including `#![proptest_config(..)]`), and the
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] macros.
//!
//! Semantics: each test generates `ProptestConfig::cases` random inputs
//! from a deterministic seed and reports the first failing input verbatim.
//! There is **no shrinking** — failures print the full generated value
//! instead. Swap this path dependency for the real crates-io `proptest`
//! once the registry is reachable; no test code needs to change.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Declares property tests: `#[test] fn name(pat in strategy, …) { body }`
/// items, optionally preceded by `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                let strategy = ($($strat,)*);
                let outcome = runner.run(&strategy, |($($pat,)*)| {
                    $body
                    ::core::result::Result::Ok(())
                });
                if let ::core::result::Result::Err(err) = outcome {
                    ::std::panic!("{}", err);
                }
            }
        )*
    };
}

/// Fails the enclosing property test when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Fails the enclosing property test when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            __l,
                            __r
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
                            stringify!($left),
                            stringify!($right),
                            __l,
                            __r,
                            ::std::format!($($fmt)+)
                        ),
                    ));
                }
            }
        }
    };
}

/// Fails the enclosing property test when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `{} != {}`\n  both: {:?}",
                            stringify!($left),
                            stringify!($right),
                            __l
                        ),
                    ));
                }
            }
        }
    };
}
