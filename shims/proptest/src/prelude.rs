//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate::arbitrary::any;
pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

pub use crate as prop;
