//! Deterministic case generation and the test runner.

use std::fmt;

use crate::strategy::Strategy;

/// Deterministic SplitMix64 word source driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with the given seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// A uniform value in the inclusive range `[lo, hi]`.
    pub fn in_range_i128(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi);
        let span = (hi - lo + 1) as u128;
        let word = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        lo + (word % span) as i128
    }
}

/// Test configuration; only `cases` is honoured by this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random inputs each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A single test-case failure (produced by the `prop_assert*` macros).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property did not hold; the message explains why.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(message) => f.write_str(message),
        }
    }
}

/// What a property-test body returns.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A whole-run failure, reported with the offending input.
#[derive(Debug)]
pub struct TestError(String);

impl fmt::Display for TestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestError {}

/// Generates inputs and checks the property against each.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    /// A runner with a fixed, deterministic seed.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner {
            config,
            rng: TestRng::seed_from_u64(0x00C0_FFEE_5EED_CAFE),
        }
    }

    /// Runs `test` against `config.cases` generated inputs; stops at the
    /// first failure and reports the input that triggered it.
    pub fn run<S, F>(&mut self, strategy: &S, test: F) -> Result<(), TestError>
    where
        S: Strategy,
        F: Fn(S::Value) -> TestCaseResult,
    {
        for case in 0..self.config.cases {
            let value = strategy.generate(&mut self.rng);
            let rendered = format!("{value:?}");
            if let Err(err) = test(value) {
                return Err(TestError(format!(
                    "property failed at case {case}/{}: {err}\n  input: {rendered}",
                    self.config.cases
                )));
            }
        }
        Ok(())
    }
}
