//! Consistency of the MCE front-ends across engine states and strategies:
//! a warm engine (levels cached past the query bound) must agree with a
//! cold one for every cost bound, and the bidirectional (meet-in-the-
//! middle) search must report costs and implementation counts identical
//! to the paper's unidirectional formulation.

use std::sync::{Mutex, OnceLock};

use mvq_core::{known, Circuit, SynthesisEngine};
use mvq_logic::{Gate, GateLibrary, Pattern};
use mvq_perm::Perm;
use proptest::prelude::*;

/// A shared engine pre-expanded to cost 5 — "warm" relative to every
/// bound the property tests query.
fn warm_engine() -> &'static Mutex<SynthesisEngine> {
    static ENGINE: OnceLock<Mutex<SynthesisEngine>> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let mut e = SynthesisEngine::unit_cost();
        e.expand_to_cost(5);
        Mutex::new(e)
    })
}

/// A shared engine for bidirectional queries (forward levels shared).
fn bidi_engine() -> &'static Mutex<SynthesisEngine> {
    static ENGINE: OnceLock<Mutex<SynthesisEngine>> = OnceLock::new();
    ENGINE.get_or_init(|| Mutex::new(SynthesisEngine::unit_cost()))
}

/// Builds a random cascade that respects the reasonable-product
/// constraint (same construction as the cross-crate property suite).
fn reasonable_cascade(choices: &[u8]) -> Vec<Gate> {
    let lib = GateLibrary::standard(3);
    let domain = lib.domain();
    let mut patterns: Vec<Pattern> = lib
        .binary_set()
        .iter()
        .map(|&i| domain.pattern(i).clone())
        .collect();
    let mut gates = Vec::new();
    for &c in choices {
        let image_mask: u64 = patterns
            .iter()
            .map(|p| 1u64 << (domain.index(p).expect("in domain") - 1))
            .sum();
        let allowed: Vec<Gate> = lib
            .gates()
            .iter()
            .filter(|lg| lg.is_reasonable_after(image_mask))
            .map(|lg| lg.gate())
            .collect();
        if allowed.is_empty() {
            break;
        }
        let gate = allowed[c as usize % allowed.len()];
        for p in &mut patterns {
            *p = gate.apply(p);
        }
        gates.push(gate);
    }
    gates
}

/// A uniformly random permutation of `{1, …, 8}` from raw entropy bytes.
fn random_perm(entropy: &[u8]) -> Perm {
    let mut images: Vec<usize> = (1..=8).collect();
    for i in (1..images.len()).rev() {
        let j = entropy[i % entropy.len()] as usize % (i + 1);
        images.swap(i, j);
    }
    Perm::from_images(&images).expect("shuffle is a bijection")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn warm_and_cold_agree_on_reachable_targets(
        choices in prop::collection::vec(any::<u8>(), 0..6)
    ) {
        // Targets built from reasonable cascades are reachable within
        // cost 5, so every bound 0..=5 crosses the interesting boundary
        // between "below minimal cost" and "at or above it".
        let gates = reasonable_cascade(&choices);
        let circuit = Circuit::new(3, gates);
        if let Some(target) = circuit.binary_perm() {
            let mut cold = SynthesisEngine::unit_cost();
            let mut warm = warm_engine().lock().expect("no poisoning");
            for cb in 0..=5u32 {
                // Ascending bounds keep `cold` exactly as expanded as a
                // fresh engine queried once with this bound would be.
                prop_assert_eq!(
                    warm.minimal_cost(&target, cb),
                    cold.minimal_cost(&target, cb),
                    "cb = {}", cb
                );
            }
        }
    }

    #[test]
    fn warm_and_cold_agree_on_arbitrary_targets(
        entropy in prop::collection::vec(any::<u8>(), 8)
    ) {
        // Fully random permutations of the 8 binary patterns are usually
        // *not* reachable within small bounds, so both engines must agree
        // on `None` too.
        let target = random_perm(&entropy);
        let mut cold = SynthesisEngine::unit_cost();
        let mut warm = warm_engine().lock().expect("no poisoning");
        for cb in 0..=3u32 {
            prop_assert_eq!(
                warm.minimal_cost(&target, cb),
                cold.minimal_cost(&target, cb),
                "cb = {}", cb
            );
        }
    }

    #[test]
    fn bidirectional_agrees_with_unidirectional(
        choices in prop::collection::vec(any::<u8>(), 0..6)
    ) {
        let gates = reasonable_cascade(&choices);
        let circuit = Circuit::new(3, gates);
        if let Some(target) = circuit.binary_perm() {
            let mut uni = warm_engine().lock().expect("no poisoning");
            let mut bidi = bidi_engine().lock().expect("no poisoning");
            for cb in 0..=5u32 {
                let a = uni.synthesize(&target, cb);
                let b = bidi.synthesize_bidirectional(&target, cb);
                prop_assert_eq!(
                    a.as_ref().map(|s| (s.cost, s.implementation_count)),
                    b.as_ref().map(|s| (s.cost, s.implementation_count)),
                    "cb = {}", cb
                );
                if let Some(syn) = &b {
                    prop_assert!(syn.circuit.verify_against_binary_perm(&target));
                }
            }
        }
    }

    #[test]
    fn quaternary_count_matches_class_witness_count(
        choices in prop::collection::vec(any::<u8>(), 1..5)
    ) {
        // For a NOT-free reversible target, the Section 4 front-end must
        // report the same number of minimal implementations as the class
        // search (the paper's Peres = 2 / Toffoli = 4 accounting).
        let gates = reasonable_cascade(&choices);
        let circuit = Circuit::new(3, gates);
        if let Some(target) = circuit.binary_perm() {
            let images: Vec<usize> = (1..=8).map(|p| target.image(p)).collect();
            let mut warm = warm_engine().lock().expect("no poisoning");
            let direct = warm.synthesize(&target, 5).expect("reachable");
            let quaternary = warm
                .synthesize_quaternary(&images, 5)
                .expect("reachable");
            prop_assert_eq!(direct.cost, quaternary.cost);
            prop_assert_eq!(direct.implementation_count, quaternary.implementation_count);
        }
    }
}

#[test]
fn warm_engine_regression_toffoli_bound() {
    // The headline bugfix: a warm engine must return `None` whenever the
    // minimal cost exceeds `cb`, no matter how far the levels reach.
    let mut warm = warm_engine().lock().expect("no poisoning");
    assert_eq!(warm.minimal_cost(&known::toffoli_perm(), 4), None);
    assert!(warm.synthesize(&known::toffoli_perm(), 4).is_none());
    assert!(warm.synthesize_all(&known::toffoli_perm(), 4).is_empty());
    assert_eq!(warm.minimal_cost(&known::toffoli_perm(), 5), Some(5));
}

#[test]
#[ignore = "exhaustive: synthesizes all 1260 classes up to cost 7 both ways; \
            run with --release -- --include-ignored"]
fn bidirectional_matches_unidirectional_on_all_classes_to_cost_7() {
    // Cost 7 is deliberately included: witness counting at that depth
    // regressed once (one canonical suffix per backward trace), and only
    // an exhaustive sweep catches the dozens of affected classes.
    let mut uni = SynthesisEngine::unit_cost();
    let mut bidi = SynthesisEngine::unit_cost();
    for k in 0..=7u32 {
        for (perm, _) in uni.reversible_circuits_at_cost(k) {
            let a = uni.synthesize(&perm, 7).expect("reachable");
            let b = bidi.synthesize_bidirectional(&perm, 7).expect("reachable");
            assert_eq!(a.cost, k, "unidirectional cost of {perm}");
            assert_eq!(b.cost, k, "bidirectional cost of {perm}");
            assert_eq!(
                a.implementation_count, b.implementation_count,
                "witness count of {perm}"
            );
            assert!(b.circuit.verify_against_binary_perm(&perm));
        }
    }
    // The bidirectional engine never had to build the deep levels.
    assert!(uni.a_size() > 10 * bidi.a_size());
}
