//! Smoke test: every example in `examples/` must build and exit 0, so the
//! examples crate can't silently rot. The example list is discovered from
//! the directory (not hardcoded), so a newly added example is covered
//! automatically. Examples run in release mode (the synthesis workloads
//! are painfully slow unoptimized) via the same cargo that is running
//! this test; `census` is pinned to a small cost bound to keep the smoke
//! run quick.

use std::path::Path;
use std::process::Command;

fn workspace_root() -> &'static Path {
    // CARGO_MANIFEST_DIR is `<root>/tests`.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("tests crate lives in the workspace root")
}

/// Extra CLI arguments to keep long-running examples short in a smoke run.
fn smoke_args(example: &str) -> &'static [&'static str] {
    match example {
        "census" => &["4"],
        _ => &[],
    }
}

#[test]
fn every_example_runs_to_completion() {
    let examples_dir = workspace_root().join("examples");
    let mut examples: Vec<String> = std::fs::read_dir(&examples_dir)
        .expect("examples/ directory exists")
        .filter_map(|entry| {
            let path = entry.expect("readable dir entry").path();
            let stem = path.file_stem()?.to_str()?.to_string();
            (path.extension()? == "rs" && stem != "lib").then_some(stem)
        })
        .collect();
    examples.sort();
    assert!(
        examples.len() >= 6,
        "expected the six seed examples, found {examples:?}"
    );

    for example in &examples {
        let output = Command::new(env!("CARGO"))
            .current_dir(workspace_root())
            .args(["run", "--release", "-q", "-p", "mvq-examples", "--example"])
            .arg(example)
            .args(smoke_args(example))
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example `{example}`: {e}"));
        assert!(
            output.status.success(),
            "example `{example}` failed with {:?}\nstdout:\n{}\nstderr:\n{}",
            output.status,
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
    }
}
