//! E8: the group-theoretic backbone — Theorem 2's coset decomposition,
//! |G| = 5040, |S₈| = 40320, and the NOT-group structure.

use std::sync::OnceLock;

use mvq_core::{known, universal};
use mvq_perm::{Group, Perm, StabilizerChain};

/// S8 materialized once for the whole test binary (40320 elements).
fn s8() -> &'static Group {
    static S8: OnceLock<Group> = OnceLock::new();
    S8.get_or_init(|| Group::symmetric(8))
}

#[test]
fn s8_has_order_40320() {
    assert_eq!(s8().order(), 40320);
    // Cross-check via Schreier–Sims.
    let chain = StabilizerChain::new(
        8,
        &[
            "(1,2)".parse::<Perm>().unwrap().extended(8),
            "(1,2,3,4,5,6,7,8)".parse::<Perm>().unwrap(),
        ],
    );
    assert_eq!(chain.order(), 40320);
}

#[test]
fn stabilizer_of_zero_pattern_has_order_5040() {
    // The set G of circuits realizable without NOT gates fixes pattern 1;
    // the paper reports |G| = 5040.
    assert_eq!(s8().point_stabilizer(1).order(), 5040);
}

#[test]
fn feynman_and_peres_generate_the_full_stabilizer() {
    // "G = Groupgeneratedby{FAB, FBA, FBC, FCB, PeAB}, |G| = 5040."
    let g = universal::feynman_peres_group();
    assert_eq!(g.order(), 5040);
    // It is exactly the stabilizer of point 1.
    let stab = s8().point_stabilizer(1);
    assert!(stab.has_subgroup(&g));
    assert_eq!(stab.order(), g.order());
}

#[test]
fn not_group_properties() {
    // N has 2ⁿ elements, every element is an involution, and products of
    // distinct elements are never the identity (Section 3).
    let n = Group::not_group(3);
    assert_eq!(n.order(), 8);
    let elements: Vec<Perm> = n.iter().cloned().collect();
    for a in &elements {
        assert!((a * a).is_identity());
        for b in &elements {
            if a != b {
                assert!(!(a * b).is_identity());
            }
        }
    }
}

#[test]
fn theorem_2_coset_decomposition() {
    // H = ∪_{a∈N} a*G with pairwise-disjoint cosets.
    let g = s8().point_stabilizer(1);
    let n = Group::not_group(3);
    let reps: Vec<Perm> = n.iter().cloned().collect();
    let cosets = s8()
        .coset_decomposition(&g, &reps)
        .expect("N gives a clean transversal of G in S8");
    assert_eq!(cosets.len(), 8);
    assert!(cosets.iter().all(|c| c.len() == 5040));
    // Each coset a*G is characterized by the preimage of point 1: with
    // the paper's apply-left-first product, (a*g)(a(1)) = g(1) = 1.
    for (rep, coset) in reps.iter().zip(&cosets) {
        let dest = rep.image(1);
        assert!(coset.iter().all(|p| p.preimage(1) == dest));
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "canonical-representative scan over all 40320 elements; run with --release"
)]
fn coset_count_is_8() {
    let g = s8().point_stabilizer(1);
    assert_eq!(s8().count_cosets(&g), 8);
}

#[test]
fn every_s8_element_splits_as_not_layer_times_stabilizer() {
    // Constructive form of Theorem 2: for any h ∈ S8 there is a ∈ N with
    // (a * h)(1) = 1, so a*h ∈ G and h = a⁻¹ * (a*h) = a * (a*h).
    let n = Group::not_group(3);
    let samples: Vec<Perm> = vec![
        known::toffoli_perm(),
        known::peres_perm(),
        "(1,5)(2,6)".parse::<Perm>().unwrap().extended(8),
        "(1,8,2,7,3,6,4,5)".parse::<Perm>().unwrap(),
    ];
    for h in samples {
        let a = n
            .iter()
            .find(|a| (*a * &h).image(1) == 1)
            .expect("some NOT layer works");
        let reduced = a * &h;
        assert_eq!(reduced.image(1), 1);
        // a is an involution, so h = a * reduced.
        assert_eq!(a.clone() * reduced, h);
    }
}

#[test]
fn universality_closure_of_each_representative() {
    // The g1–g4 representatives each generate S8 with NOT and Feynman.
    for (name, p) in [
        ("g1", known::peres_perm()),
        ("g2", known::g2_perm()),
        ("g3", known::g3_perm()),
        ("g4", known::g4_perm()),
    ] {
        assert!(
            universal::is_universal_with_not_and_feynman(&p),
            "{name} must be universal"
        );
    }
}

#[test]
fn feynman_closure_is_gl32() {
    // The six CNOT perms generate the linear group GL(3,2), order 168 —
    // the reason Feynman-only circuits are not universal.
    let group = Group::closure(8, &universal::feynman_binary_perms());
    assert_eq!(group.order(), 168);
    // All its elements fix the zero pattern.
    assert!(group.iter().all(|p| p.image(1) == 1));
}

#[test]
fn gl32_ball_profile_validates_the_corrected_table_2() {
    // BFS distance profile of GL(3,2) under the 6 CNOT generators:
    // 1 + 6 + 24 + 51 + 60 + 24 + 2 = 168. This is the independent check
    // behind EXPECTED_TABLE_2's corrected k = 2, 3 entries.
    use std::collections::{HashMap, VecDeque};
    let gens = universal::feynman_binary_perms();
    let mut dist: HashMap<Perm, usize> = HashMap::new();
    let id = Perm::identity(8);
    dist.insert(id.clone(), 0);
    let mut queue = VecDeque::from([id]);
    while let Some(cur) = queue.pop_front() {
        let d = dist[&cur];
        for g in &gens {
            let next = &cur * g;
            if !dist.contains_key(&next) {
                dist.insert(next.clone(), d + 1);
                queue.push_back(next);
            }
        }
    }
    let mut counts = vec![0usize; 7];
    for d in dist.values() {
        counts[*d] += 1;
    }
    assert_eq!(counts, vec![1, 6, 24, 51, 60, 24, 2]);
    assert_eq!(dist.len(), 168);
}
