//! HTTP smoke suite: boots the real `mvq_serve` server on a loopback
//! port and speaks raw HTTP/1.1 to it over `TcpStream` — the in-repo
//! version of the CI serve-smoke job (known Toffoli answer, health
//! probe, clean shutdown).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use mvq_core::SynthesisEngine;
use mvq_serve::{HostConfig, HostRegistry, Server, ServerHandle};

struct RunningServer {
    handle: ServerHandle,
    runner: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl RunningServer {
    fn start(registry: HostRegistry) -> Self {
        let server = Server::bind("127.0.0.1:0", Arc::new(registry)).expect("bind loopback");
        let handle = server.handle().expect("handle");
        let runner = std::thread::spawn(move || server.run(2));
        Self {
            handle,
            runner: Some(runner),
        }
    }

    fn request(&self, method: &str, path: &str, body: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(self.handle.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("timeout");
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(request.as_bytes()).expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("receive");
        let status: u16 = response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad response: {response}"));
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    fn shutdown(mut self) {
        self.handle.shutdown();
        self.runner
            .take()
            .expect("still running")
            .join()
            .expect("server thread")
            .expect("server run");
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        if let Some(runner) = self.runner.take() {
            self.handle.shutdown();
            let _ = runner.join();
        }
    }
}

fn test_config() -> HostConfig {
    HostConfig {
        threads: 1,
        ..HostConfig::default()
    }
}

#[test]
fn endpoints_answer_known_results() {
    let server = RunningServer::start(HostRegistry::new(test_config()));

    let (status, body) = server.request("GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");

    // The known Toffoli answer: cost 5, 4 minimal implementations.
    let (status, body) = server.request("POST", "/synthesize", r#"{"target":"(7,8)","cb":6}"#);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"found\":true"), "{body}");
    assert!(body.contains("\"cost\":5"), "{body}");
    assert!(body.contains("\"implementation_count\":4"), "{body}");

    // Verified Table 2 prefix through the service.
    let (status, body) = server.request("POST", "/census", r#"{"cb":3}"#);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"g_counts\":[1,6,24,51]"), "{body}");

    // An unreachable bound is a definitive not-found, not an error.
    let (status, body) = server.request("POST", "/synthesize", r#"{"target":"(7,8)","cb":4}"#);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"found\":false"), "{body}");

    // Weighted-model routing spins up a second host.
    let (status, body) = server.request(
        "POST",
        "/synthesize",
        r#"{"target":"(5,7,6,8)","cb":8,"model":{"v":2,"v_dagger":2,"feynman":1}}"#,
    );
    assert_eq!(status, 400, "{body}"); // cb 8 over the admission limit
    let (status, body) = server.request(
        "POST",
        "/synthesize",
        r#"{"target":"(5,7,6,8)","cb":7,"model":{"v":2,"v_dagger":2,"feynman":1}}"#,
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"cost\":7"), "{body}");

    let (status, body) = server.request("GET", "/stats", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"models\":2"), "{body}");
    assert!(body.contains("\"cache_hits\""), "{body}");

    server.shutdown();
}

#[test]
fn four_wire_requests_route_to_the_wide_host() {
    let server = RunningServer::start(HostRegistry::new(HostConfig {
        threads: 1,
        max_cost_bound: 3,
        ..HostConfig::default()
    }));

    // The 4-wire CNOT D ^= A: cost 1 through the wide host.
    let (status, body) = server.request(
        "POST",
        "/synthesize",
        r#"{"target":"(9,10)(11,12)(13,14)(15,16)","wires":4,"cb":2}"#,
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"found\":true"), "{body}");
    assert!(body.contains("\"cost\":1"), "{body}");

    // A defaulted (no-cb) wide request clamps its implicit bound to
    // the host's admission limit (3 here) instead of being rejected.
    let (status, body) = server.request(
        "POST",
        "/synthesize",
        r#"{"target":"(9,10)(11,12)(13,14)(15,16)","wires":4}"#,
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"cb\":3"), "{body}");
    assert!(body.contains("\"cost\":1"), "{body}");

    // The 4-wire census prefix.
    let (status, body) = server.request("POST", "/census", r#"{"wires":4,"cb":2}"#);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"g_counts\":[1,12,96]"), "{body}");

    // A 4-wire target given without wires: rejected as a 3-wire parse.
    let (status, body) = server.request(
        "POST",
        "/synthesize",
        r#"{"target":"(9,10)(11,12)(13,14)(15,16)","cb":2}"#,
    );
    assert_eq!(status, 400, "{body}");

    // Unsupported wire counts are a clean 400.
    let (status, body) = server.request("POST", "/census", r#"{"wires":5,"cb":2}"#);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("unsupported wires"), "{body}");

    // Malformed requests never created a host: only the wide one is
    // live so far (a bad target must not cost a model-cap slot).
    let (status, body) = server.request("GET", "/stats", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"models\":1"), "{body}");
    assert!(!body.contains("\"wires\":3"), "{body}");

    // A valid 3-wire request spins up the narrow host alongside.
    let (status, body) = server.request("POST", "/synthesize", r#"{"target":"(7,8)","cb":2}"#);
    assert_eq!(status, 200, "{body}");

    // Stats label each host with its wire count.
    let (status, body) = server.request("GET", "/stats", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"wires\":3"), "{body}");
    assert!(body.contains("\"wires\":4"), "{body}");

    server.shutdown();
}

#[test]
fn oversized_content_length_gets_413_before_any_body_read() {
    let server = RunningServer::start(HostRegistry::new(test_config()));
    let mut stream = TcpStream::connect(server.handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    // Declare a 100 MiB body (over the 1 MiB cap) but send none: the
    // strict validator must answer 413 immediately instead of waiting
    // on (or allocating for) the declared body.
    stream
        .write_all(b"POST /synthesize HTTP/1.1\r\nHost: t\r\nContent-Length: 104857600\r\n\r\n")
        .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    assert!(response.starts_with("HTTP/1.1 413 "), "{response}");

    // A signed Content-Length is malformed: 400.
    let mut stream = TcpStream::connect(server.handle.addr()).expect("connect");
    stream
        .write_all(b"POST /census HTTP/1.1\r\nHost: t\r\nContent-Length: +2\r\n\r\n{}")
        .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    assert!(response.starts_with("HTTP/1.1 400 "), "{response}");

    server.shutdown();
}

#[test]
fn malformed_requests_get_4xx_not_disconnects() {
    // A tight admission limit keeps the default-census check cheap.
    let server = RunningServer::start(HostRegistry::new(HostConfig {
        threads: 1,
        max_cost_bound: 3,
        ..HostConfig::default()
    }));
    let (status, body) = server.request("POST", "/synthesize", "this is not json");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("error"), "{body}");
    let (status, _) = server.request("POST", "/synthesize", r#"{"cb":3}"#);
    assert_eq!(status, 400);
    let (status, _) = server.request("POST", "/synthesize", r#"{"target":"(1,9)"}"#);
    assert_eq!(status, 400);
    let (status, _) = server.request(
        "POST",
        "/synthesize",
        r#"{"target":"(7,8)","model":{"v":0,"v_dagger":1,"feynman":1}}"#,
    );
    assert_eq!(status, 400);
    let (status, _) = server.request("GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, _) = server.request("DELETE", "/healthz", "");
    assert_eq!(status, 405);
    // Explicit census bounds go through admission like /synthesize.
    let (status, body) = server.request("POST", "/census", r#"{"cb":9}"#);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("admission limit"), "{body}");
    // …while the bodyless default is capped by the limit, not rejected.
    let (status, body) = server.request("POST", "/census", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"cb\":3"), "{body}");
    server.shutdown();
}

#[test]
fn snapshot_backed_server_answers_without_expansion() {
    // Pre-build a warm snapshot, boot the service from it, and check the
    // Toffoli answer is served with zero expansions.
    let mut warm = SynthesisEngine::unit_cost_with_threads(1);
    warm.expand_to_cost(5);
    let path = std::env::temp_dir().join(format!("mvq_serve_http_{}.snap", std::process::id()));
    warm.save_snapshot(&path).expect("write snapshot");

    let registry = HostRegistry::new(test_config());
    let engine = SynthesisEngine::load_snapshot_with_threads(&path, 1).expect("load snapshot");
    registry.install(engine).expect("install");
    let server = RunningServer::start(registry);

    let (status, body) = server.request("POST", "/synthesize", r#"{"target":"(7,8)","cb":6}"#);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"cost\":5"), "{body}");
    let (status, body) = server.request("GET", "/stats", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"expansions\":0"), "{body}");
    assert!(body.contains("\"completed\":5"), "{body}");

    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn shutdown_endpoint_stops_the_server() {
    let server = RunningServer::start(HostRegistry::new(test_config()));
    let addr = server.handle.addr();
    let (status, body) = server.request("POST", "/shutdown", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("shutting down"), "{body}");
    // The run loop exits; joining must not hang.
    let mut server = server;
    server
        .runner
        .take()
        .expect("still running")
        .join()
        .expect("server thread")
        .expect("clean exit");
    // New connections are no longer served.
    std::thread::sleep(Duration::from_millis(50));
    let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err();
    assert!(refused, "listener still accepting after shutdown");
}
