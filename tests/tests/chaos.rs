//! Chaos suite: failpoint-driven fault drills against the real server
//! and the snapshot codec (build with `--features fault-injection`).
//!
//! Each test arms an explicit, deterministic plan (`site=action@n` —
//! no ambient randomness), injects the fault, and asserts the
//! robustness contract: the server keeps answering (every request gets
//! a 200 or a 503 + `Retry-After`, never a hang), poisoned hosts
//! rebuild themselves, torn snapshots fall back to the `.bak`, and the
//! post-fault results are bit-identical to an uninjected run.
//!
//! The failpoint registry is process-global, so the tests serialize on
//! a static mutex and disarm through a drop guard (panic-safe).

#![cfg(feature = "fault-injection")]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use mvq_core::{SnapshotSource, SynthesisEngine};
use mvq_serve::{HostConfig, HostRegistry, Server, ServerHandle};

static GATE: Mutex<()> = Mutex::new(());

/// Serializes the tests in this binary: the fault registry is one per
/// process. (A panicking test poisons the gate; later tests proceed.)
fn serial() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arms a plan for the lifetime of the guard; disarms on drop even if
/// the test panics, so no plan leaks into the next test.
struct Armed;

impl Armed {
    fn plan(plan: &str) -> Self {
        mvq_fault::disarm_all();
        mvq_fault::arm(plan).expect("valid fault plan");
        Armed
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        mvq_fault::disarm_all();
    }
}

struct RunningServer {
    handle: ServerHandle,
    runner: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl RunningServer {
    fn start(registry: HostRegistry, workers: usize) -> Self {
        let server = Server::bind("127.0.0.1:0", Arc::new(registry)).expect("bind loopback");
        let handle = server.handle().expect("handle");
        let runner = std::thread::spawn(move || server.run(workers));
        Self {
            handle,
            runner: Some(runner),
        }
    }

    /// One request over its own connection; returns the status and the
    /// full response text (headers included, for `Retry-After` checks).
    fn request(&self, method: &str, path: &str, body: &str) -> (u16, String) {
        raw_request(&self.handle, method, path, body)
    }

    fn shutdown(mut self) {
        self.handle.shutdown();
        self.runner
            .take()
            .expect("still running")
            .join()
            .expect("server thread")
            .expect("server run");
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        if let Some(runner) = self.runner.take() {
            self.handle.shutdown();
            let _ = runner.join();
        }
    }
}

fn raw_request(handle: &ServerHandle, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: chaos\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {response}"));
    (status, response)
}

fn test_config() -> HostConfig {
    HostConfig {
        threads: 1,
        ..HostConfig::default()
    }
}

/// Extracts the first `"key":<u64>` value from a JSON body.
fn json_u64(body: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = body
        .find(&needle)
        .unwrap_or_else(|| panic!("no {key} in {body}"));
    body[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("digits after key")
}

/// A panic injected under the engine write lock is contained to that
/// one request (a 503, not a dead worker or a dropped connection), and
/// the poisoned host rebuilds itself for the next request.
#[test]
fn worker_panic_is_contained_and_the_host_heals() {
    let _serial = serial();
    let _armed = Armed::plan("serve.write=panic@1");
    let server = RunningServer::start(HostRegistry::new(test_config()), 2);

    // The very first expansion panics: this request gets a 503 with a
    // Retry-After hint, not a hung or reset connection.
    let (status, response) = server.request(
        "POST",
        "/synthesize",
        r#"{"target":"(7,8)","cb":5,"strategy":"uni"}"#,
    );
    assert_eq!(status, 503, "{response}");
    assert!(response.contains("Retry-After: 1"), "{response}");

    // The server is still alive…
    let (status, _) = server.request("GET", "/healthz", "");
    assert_eq!(status, 200);

    // …and the retried request heals the poisoned host and gets the
    // known Toffoli answer (cost 5, 4 minimal implementations).
    let (status, response) = server.request(
        "POST",
        "/synthesize",
        r#"{"target":"(7,8)","cb":5,"strategy":"uni"}"#,
    );
    assert_eq!(status, 200, "{response}");
    assert!(response.contains("\"cost\":5"), "{response}");
    assert!(
        response.contains("\"implementation_count\":4"),
        "{response}"
    );

    let (status, stats) = server.request("GET", "/stats", "");
    assert_eq!(status, 200, "{stats}");
    assert_eq!(json_u64(&stats, "rebuilds"), 1, "{stats}");

    server.shutdown();
}

/// Truncating the primary snapshot at *every* section boundary (and a
/// few mid-section points) falls back to the `.bak` — never a crash,
/// never a half-loaded engine.
#[test]
fn torn_primary_falls_back_to_backup_at_every_boundary() {
    let _serial = serial();
    let dir = std::env::temp_dir().join(format!("mvq_chaos_torn_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("levels.snap");

    // Two saves: the second rotates the first (depth 2) to `.bak`.
    let mut engine = SynthesisEngine::unit_cost_with_threads(1);
    engine.expand_to_cost(2);
    engine.save_snapshot(&path).expect("first save");
    engine.expand_to_cost(3);
    engine.save_snapshot(&path).expect("second save");
    let healthy = std::fs::read(&path).expect("read snapshot");
    assert!(mvq_core::snapshot_backup_path(&path).exists());

    // Section boundaries of the v2 layout: magic(8) + version(4) +
    // header_len(4) + header + checksum(8) + body.
    let header_len =
        u32::from_le_bytes(healthy[12..16].try_into().expect("header_len bytes")) as usize;
    let body_start = 16 + header_len + 8;
    let mut cuts = vec![
        0,
        4,
        8,
        12,
        16,
        16 + header_len / 2,
        16 + header_len,
        body_start,
        body_start + (healthy.len() - body_start) / 2,
        healthy.len() - 1,
    ];
    cuts.dedup();
    for cut in cuts {
        assert!(cut < healthy.len(), "cut {cut} is not a truncation");
        std::fs::write(&path, &healthy[..cut]).expect("tear primary");
        let (loaded, source) = SynthesisEngine::load_snapshot_resilient(&path, 1)
            .unwrap_or_else(|err| panic!("truncation at {cut} did not fall back: {err}"));
        assert!(
            matches!(source, SnapshotSource::Backup { .. }),
            "cut {cut} should load the backup"
        );
        assert_eq!(
            loaded.completed_cost(),
            Some(2),
            "backup depth at cut {cut}"
        );
    }

    // With the backup gone too, the corruption surfaces as an error —
    // callers (the CLI, the server) degrade to a cold start.
    std::fs::write(&path, &healthy[..8]).expect("tear primary");
    std::fs::remove_file(mvq_core::snapshot_backup_path(&path)).expect("drop backup");
    let err = SynthesisEngine::load_snapshot_resilient(&path, 1).expect_err("both torn");
    assert!(err.is_corruption(), "{err}");

    std::fs::remove_dir_all(&dir).ok();
}

/// An injected rename failure mid-save leaves the previous snapshot
/// untouched and loadable, and litters no temp files.
#[test]
fn snapshot_rename_fault_leaves_the_last_good_file_intact() {
    let _serial = serial();
    let dir = std::env::temp_dir().join(format!("mvq_chaos_rename_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("levels.snap");

    let mut engine = SynthesisEngine::unit_cost_with_threads(1);
    engine.expand_to_cost(2);
    engine.save_snapshot(&path).expect("seed save");
    let before = std::fs::read(&path).expect("read seed");

    let _armed = Armed::plan("snapshot.rename=err@1");
    engine.expand_to_cost(3);
    let err = engine
        .save_snapshot(&path)
        .expect_err("injected rename failure");
    assert!(err.to_string().contains("snapshot.rename"), "{err}");

    // The published file is byte-identical to the last good save…
    assert_eq!(std::fs::read(&path).expect("reread"), before);
    assert_eq!(
        SynthesisEngine::load_snapshot_with_threads(&path, 1)
            .expect("still loads")
            .completed_cost(),
        Some(2)
    );
    // …and the failed attempt cleaned up its temp file.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .expect("list dir")
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().to_string())
        .filter(|name| name.contains(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "temp litter: {leftovers:?}");

    // The retry (the ordinal fired once) publishes the deeper save.
    engine.save_snapshot(&path).expect("retry save");
    assert_eq!(
        SynthesisEngine::load_snapshot_with_threads(&path, 1)
            .expect("loads")
            .completed_cost(),
        Some(3)
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// The acceptance drill: with a snapshot rename failure, one worker
/// panic, and one delayed expansion armed, eight concurrent clients
/// hammer the server. Every request is answered 200 or 503 (never a
/// hang, never a dropped connection), at least one host rebuild
/// happens, and once the faults are disarmed the answers are
/// bit-identical to an engine that never saw a fault.
#[test]
fn chaos_sweep_server_keeps_answering_and_recovers_exactly() {
    let _serial = serial();
    let _armed = Armed::plan("snapshot.rename=err@1;serve.write=panic@2;expand.level=delay(25)@4");

    let targets = ["(7,8)", "(5,7,6,8)", "(5,7)(6,8)", "(2,4,3)(5,6)"];
    let server = RunningServer::start(
        HostRegistry::new(HostConfig {
            threads: 1,
            max_deadline_ms: 2_500,
            ..HostConfig::default()
        }),
        4,
    );

    // The armed rename fault fires on the drill's snapshot save — the
    // durability path degrades loudly instead of publishing torn bytes.
    let dir = std::env::temp_dir().join(format!("mvq_chaos_sweep_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let snap = dir.join("mid-drill.snap");
    let mut saver = SynthesisEngine::unit_cost_with_threads(1);
    saver.expand_to_cost(1);
    assert!(saver.save_snapshot(&snap).is_err(), "rename fault fires");
    assert!(!snap.exists(), "no torn file published");

    let statuses: Vec<u16> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|client| {
                let handle = server.handle.clone();
                let targets = &targets;
                scope.spawn(move || {
                    let mut seen = Vec::new();
                    for round in 0..4 {
                        let target = targets[(client + round) % targets.len()];
                        let body = format!(
                            r#"{{"target":"{target}","cb":6,"strategy":"uni","deadline_ms":2000}}"#
                        );
                        let (status, _) = raw_request(&handle, "POST", "/synthesize", &body);
                        seen.push(status);
                    }
                    seen
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    assert_eq!(statuses.len(), 32, "no client was stranded");
    assert!(
        statuses.iter().all(|s| *s == 200 || *s == 503),
        "only 200s and 503s under chaos, got {statuses:?}"
    );

    // The injected panic forced at least one self-rebuild.
    let (status, stats) = server.request("GET", "/stats", "");
    assert_eq!(status, 200, "{stats}");
    assert!(json_u64(&stats, "rebuilds") >= 1, "{stats}");

    // Faults off: every answer matches a never-injected engine exactly.
    mvq_fault::disarm_all();
    let mut reference = SynthesisEngine::unit_cost_with_threads(1);
    for target in targets {
        let parsed = mvq_core::known::parse_target_on(target, 8).expect("valid target");
        let want = reference.synthesize(&parsed, 6);
        let body = format!(r#"{{"target":"{target}","cb":6,"strategy":"uni"}}"#);
        let (status, response) = server.request("POST", "/synthesize", &body);
        assert_eq!(status, 200, "{response}");
        match want {
            None => assert!(response.contains("\"found\":false"), "{response}"),
            Some(syn) => {
                assert!(
                    response.contains(&format!("\"cost\":{}", syn.cost)),
                    "{response}"
                );
                assert!(
                    response.contains(&format!(
                        "\"implementation_count\":{}",
                        syn.implementation_count
                    )),
                    "{response}"
                );
                assert!(
                    response.contains(&format!("\"circuit\":\"{}\"", syn.circuit)),
                    "{response}"
                );
            }
        }
    }

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// A request with a tiny `deadline_ms` that lands behind a slow
/// expansion sheds with 503 + `Retry-After` instead of pinning a
/// worker; the slow request itself still completes.
#[test]
fn deadline_waiters_shed_with_503_and_retry_after() {
    let _serial = serial();
    let _armed = Armed::plan("expand.level=delay(400)@1");
    let server = RunningServer::start(HostRegistry::new(test_config()), 2);

    std::thread::scope(|scope| {
        let slow = scope.spawn(|| {
            // Becomes the expander; its first level is delayed 400 ms.
            raw_request(&server.handle, "POST", "/census", r#"{"cb":5}"#)
        });
        std::thread::sleep(Duration::from_millis(100));
        let (status, response) = server.request(
            "POST",
            "/synthesize",
            r#"{"target":"(7,8)","cb":5,"strategy":"uni","deadline_ms":1}"#,
        );
        assert_eq!(status, 503, "{response}");
        assert!(response.contains("Retry-After: 1"), "{response}");
        assert!(response.contains("deadline"), "{response}");

        let (status, response) = slow.join().expect("slow client");
        assert_eq!(status, 200, "{response}");
        assert!(response.contains("\"g_counts\""), "{response}");
    });

    let (status, stats) = server.request("GET", "/stats", "");
    assert_eq!(status, 200, "{stats}");
    assert!(json_u64(&stats, "deadline_timeouts") >= 1, "{stats}");

    server.shutdown();
}

/// A fault-injected request is still exactly one trace line — never
/// lost, never duplicated — and the line carries the failure outcome,
/// so faulted traffic is attributable from the log alone.
#[test]
fn faulted_request_emits_exactly_one_failure_trace_line() {
    let _serial = serial();
    let _armed = Armed::plan("serve.write=panic@1");

    #[derive(Clone, Default)]
    struct SharedSink(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().expect("sink").extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let sink = SharedSink::default();
    let server = Server::bind("127.0.0.1:0", Arc::new(HostRegistry::new(test_config())))
        .expect("bind loopback");
    let obs = server.obs();
    obs.trace().set_sink(Box::new(sink.clone()));
    obs.trace().set_level(mvq_obs::LogLevel::Info);
    let handle = server.handle().expect("handle");
    let runner = std::thread::spawn(move || server.run(2));

    // The first expansion panics under the engine write lock.
    let (status, response) = raw_request(
        &handle,
        "POST",
        "/synthesize",
        r#"{"target":"(7,8)","cb":5,"strategy":"uni"}"#,
    );
    assert_eq!(status, 503, "{response}");

    handle.shutdown();
    runner.join().expect("server thread").expect("server run");

    let raw = sink.0.lock().expect("sink").clone();
    let lines: Vec<&str> = std::str::from_utf8(&raw)
        .expect("trace lines are UTF-8")
        .lines()
        .collect();
    assert_eq!(lines.len(), 1, "exactly one trace line: {lines:#?}");
    let line = lines[0];
    assert!(line.contains(r#""outcome":"error""#), "{line}");
    assert!(line.contains(r#""status":503"#), "{line}");
    assert!(line.contains(r#""path":"/synthesize""#), "{line}");
    assert!(line.contains(r#""target":"(7,8)""#), "{line}");
}
