//! The 2-wire system is small enough to solve *completely*: all 4! = 24
//! reversible functions of two bits, their minimal costs, and the Theorem
//! 2 structure — a full end-to-end validation of the machinery on a
//! domain where everything can be checked by hand.

use mvq_core::{Census, CostModel, SynthesisEngine};
use mvq_logic::{Gate, GateLibrary};
use mvq_perm::{Group, Perm};

fn two_wire_engine() -> SynthesisEngine {
    SynthesisEngine::new(GateLibrary::standard(2), CostModel::unit())
}

#[test]
fn two_wire_domain_has_8_patterns() {
    let lib = GateLibrary::standard(2);
    assert_eq!(lib.domain().len(), 8); // 16 − 9 + 1
    assert_eq!(lib.gates().len(), 6);
}

#[test]
fn every_stabilizer_class_is_reachable() {
    // The NOT-free reversible 2-bit functions form the stabilizer of the
    // all-zeros pattern in S4: order 3! = 6. All six must be found.
    let mut engine = two_wire_engine();
    engine.expand_to_cost(6);
    assert_eq!(engine.classes_found(), 6);
}

#[test]
fn two_wire_cost_table_is_complete() {
    // Exhaustive minimal costs: identity 0; the two CNOTs cost 1; their
    // two compositions cost 2; the swap costs 3.
    let mut engine = two_wire_engine();
    engine.expand_to_cost(4);
    assert_eq!(&engine.g_counts()[..4], &[1, 2, 2, 1]);
}

#[test]
fn swap_needs_three_cnots() {
    // SWAP = (2,3) on patterns {00, 01, 10, 11}.
    let swap: Perm = "(2,3)".parse::<Perm>().unwrap().extended(4);
    let mut engine = two_wire_engine();
    let syn = engine.synthesize(&swap, 4).expect("reachable");
    assert_eq!(syn.cost, 3);
    assert_eq!(syn.circuit.gates().len(), 3);
    assert!(syn
        .circuit
        .gates()
        .iter()
        .all(|g| matches!(g, Gate::Feynman { .. })));
    assert!(syn.circuit.verify_against_binary_perm(&swap));
}

#[test]
fn all_24_functions_synthesize_with_not_layers() {
    // Every element of S4 must synthesize: 6 stabilizer classes × 4 NOT
    // layers. Verify each at the unitary level and record the cost
    // distribution.
    let s4 = Group::symmetric(4);
    let mut engine = two_wire_engine();
    let mut cost_histogram = [0usize; 5];
    for target in s4.iter() {
        let syn = engine
            .synthesize(target, 5)
            .unwrap_or_else(|| panic!("unreachable target {target}"));
        assert!(
            syn.circuit.verify_against_binary_perm(target),
            "target {target}"
        );
        cost_histogram[syn.cost as usize] += 1;
    }
    // 4 cosets × [1, 2, 2, 1] cost profile.
    assert_eq!(cost_histogram, [4, 8, 8, 4, 0]);
}

#[test]
fn two_wire_census_matches_hand_computation() {
    let lib = GateLibrary::standard(2);
    let mut engine = SynthesisEngine::new(lib, CostModel::unit());
    let census = Census::compute_with(&mut engine, 3);
    let g: Vec<usize> = census.rows().iter().map(|r| r.g_count).collect();
    assert_eq!(g, vec![1, 2, 2, 1]);
    // |S4[k]| = 2² · |G[k]| by Theorem 2 — note the census type reports
    // the 3-wire factor 8, so check the raw counts instead.
    assert_eq!(engine.classes_found(), 6);
}

#[test]
fn controlled_v_squared_equals_cnot_cost() {
    // V_BA * V_BA realizes CNOT(B;A) but costs 2; MCE must prefer the
    // single Feynman gate.
    let cnot: Perm = "(3,4)".parse::<Perm>().unwrap().extended(4);
    let mut engine = two_wire_engine();
    let syn = engine.synthesize(&cnot, 3).expect("reachable");
    assert_eq!(syn.cost, 1);
}

#[test]
fn weighted_costs_reorder_two_wire_levels() {
    // Make Feynman expensive (3) and V cheap (1): CNOT is now cheaper as
    // V·V (cost 2) than as a Feynman gate (cost 3).
    let lib = GateLibrary::standard(2);
    let mut engine = SynthesisEngine::new(lib, CostModel::weighted(1, 1, 3));
    let cnot: Perm = "(3,4)".parse::<Perm>().unwrap().extended(4);
    let syn = engine.synthesize(&cnot, 4).expect("reachable");
    assert_eq!(syn.cost, 2, "V·V beats the expensive Feynman");
    assert_eq!(syn.circuit.gates().len(), 2);
}

#[test]
fn level_gaps_under_weighted_costs_are_recorded_as_zero() {
    // With all gates costing 2, odd levels are empty.
    let lib = GateLibrary::standard(2);
    let mut engine = SynthesisEngine::new(lib, CostModel::weighted(2, 2, 2));
    engine.expand_to_cost(4);
    assert_eq!(engine.g_counts()[1], 0);
    assert_eq!(engine.b_counts()[1], 0);
    assert_eq!(engine.g_counts()[2], 2); // the two CNOTs at cost 2
}
