//! The n = 4 suite: the widened search core (256-pattern words, u128
//! S-traces, bitset banned masks) must behave exactly like the narrow
//! core scaled up — thread-count-independent levels, strategy-agreeing
//! syntheses, warm-bound semantics, and snapshot round-trips on the
//! 4-wire library — and the widening must leave every 3-wire result
//! byte-identical (narrow vs wide engines over the same library).

use mvq_core::{
    known, CostModel, SearchEngine, SearchWidth, SnapshotError, SynthesisEngine,
    WideSynthesisEngine, WordRepr,
};
use mvq_logic::GateLibrary;
use mvq_perm::Perm;
use proptest::prelude::*;

/// The 4-wire CNOT `D ^= A` (cost 1): patterns 9–16 have `A = 1`, and
/// flipping `D` pairs them up.
const CNOT_DA: &str = "(9,10)(11,12)(13,14)(15,16)";

fn wide_unit(threads: usize) -> WideSynthesisEngine {
    WideSynthesisEngine::with_threads(GateLibrary::standard(4), CostModel::unit(), threads)
}

fn cnot_da() -> Perm {
    known::parse_target_on(CNOT_DA, 16).expect("valid 4-wire target")
}

/// Order-sensitive state comparison across two engines of any widths
/// (levels are compared as raw image tables so narrow and wide words
/// can be checked against each other).
fn assert_state_identical<A: SearchWidth, B: SearchWidth>(
    reference: &SearchEngine<A>,
    other: &SearchEngine<B>,
    up_to: u32,
    label: &str,
) {
    assert_eq!(reference.g_counts(), other.g_counts(), "{label}: g_counts");
    assert_eq!(reference.b_counts(), other.b_counts(), "{label}: b_counts");
    assert_eq!(reference.a_size(), other.a_size(), "{label}: |A|");
    assert_eq!(
        reference.classes_found(),
        other.classes_found(),
        "{label}: classes"
    );
    for cost in 0..=up_to {
        let want: Vec<&[u8]> = reference
            .level_words(cost)
            .unwrap_or(&[])
            .iter()
            .map(|w| w.as_slice())
            .collect();
        let got: Vec<&[u8]> = other
            .level_words(cost)
            .unwrap_or(&[])
            .iter()
            .map(|w| w.as_slice())
            .collect();
        assert_eq!(want, got, "{label}: level {cost} words (order-sensitive)");
    }
}

#[test]
fn four_wire_census_counts_are_pinned() {
    // Golden counts for the 36-gate 4-wire library (measured once from
    // the widened engine, stable across threads and versions).
    let mut e = wide_unit(1);
    e.expand_to_cost(3);
    assert_eq!(e.g_counts(), &[1, 12, 96, 542]);
    assert_eq!(e.b_counts(), &[1, 36, 684, 9354]);
    assert_eq!(e.a_size(), 114_925);
}

#[test]
fn four_wire_levels_bit_identical_across_thread_counts() {
    let mut serial = wide_unit(1);
    serial.expand_to_cost(3);
    for threads in [2, 4] {
        let mut parallel = wide_unit(threads);
        parallel.expand_to_cost(3);
        assert_state_identical(&serial, &parallel, 3, &format!("threads {threads}"));
    }
}

#[test]
fn four_wire_uni_and_bidi_agree_cold_and_warm() {
    let cnot = cnot_da();
    for threads in [1, 2] {
        // Cold engines, one per strategy.
        let mut uni = wide_unit(threads);
        let mut bidi = wide_unit(threads);
        let a = uni.synthesize(&cnot, 3).expect("cost 1");
        let b = bidi.synthesize_bidirectional(&cnot, 3).expect("cost 1");
        assert_eq!(a.cost, 1, "threads {threads}");
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.implementation_count, b.implementation_count);
        assert!(a.circuit.verify_against_binary_perm(&cnot));
        assert!(b.circuit.verify_against_binary_perm(&cnot));

        // Warm: the same engines answer again (and honor the bound).
        assert!(uni.synthesize(&cnot, 0).is_none(), "warm bound");
        assert!(bidi.synthesize_bidirectional(&cnot, 0).is_none());
        let warm = uni.synthesize(&cnot, 3).expect("warm hit");
        assert_eq!(warm.circuit.to_string(), a.circuit.to_string());
    }
}

#[test]
fn four_wire_low_cost_classes_agree_between_strategies() {
    let mut enumerator = wide_unit(1);
    let mut uni = wide_unit(1);
    let mut bidi = wide_unit(1);
    let mut checked = 0;
    for k in 0..=2u32 {
        for (perm, circuit) in enumerator.reversible_circuits_at_cost(k) {
            assert_eq!(
                CostModel::unit().cascade_cost(circuit.gates()),
                k,
                "witness of {perm}"
            );
            let a = uni.synthesize(&perm, 2).expect("reachable");
            let b = bidi.synthesize_bidirectional(&perm, 2).expect("reachable");
            assert_eq!(a.cost, k, "unidirectional {perm}");
            assert_eq!(b.cost, k, "bidirectional {perm}");
            assert_eq!(a.implementation_count, b.implementation_count, "{perm}");
            assert!(b.circuit.verify_against_binary_perm(&perm), "{perm}");
            checked += 1;
        }
    }
    assert_eq!(checked, 1 + 12 + 96);
}

#[test]
fn four_wire_snapshot_roundtrip_resumes_bit_identically() {
    let mut reference = wide_unit(1);
    reference.expand_to_cost(3);

    let mut snapshotted = wide_unit(1);
    snapshotted.expand_to_cost(2);
    let bytes = snapshotted.snapshot_to_bytes().expect("serialize");

    for threads in [1, 2, 4] {
        let mut resumed =
            WideSynthesisEngine::load_snapshot_from_bytes(&bytes, threads).expect("load");
        assert_eq!(resumed.completed_cost(), Some(2));
        resumed.expand_to_cost(3);
        assert_state_identical(
            &reference,
            &resumed,
            3,
            &format!("snapshot resume, threads {threads}"),
        );
        // The resumed engine answers queries like the reference.
        let cnot = cnot_da();
        let want = reference.synthesize(&cnot, 3).expect("cost 1");
        let got = resumed.synthesize(&cnot, 3).expect("cost 1");
        assert_eq!(want.circuit.to_string(), got.circuit.to_string());
    }
}

#[test]
fn four_wire_snapshot_rejects_the_narrow_engine() {
    let mut wide = wide_unit(1);
    wide.expand_to_cost(1);
    let bytes = wide.snapshot_to_bytes().expect("serialize");
    let err = SynthesisEngine::load_snapshot_from_bytes(&bytes, 1).unwrap_err();
    assert!(
        matches!(err, SnapshotError::WidthMismatch { .. }),
        "expected WidthMismatch, got {err}"
    );
}

#[test]
fn four_wire_weighted_model_is_dijkstra_exact() {
    // Asymmetric weights exercise the decrease-key path at the wide
    // width; both strategies must agree with the enumerated class cost.
    let model = CostModel::weighted(1, 2, 3);
    let mut enumerator = WideSynthesisEngine::with_threads(GateLibrary::standard(4), model, 1);
    let mut bidi = WideSynthesisEngine::with_threads(GateLibrary::standard(4), model, 1);
    for k in 0..=2u32 {
        for (perm, circuit) in enumerator.reversible_circuits_at_cost(k) {
            assert_eq!(model.cascade_cost(circuit.gates()), k, "witness of {perm}");
            let b = bidi.synthesize_bidirectional(&perm, 2).expect("reachable");
            assert_eq!(b.cost, k, "{perm}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The widening refactor leaves every 3-wire result byte-identical:
    /// for random weighted models and depths, the narrow and wide
    /// engines over the same 3-wire library produce identical levels
    /// (word image tables in order), counts, and syntheses.
    #[test]
    fn narrow_and_wide_are_byte_identical_on_3_wires(
        v in 1u32..=3,
        vd in 1u32..=3,
        f in 1u32..=3,
        depth in 0u32..=3,
        threads in 1usize..=2,
    ) {
        let model = CostModel::weighted(v, vd, f);
        let mut narrow = SynthesisEngine::with_threads(GateLibrary::standard(3), model, threads);
        let mut wide = WideSynthesisEngine::with_threads(GateLibrary::standard(3), model, threads);
        narrow.expand_to_cost(depth);
        wide.expand_to_cost(depth);
        assert_state_identical(&narrow, &wide, depth, "narrow vs wide");

        let a = narrow.synthesize(&known::toffoli_perm(), depth);
        let b = wide.synthesize(&known::toffoli_perm(), depth);
        prop_assert_eq!(a.is_some(), b.is_some());
        if let (Some(a), Some(b)) = (a, b) {
            prop_assert_eq!(a.cost, b.cost);
            prop_assert_eq!(a.implementation_count, b.implementation_count);
            prop_assert_eq!(a.circuit.to_string(), b.circuit.to_string());
        }
    }
}
