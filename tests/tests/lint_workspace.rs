//! The lint gate, exercised in-process: the committed tree must be
//! clean under all ten rules, and — mutation-style — seeding a
//! rank-inverted lock acquisition into a copy of the real `host.rs`
//! must trip the interprocedural lock-order pass with the correct
//! multi-frame call chain. The second half proves the pass actually
//! *watches* the code the first half declares clean.

use std::fs;
use std::path::{Path, PathBuf};

use mvq_lint::{check_workspace, Rule};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("tests crate sits inside the workspace")
        .to_path_buf()
}

#[test]
fn committed_tree_is_lint_clean() {
    let report = check_workspace(&repo_root()).expect("lint walk");
    assert!(
        report.clean(),
        "the committed tree must pass all {} rules, got: {:#?}",
        mvq_lint::ALL_RULES.len(),
        report.violations
    );
    assert!(report.files_scanned > 100, "walk looks truncated");
}

/// Copies the real serve lock code into `root`, optionally appending
/// `extra` to `host.rs`. A minimal `SearchEngine` stub stands in for
/// `crates/core` so that method calls through engine guards resolve to
/// their real (lock-free) receiver type instead of falling back by
/// name onto same-named registry methods.
fn stage_serve_copy(root: &Path, extra: &str) {
    let src_dir = repo_root().join("crates/serve/src");
    let dst_dir = root.join("crates/serve/src");
    fs::create_dir_all(&dst_dir).expect("create fixture tree");
    let mut host = fs::read_to_string(src_dir.join("host.rs")).expect("read host.rs");
    host.push_str(extra);
    fs::write(dst_dir.join("host.rs"), host).expect("write host.rs");
    fs::copy(src_dir.join("lockrank.rs"), dst_dir.join("lockrank.rs")).expect("copy lockrank.rs");
    let core_dir = root.join("crates/core/src");
    fs::create_dir_all(&core_dir).expect("create core stub dir");
    fs::write(core_dir.join("engine.rs"), ENGINE_STUB).expect("write engine stub");
}

/// Lock-free stand-in for the engine methods `host.rs` calls through
/// its guards; the signatures mirror `mvq_core` so bindings type the
/// same way they do in the full tree.
const ENGINE_STUB: &str = r#"
pub struct SearchEngine<W> {
    probe: Option<W>,
}

impl<W> SearchEngine<W> {
    pub fn load_snapshot_from_bytes(bytes: &[u8], threads: usize) -> Result<Self, String> {
        let _ = (bytes, threads);
        Err(String::new())
    }

    pub fn ensure_frontier(&mut self) {}

    pub fn set_probe(&mut self, probe: W) {
        self.probe = Some(probe);
    }

    pub fn completed_cost(&self) -> Option<u32> {
        None
    }
}
"#;

const SEED: &str = r#"
impl<W: SearchWidth> EngineHost<W> {
    fn rank_inversion_seed(&self) -> Result<u32, HostError> {
        let flight = self.flight_lock()?;
        let engine = self.engine_write()?;
        drop(engine);
        drop(flight);
        Ok(0)
    }
}
"#;

#[test]
fn seeded_rank_inversion_is_caught_with_the_call_chain() {
    let base = std::env::temp_dir().join(format!("mvq_lint_mutation_{}", std::process::id()));
    let unmutated = base.join("unmutated");
    let mutated = base.join("mutated");
    stage_serve_copy(&unmutated, "");
    stage_serve_copy(&mutated, SEED);

    // Control: the extracted pair alone is clean, so whatever the
    // mutated copy reports comes from the seed.
    let control = check_workspace(&unmutated).expect("lint walk");
    assert!(control.clean(), "control copy: {:#?}", control.violations);

    let report = check_workspace(&mutated).expect("lint walk");
    let lock_findings: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == Rule::LockOrder)
        .collect();
    assert_eq!(
        report.violations.len(),
        lock_findings.len(),
        "{:#?}",
        report.violations
    );
    assert_eq!(lock_findings.len(), 1, "{:#?}", report.violations);
    let v = lock_findings[0];
    assert_eq!(v.file, "crates/serve/src/host.rs");
    // Holding the flight guard (rank 30) while the engine_write chain
    // acquires a lower rank — the pass reports the lowest transitive
    // acquisition, the recovery lock (rank 15) taken inside `heal`.
    assert!(v.message.contains("rank 15"), "{}", v.message);
    assert!(v.message.contains("rank 30"), "{}", v.message);
    assert!(v.frames.len() >= 2, "{:#?}", v.frames);
    assert_eq!(v.frames[0].function, "rank_inversion_seed");
    assert_eq!(v.frames[1].function, "engine_write", "{:#?}", v.frames);
    assert_eq!(v.frames.last().unwrap().function, "heal", "{:#?}", v.frames);
    assert_eq!(v.frames.last().unwrap().line, v.line);

    fs::remove_dir_all(&base).ok();
}
