//! E9: Section 4 end to end — spec synthesis, measurement statistics, and
//! the probabilistic state machine of Figure 3.

use mvq_arith::Dyadic;
use mvq_automata::{ControlledRng, ProbabilisticCircuit, QuantumAutomaton, QuantumHmm};
use mvq_core::{known, synthesize_spec, QuaternarySpec, SynthesisEngine};
use mvq_logic::{Gate, Pattern, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn controlled_rng_end_to_end() {
    let generator = ControlledRng::synthesize().expect("realizable");
    assert_eq!(generator.quantum_cost(), 1);

    // Exact probabilities.
    let d = generator.block().output_distribution(0b10);
    assert_eq!(d.prob_of(0b10), Dyadic::HALF);
    assert_eq!(d.prob_of(0b11), Dyadic::HALF);

    // Large-sample empirical agreement.
    let mut rng = StdRng::seed_from_u64(123);
    let bits = generator.generate(&mut rng, 50_000, true);
    let f = bits.iter().filter(|&&b| b).count() as f64 / 50_000.0;
    assert!((f - 0.5).abs() < 0.01, "empirical frequency {f}");
}

#[test]
fn controlled_controlled_v_spec_is_unreachable() {
    // A notable negative result: "C becomes a coin exactly when A = B =
    // 1" (a controlled-controlled-V) is NOT realizable in the paper's
    // model at low cost — a true CCV needs phases outside the quaternary
    // algebra.
    let mut targets: Vec<Pattern> = (0..8).map(|b| Pattern::from_bits(b, 3)).collect();
    targets[0b110] = Pattern::new(vec![Value::One, Value::One, Value::V0]);
    targets[0b111] = Pattern::new(vec![Value::One, Value::One, Value::V1]);
    let spec = QuaternarySpec::new(3, targets).expect("valid");
    let mut engine = SynthesisEngine::unit_cost();
    assert!(synthesize_spec(&mut engine, &spec, 5).is_none());
}

#[test]
fn three_wire_probabilistic_spec_synthesis() {
    // A 3-wire spec: XOR B with A, then C becomes a coin wherever the new
    // B is 1. Reachable at cost 2 (FBA then VCB); the engine must find a
    // minimal circuit and meet the spec exactly.
    let targets: Vec<Pattern> = (0..8usize)
        .map(|bits| {
            let (a, b, c) = (bits >> 2 & 1, bits >> 1 & 1, bits & 1);
            let b2 = b ^ a;
            let c_val = if b2 == 1 {
                if c == 0 {
                    Value::V0
                } else {
                    Value::V1
                }
            } else if c == 0 {
                Value::Zero
            } else {
                Value::One
            };
            Pattern::new(vec![
                if a == 1 { Value::One } else { Value::Zero },
                if b2 == 1 { Value::One } else { Value::Zero },
                c_val,
            ])
        })
        .collect();
    let spec = QuaternarySpec::new(3, targets).expect("valid");
    assert!(!spec.is_deterministic());

    let mut engine = SynthesisEngine::unit_cost();
    let result = synthesize_spec(&mut engine, &spec, 4).expect("reachable");
    assert_eq!(result.cost, 2);
    // Verify against exact state simulation for every input.
    for bits in 0..8usize {
        let mut sv = mvq_sim::StateVector::basis(3, bits);
        sv.apply_cascade(result.circuit.gates());
        let want = mvq_sim::StateVector::from_pattern(spec.target(bits));
        assert_eq!(sv, want, "input {bits:03b}");
    }
    // A deterministic circuit cannot realize it.
    let block = ProbabilisticCircuit::new(result.circuit.clone());
    assert!(!block.is_deterministic());
}

#[test]
fn deterministic_spec_agrees_with_mce() {
    // A purely binary spec synthesizes to the same cost as MCE on the
    // corresponding permutation.
    let targets: Vec<Pattern> = (0..8)
        .map(|b| Pattern::from_bits(known::peres_perm().image(b + 1) - 1, 3))
        .collect();
    let spec = QuaternarySpec::new(3, targets).expect("valid");
    assert!(spec.is_deterministic());
    let mut engine = SynthesisEngine::unit_cost();
    let via_spec = synthesize_spec(&mut engine, &spec, 5).expect("reachable");
    let mut engine2 = SynthesisEngine::unit_cost();
    let via_mce = engine2
        .synthesize(&known::peres_perm(), 5)
        .expect("reachable");
    assert_eq!(via_spec.cost, via_mce.cost);
}

#[test]
fn automaton_transition_probabilities_sum_to_one() {
    let circuit = mvq_core::Circuit::new(2, vec![Gate::v(0, 1)]);
    let fsm = QuantumAutomaton::new(circuit, 1).expect("valid");
    for state in 0..2 {
        for input in 0..2 {
            let total = (0..2)
                .map(|next| fsm.transition_prob(state, input, next))
                .fold(Dyadic::ZERO, |acc, p| acc + p);
            assert_eq!(total, Dyadic::ONE, "state {state}, input {input}");
        }
    }
}

#[test]
fn hmm_long_run_statistics() {
    let mut hmm = QuantumHmm::new();
    let mut rng = StdRng::seed_from_u64(7);
    let obs = hmm.emit(&mut rng, 50_000);
    let ones = obs.iter().filter(|&&b| b).count() as f64 / 50_000.0;
    assert!((ones - 0.5).abs() < 0.01, "emission rate {ones}");
    // Exact transition matrix row sums.
    for s in 0..2 {
        assert_eq!(
            hmm.transition_prob(s, 0) + hmm.transition_prob(s, 1),
            Dyadic::ONE
        );
    }
}

#[test]
fn deterministic_automaton_is_a_classical_fsm() {
    // Feynman-only circuit ⇒ the automaton is deterministic: same input
    // sequence, same trajectory, every time.
    let circuit = mvq_core::Circuit::new(2, vec![Gate::feynman(0, 1)]);
    let mut a = QuantumAutomaton::new(circuit.clone(), 1).expect("valid");
    let mut b = QuantumAutomaton::new(circuit, 1).expect("valid");
    let inputs = [1, 0, 1, 1, 0, 1];
    let mut rng_a = StdRng::seed_from_u64(1);
    let mut rng_b = StdRng::seed_from_u64(999); // different seed!
    assert_eq!(a.run(&mut rng_a, &inputs), b.run(&mut rng_b, &inputs));
}

#[test]
fn synthesized_rng_spec_distributions_match_spec_object() {
    let spec = ControlledRng::spec();
    let generator = ControlledRng::synthesize().expect("realizable");
    for bits in 0..4usize {
        assert_eq!(
            generator.block().output_distribution(bits),
            spec.output_distribution(bits),
            "input {bits:02b}"
        );
    }
}
