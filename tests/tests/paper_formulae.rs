//! E2: every permutation formula and banned set printed in Section 3 of
//! the paper, recomputed from first principles.

use mvq_logic::{Gate, GateLibrary, PatternDomain, TruthTable};

#[test]
fn table_1_truth_table_and_permutation() {
    let table = TruthTable::new(Gate::v(1, 0), PatternDomain::table_ordered(2));
    assert_eq!(table.rows().len(), 16);
    assert_eq!(table.perm().to_string(), "(3,7,4,8)");
    // Labels of the paper's Table 1 output column, rows 1–16.
    let outputs: Vec<usize> = table.rows().iter().map(|r| r.output_label).collect();
    assert_eq!(
        outputs,
        vec![1, 2, 7, 8, 5, 6, 4, 3, 9, 10, 11, 12, 13, 14, 15, 16]
    );
}

#[test]
fn domain_size_is_38() {
    // 64 − 27 + 1 = 38 permutable patterns.
    assert_eq!(PatternDomain::permutable(3).len(), 38);
}

#[test]
fn vba_formula() {
    let d = PatternDomain::permutable(3);
    assert_eq!(
        Gate::v(1, 0).perm(&d).to_string(),
        "(5,17,7,21)(6,18,8,22)(13,19,15,23)(14,20,16,24)"
    );
}

#[test]
fn v_dagger_ab_formula() {
    let d = PatternDomain::permutable(3);
    assert_eq!(
        Gate::v_dagger(0, 1).perm(&d).to_string(),
        "(3,33,7,26)(4,34,8,27)(9,35,15,28)(10,36,16,29)"
    );
}

#[test]
fn feca_formula() {
    let d = PatternDomain::permutable(3);
    assert_eq!(
        Gate::feynman(2, 0).perm(&d).to_string(),
        "(5,6)(7,8)(17,18)(21,22)"
    );
}

#[test]
fn banned_sets_match_section_3() {
    let banned = GateLibrary::standard(3).banned_sets();
    assert_eq!(banned.n_a, (25..=38).collect::<Vec<usize>>());
    assert_eq!(
        banned.n_b,
        vec![11, 12, 17, 18, 19, 20, 21, 22, 23, 24, 30, 31, 37, 38]
    );
    assert_eq!(
        banned.n_c,
        vec![9, 10, 13, 14, 15, 16, 19, 20, 23, 24, 28, 29, 35, 36]
    );
    assert_eq!(
        banned.n_ab,
        (11..=38)
            .filter(|i| ![13, 14, 15, 16].contains(i))
            .collect::<Vec<usize>>()
    );
    assert_eq!(
        banned.n_bc,
        vec![
            9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 28, 29, 30, 31, 35, 36,
            37, 38
        ]
    );
}

#[test]
fn all_18_gates_are_permutations_of_the_domain() {
    let d = PatternDomain::permutable(3);
    let lib = GateLibrary::standard(3);
    assert_eq!(lib.gates().len(), 18);
    for lg in lib.gates() {
        let p = lg.gate().perm(&d);
        assert_eq!(p.degree(), 38);
        // V/V⁺ gates have order 4 on the domain; Feynman gates order 2.
        match lg.gate() {
            Gate::Feynman { .. } => assert_eq!(p.order(), 2),
            _ => assert_eq!(p.order(), 4),
        }
    }
}

#[test]
fn gate_perms_fix_every_no_one_pattern() {
    // "Every pattern must contain a 1; otherwise this pattern will not
    // change after any quantum gate" — on the full 64-pattern domain.
    let d = PatternDomain::full(3);
    let lib = GateLibrary::with_domain(PatternDomain::full(3));
    for lg in lib.gates() {
        for (idx, pattern) in d.iter() {
            if !pattern.contains_one() {
                assert_eq!(
                    lg.gate().perm(&d).image(idx),
                    idx,
                    "{} moved fixed pattern {pattern}",
                    lg.gate()
                );
            }
        }
    }
}

#[test]
fn six_output_values_collapse_to_four() {
    // V0 = V⁺1 and V1 = V⁺0 (Section 2) at the amplitude level.
    use mvq_logic::Value;
    assert_eq!(
        Value::Zero.apply_v().amplitudes(),
        Value::One.apply_v_dagger().amplitudes()
    );
    assert_eq!(
        Value::One.apply_v().amplitudes(),
        Value::Zero.apply_v_dagger().amplitudes()
    );
}
