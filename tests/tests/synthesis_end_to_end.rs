//! E5/E6: end-to-end MCE synthesis of every named circuit in the paper,
//! with unitary-level verification, plus exhaustive verification of the
//! G[4] level.

use mvq_core::{known, universal, SynthesisEngine};
use mvq_perm::Perm;

#[test]
fn peres_cost_4_two_implementations() {
    let mut e = SynthesisEngine::unit_cost();
    let all = e.synthesize_all(&known::peres_perm(), 5);
    assert_eq!(all[0].cost, 4, "paper: Peres cost 4");
    assert_eq!(all.len(), 2, "paper: two implementations found");
    for syn in &all {
        assert!(syn.circuit.verify_against_binary_perm(&known::peres_perm()));
    }
    // The two are each other's V ↔ V⁺ swap (Figure 4 vs Figure 8).
    assert_eq!(all[0].circuit.vswapped(), all[1].circuit);
}

#[test]
fn toffoli_cost_5_four_implementations() {
    let mut e = SynthesisEngine::unit_cost();
    let all = e.synthesize_all(&known::toffoli_perm(), 6);
    assert_eq!(all[0].cost, 5, "paper: Toffoli cost 5");
    assert_eq!(all.len(), 4, "paper: four implementations found");
    for syn in &all {
        assert!(syn
            .circuit
            .verify_against_binary_perm(&known::toffoli_perm()));
    }
    // Two Hermitian-adjoint pairs (Figure 9 a/b and c/d).
    let strings: Vec<String> = all.iter().map(|s| s.circuit.to_string()).collect();
    for syn in &all {
        assert!(strings.contains(&syn.circuit.vswapped().to_string()));
    }
    // The pairs differ in which qubit carries the XOR (A or B).
    let with_fab = all
        .iter()
        .filter(|s| s.circuit.to_string().contains("FAB"))
        .count();
    assert_eq!(with_fab, 2);
}

#[test]
fn g2_g3_g4_all_cost_4() {
    let mut e = SynthesisEngine::unit_cost();
    for (name, p) in [
        ("g2", known::g2_perm()),
        ("g3", known::g3_perm()),
        ("g4", known::g4_perm()),
    ] {
        let syn = e.synthesize(&p, 5).unwrap_or_else(|| panic!("{name}"));
        assert_eq!(syn.cost, 4, "{name} cost");
        assert!(
            syn.circuit.verify_against_binary_perm(&p),
            "{name} verifies"
        );
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "expands FMCF to cost 7 (~3M states); run with --release"
)]
fn fredkin_needs_cost_7_under_the_binary_control_constraint() {
    // Extension result: the well-known 5-gate Fredkin decomposition uses
    // mixed-value controls, which the paper's model forbids. Under the
    // paper's constraint the minimal cost is 7.
    let mut e = SynthesisEngine::unit_cost();
    assert!(e.synthesize(&known::fredkin_perm(), 6).is_none());
    let syn = e.synthesize(&known::fredkin_perm(), 7).expect("cost 7");
    assert_eq!(syn.cost, 7);
    assert!(syn
        .circuit
        .verify_against_binary_perm(&known::fredkin_perm()));
}

#[test]
fn every_g4_member_is_synthesized_and_verified() {
    // Exhaustive check of the whole cost-4 level: 84 reversible circuits,
    // each witness realizes its permutation at the unitary level.
    let mut e = SynthesisEngine::unit_cost();
    let members = e.reversible_circuits_at_cost(4);
    assert_eq!(members.len(), 84);
    for (perm, circuit) in &members {
        assert_eq!(circuit.quantum_cost(), 4);
        assert!(
            circuit.verify_against_binary_perm(perm),
            "witness for {perm} verifies"
        );
    }
}

#[test]
fn g4_structure_matches_section_5() {
    let mut e = SynthesisEngine::unit_cost();
    let analysis = universal::analyze_g4(&mut e);
    assert_eq!(analysis.members.len(), 84);
    assert_eq!(analysis.feynman_only().len(), 60);
    assert_eq!(analysis.with_control_gates().len(), 24);
    // All 24 control-gate circuits are universal; no Feynman-only one is.
    assert!(analysis.with_control_gates().iter().all(|m| m.universal));
    assert!(analysis.feynman_only().iter().all(|m| !m.universal));
    // Four orbits of six under wire relabeling, containing g1–g4.
    let orbits = analysis.wire_permutation_orbits();
    assert_eq!(orbits.len(), 4);
    assert!(orbits.iter().all(|o| o.len() == 6));
    for p in [
        known::peres_perm(),
        known::g2_perm(),
        known::g3_perm(),
        known::g4_perm(),
    ] {
        assert_eq!(orbits.iter().filter(|o| o.contains(&p)).count(), 1);
    }
}

#[test]
fn every_low_cost_class_resynthesizes_at_its_own_cost() {
    // Internal consistency of FMCF + MCE: every member of G[k] (k ≤ 3)
    // synthesizes back at exactly cost k.
    let mut e = SynthesisEngine::unit_cost();
    for k in 0..=3u32 {
        let members = e.reversible_circuits_at_cost(k);
        for (perm, _) in members {
            let mut fresh = SynthesisEngine::unit_cost();
            let syn = fresh.synthesize(&perm, 4).expect("reachable");
            assert_eq!(syn.cost, k, "class {perm} at level {k}");
        }
    }
}

#[test]
fn random_not_layers_compose_with_synthesis() {
    // Targets that move the zero pattern exercise the Theorem 2 coset
    // logic: NOT layer + stabilizer part.
    let mut e = SynthesisEngine::unit_cost();
    // Toffoli conjugated... simpler: NOT(A) ∘ Toffoli as a permutation.
    // NOT(A) maps p ↦ p xor 100.
    let not_a: Perm = Perm::from_images(&[5, 6, 7, 8, 1, 2, 3, 4]).unwrap();
    let target = not_a.clone() * known::toffoli_perm();
    let syn = e.synthesize(&target, 6).expect("reachable");
    assert!(!syn.not_layer.is_empty());
    assert!(syn.circuit.verify_against_binary_perm(&target));
    assert_eq!(syn.cost, 5, "NOT layer is free");
}

#[test]
fn synthesis_cost_is_invariant_under_wire_relabeling() {
    // Conjugating a target by a wire permutation cannot change its cost.
    let mut e = SynthesisEngine::unit_cost();
    let actions = universal::wire_permutation_actions(3);
    for action in &actions {
        let conj = known::peres_perm().conjugated_by(action);
        let syn = e.synthesize(&conj, 5).expect("reachable");
        assert_eq!(syn.cost, 4, "conjugate {conj}");
        assert!(syn.circuit.verify_against_binary_perm(&conj));
    }
}
