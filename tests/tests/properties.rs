//! Cross-crate property tests: FMCF/MCE invariants on randomly generated
//! *reasonable* cascades — the search must never report a cost higher
//! than a constructive witness, and every synthesized circuit must verify
//! at the unitary level.

use std::sync::{Mutex, OnceLock};

use mvq_core::{Circuit, SynthesisEngine};
use mvq_logic::{Gate, GateLibrary, Pattern};
use proptest::prelude::*;

/// One shared engine, pre-expanded lazily: each proptest case reuses the
/// cached FMCF levels instead of recomputing them.
fn engine() -> &'static Mutex<SynthesisEngine> {
    static ENGINE: OnceLock<Mutex<SynthesisEngine>> = OnceLock::new();
    ENGINE.get_or_init(|| Mutex::new(SynthesisEngine::unit_cost()))
}

/// Builds a random cascade that respects the reasonable-product
/// constraint, by walking the library and keeping only gates whose banned
/// set avoids the current binary-set image.
fn reasonable_cascade(choices: &[u8]) -> Vec<Gate> {
    let lib = GateLibrary::standard(3);
    let domain = lib.domain();
    let mut patterns: Vec<Pattern> = lib
        .binary_set()
        .iter()
        .map(|&i| domain.pattern(i).clone())
        .collect();
    let mut gates = Vec::new();
    for &c in choices {
        let image_mask: u64 = patterns
            .iter()
            .map(|p| 1u64 << (domain.index(p).expect("in domain") - 1))
            .sum();
        let allowed: Vec<Gate> = lib
            .gates()
            .iter()
            .filter(|lg| lg.is_reasonable_after(image_mask))
            .map(|lg| lg.gate())
            .collect();
        if allowed.is_empty() {
            break;
        }
        let gate = allowed[c as usize % allowed.len()];
        for p in &mut patterns {
            *p = gate.apply(p);
        }
        gates.push(gate);
    }
    gates
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn synthesis_never_exceeds_witness_cost(choices in prop::collection::vec(any::<u8>(), 0..6)) {
        let gates = reasonable_cascade(&choices);
        let circuit = Circuit::new(3, gates);
        // Only check cascades that return to binary.
        if let Some(target) = circuit.binary_perm() {
            let mut e = engine().lock().expect("no poisoning");
            let syn = e.synthesize(&target, 6).expect("witness exists within 6");
            prop_assert!(syn.cost <= circuit.quantum_cost(),
                "search found {} > witness {}", syn.cost, circuit.quantum_cost());
            prop_assert!(syn.circuit.verify_against_binary_perm(&target));
        }
    }

    #[test]
    fn mv_perm_restriction_equals_binary_perm(choices in prop::collection::vec(any::<u8>(), 0..7)) {
        // For reasonable NOT-free cascades, the 38-domain permutation
        // restricted to S agrees with direct binary evaluation.
        let gates = reasonable_cascade(&choices);
        let circuit = Circuit::new(3, gates);
        let domain = mvq_logic::PatternDomain::permutable(3);
        let perm = circuit.perm(&domain);
        let s: Vec<usize> = (1..=8).collect();
        match (perm.restricted(&s), circuit.binary_perm()) {
            (Some(restricted), Some(binary)) => prop_assert_eq!(restricted, binary),
            (None, None) => {}
            (r, b) => prop_assert!(false, "restriction {r:?} vs binary {b:?} disagree"),
        }
    }

    #[test]
    fn reasonable_cascades_keep_controls_binary(choices in prop::collection::vec(any::<u8>(), 0..8)) {
        // The defining property of the banned sets: along a reasonable
        // cascade, every control wire reads a binary value at its moment
        // of use, for every binary primary input.
        let gates = reasonable_cascade(&choices);
        for bits in 0..8usize {
            let mut p = Pattern::from_bits(bits, 3);
            for g in &gates {
                match *g {
                    Gate::V { control, .. } | Gate::VDagger { control, .. } => {
                        prop_assert!(p.value(control).is_binary(),
                            "{g} sees mixed control on input {bits:03b}");
                    }
                    Gate::Feynman { data, control } => {
                        prop_assert!(p.value(data).is_binary());
                        prop_assert!(p.value(control).is_binary());
                    }
                    Gate::Not { .. } => {}
                }
                p = g.apply(&p);
            }
        }
    }

    #[test]
    fn quaternary_synthesis_matches_cascade_images(choices in prop::collection::vec(any::<u8>(), 1..4)) {
        // Synthesize the exact image tuple of a random reasonable cascade;
        // the result must reproduce those images (possibly via a cheaper
        // circuit).
        let gates = reasonable_cascade(&choices);
        let circuit = Circuit::new(3, gates);
        let domain = mvq_logic::PatternDomain::permutable(3);
        let images: Vec<usize> = (0..8usize)
            .map(|bits| {
                let out = circuit.apply(&Pattern::from_bits(bits, 3));
                domain.index(&out).expect("reachable output is in domain")
            })
            .collect();
        let mut e = engine().lock().expect("no poisoning");
        let syn = e
            .synthesize_quaternary(&images, 4)
            .expect("witness exists within 4");
        prop_assert!(syn.cost <= circuit.quantum_cost());
        let found = Circuit::new(3, syn.circuit.gates().to_vec());
        for (bits, &want) in images.iter().enumerate() {
            let out = found.apply(&Pattern::from_bits(bits, 3));
            prop_assert_eq!(domain.index(&out), Some(want));
        }
    }
}
