//! E3: the Table 2 census. The fast test covers k ≤ 5; the full paper
//! bound (cb = 7, ~15 s in release, minutes in debug) is `#[ignore]`d and
//! run explicitly by the bench harness / `cargo test -- --ignored`.

use mvq_core::{Census, EXPECTED_TABLE_2};

#[test]
fn census_to_cost_5_matches_expected() {
    let census = Census::compute(5);
    let g: Vec<usize> = census.rows().iter().map(|r| r.g_count).collect();
    assert_eq!(g, &EXPECTED_TABLE_2[..6]);
    assert!(census.matches_expected());
}

#[test]
fn s8_row_is_eight_times_g_row() {
    let census = Census::compute(4);
    for row in census.rows() {
        assert_eq!(row.s8_count, 8 * row.g_count);
    }
}

#[test]
fn frontier_sizes_are_monotonically_increasing() {
    let census = Census::compute(4);
    let b: Vec<usize> = census.rows().iter().map(|r| r.b_count).collect();
    assert!(b.windows(2).all(|w| w[0] < w[1]), "B[k] grows: {b:?}");
}

#[test]
fn diff_vs_paper_is_stable() {
    let census = Census::compute(3);
    assert_eq!(census.diff_vs_paper(), vec![(2, 24, 30), (3, 51, 52)]);
}

#[test]
#[ignore = "full paper bound: ~15 s in release, minutes in debug"]
fn full_census_to_cost_7_matches_expected() {
    let census = Census::compute(7);
    let g: Vec<usize> = census.rows().iter().map(|r| r.g_count).collect();
    assert_eq!(g, &EXPECTED_TABLE_2);
    // The paper's printed row agrees everywhere except k = 2, 3.
    assert_eq!(census.diff_vs_paper(), vec![(2, 24, 30), (3, 51, 52)]);
}
