//! Snapshot round-trip and robustness suite: the level tables must
//! survive save → load byte-for-byte for arbitrary cost models and
//! depths, resumed expansion (including after `set_threads` resharding)
//! must be bit-identical to a never-snapshotted engine, and damaged
//! files must fail with a typed error — never UB or a silently-empty
//! cache.

use mvq_core::{known, CostModel, SnapshotError, SynthesisEngine};
use mvq_logic::GateLibrary;
use proptest::prelude::*;

fn engine(model: CostModel, threads: usize) -> SynthesisEngine {
    SynthesisEngine::with_threads(GateLibrary::standard(3), model, threads)
}

/// Level-by-level equality, including word order within every level.
fn assert_levels_identical(a: &SynthesisEngine, b: &SynthesisEngine, up_to: u32, label: &str) {
    assert_eq!(a.g_counts(), b.g_counts(), "{label}: g_counts");
    assert_eq!(a.b_counts(), b.b_counts(), "{label}: b_counts");
    assert_eq!(a.a_size(), b.a_size(), "{label}: |A|");
    assert_eq!(a.classes_found(), b.classes_found(), "{label}: classes");
    for cost in 0..=up_to {
        assert_eq!(
            a.level_words(cost),
            b.level_words(cost),
            "{label}: level {cost} words (order-sensitive)"
        );
    }
}

#[test]
fn loaded_set_threads_expansion_matches_native() {
    // The satellite regression: a snapshot-loaded engine resharded via
    // `set_threads` must keep expanding bit-identically — the loaded
    // `seen` maps need the same FNV shard layout as a natively-expanded
    // engine.
    let mut reference = engine(CostModel::unit(), 1);
    reference.expand_to_cost(5);
    let mut snapshotted = engine(CostModel::unit(), 1);
    snapshotted.expand_to_cost(3);
    let bytes = snapshotted.snapshot_to_bytes().unwrap();
    for threads in [1, 2, 4, 8] {
        let mut resumed = SynthesisEngine::load_snapshot_from_bytes(&bytes, 1).unwrap();
        resumed.set_threads(threads);
        assert_eq!(resumed.threads(), threads);
        resumed.expand_to_cost(5);
        assert_levels_identical(&reference, &resumed, 5, &format!("threads={threads}"));
        let want = reference.synthesize(&known::toffoli_perm(), 6).unwrap();
        let got = resumed.synthesize(&known::toffoli_perm(), 6).unwrap();
        assert_eq!(want.circuit.to_string(), got.circuit.to_string());
        assert_eq!(want.implementation_count, got.implementation_count);
    }
}

#[test]
fn load_with_threads_then_reshard_down() {
    // Load sharded, reshard down to serial, keep expanding.
    let mut reference = engine(CostModel::unit(), 1);
    reference.expand_to_cost(5);
    let mut snapshotted = engine(CostModel::unit(), 1);
    snapshotted.expand_to_cost(4);
    let bytes = snapshotted.snapshot_to_bytes().unwrap();
    let mut resumed = SynthesisEngine::load_snapshot_from_bytes(&bytes, 4).unwrap();
    resumed.set_threads(1);
    resumed.expand_to_cost(5);
    assert_levels_identical(&reference, &resumed, 5, "reshard 4→1");
}

#[test]
fn every_damaged_byte_fails_loudly() {
    // Sweep a corruption byte across the whole (small) file: every
    // position must produce an error, never a silently-wrong engine.
    let mut small = engine(CostModel::unit(), 1);
    small.expand_to_cost(1);
    let bytes = small.snapshot_to_bytes().unwrap();
    for offset in 0..bytes.len() {
        let mut damaged = bytes.clone();
        damaged[offset] ^= 0xA5;
        assert!(
            SynthesisEngine::load_snapshot_from_bytes(&damaged, 1).is_err(),
            "flip at byte {offset}/{} loaded successfully",
            bytes.len()
        );
    }
}

#[test]
fn bidirectional_on_loaded_engine_matches_native() {
    // The meet-in-the-middle path exercises `exhausted()` and the
    // adaptive split against the loaded levels and deferred frontier;
    // against a native engine in the same starting state it must be
    // circuit-identical.
    let mut native = engine(CostModel::unit(), 1);
    native.expand_to_cost(3);
    let mut snapshotted = engine(CostModel::unit(), 1);
    snapshotted.expand_to_cost(3);
    let bytes = snapshotted.snapshot_to_bytes().unwrap();
    let mut loaded = SynthesisEngine::load_snapshot_from_bytes(&bytes, 1).unwrap();
    for target in [known::fredkin_perm(), known::toffoli_perm()] {
        let want = native.synthesize_bidirectional(&target, 7).unwrap();
        let got = loaded.synthesize_bidirectional(&target, 7).unwrap();
        assert_eq!(want.cost, got.cost, "{target}");
        assert_eq!(
            want.implementation_count, got.implementation_count,
            "{target}"
        );
        assert_eq!(
            want.circuit.to_string(),
            got.circuit.to_string(),
            "{target}"
        );
        assert!(got.circuit.verify_against_binary_perm(&target));
    }
}

#[test]
fn missing_file_is_an_io_error() {
    let err = SynthesisEngine::load_snapshot("/definitely/not/here.snap").unwrap_err();
    assert!(matches!(err, SnapshotError::Io(_)), "{err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Round-trip equality of the level tables for arbitrary (positive)
    /// cost models and snapshot depths, plus bit-identical continued
    /// expansion one level past the snapshot.
    #[test]
    fn roundtrip_level_tables_for_any_model(
        v in 1u32..=3,
        vd in 1u32..=3,
        f in 1u32..=2,
        depth in 0u32..=4,
    ) {
        let model = CostModel::weighted(v, vd, f);
        let mut original = engine(model, 1);
        original.expand_to_cost(depth);
        let bytes = original.snapshot_to_bytes().unwrap();
        let mut loaded = SynthesisEngine::load_snapshot_from_bytes(&bytes, 1).unwrap();
        prop_assert_eq!(original.g_counts(), loaded.g_counts());
        prop_assert_eq!(original.b_counts(), loaded.b_counts());
        prop_assert_eq!(original.a_size(), loaded.a_size());
        prop_assert_eq!(original.classes_found(), loaded.classes_found());
        prop_assert_eq!(loaded.cost_model().weights(), (v, vd, f));
        for cost in 0..=depth {
            prop_assert_eq!(
                original.level_words(cost),
                loaded.level_words(cost),
                "level {} words", cost
            );
        }
        // Resume one level deeper on both: still identical.
        original.expand_to_cost(depth + 1);
        loaded.expand_to_cost(depth + 1);
        prop_assert_eq!(original.g_counts(), loaded.g_counts());
        prop_assert_eq!(original.a_size(), loaded.a_size());
        prop_assert_eq!(
            original.level_words(depth + 1),
            loaded.level_words(depth + 1)
        );
    }

    /// Truncation at any length fails loudly.
    #[test]
    fn truncation_never_loads(cut_permille in 0usize..1000) {
        let mut small = engine(CostModel::unit(), 1);
        small.expand_to_cost(1);
        let bytes = small.snapshot_to_bytes().unwrap();
        let cut = bytes.len() * cut_permille / 1000;
        prop_assert!(cut < bytes.len());
        prop_assert!(SynthesisEngine::load_snapshot_from_bytes(&bytes[..cut], 1).is_err());
    }
}
