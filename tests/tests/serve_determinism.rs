//! Service-concurrency determinism audit (the `mvq_serve` counterpart of
//! `parallel_determinism.rs`): the same query mix must produce
//! **bit-identical** results — costs, witness counts, and circuits —
//! through (a) serial engine calls, (b) the in-process engine host with
//! 8 client threads, and (c) a snapshot round-trip (save → load →
//! query), including a host built over the loaded snapshot.

use std::collections::BTreeMap;
use std::sync::Arc;

use mvq_core::{known, SynthesisEngine};
use mvq_perm::Perm;
use mvq_serve::{EngineHost, ServeStrategy};

const CLIENTS: usize = 8;
const CB: u32 = 5;

/// Everything a query returns that must match across serving paths.
type Outcome = Option<(u32, usize, String)>;

fn outcome(result: Option<mvq_core::Synthesis>) -> Outcome {
    result.map(|syn| (syn.cost, syn.implementation_count, syn.circuit.to_string()))
}

/// The audit's query mix: every NOT-free class realizable within cost 4,
/// the three named gates (Fredkin's cost 7 exceeds the bound, so its
/// definitive `None` is part of the contract), and a NOT-layer target.
fn query_mix() -> Vec<Perm> {
    let mut enumerator = SynthesisEngine::unit_cost_with_threads(1);
    let mut targets = Vec::new();
    for k in 0..=4u32 {
        for (perm, _) in enumerator.reversible_circuits_at_cost(k) {
            targets.push(perm);
        }
    }
    targets.push(known::peres_perm());
    targets.push(known::toffoli_perm());
    targets.push(known::fredkin_perm());
    targets.push("(1,2)(3,4)(5,6)(7,8)".parse().unwrap()); // NOT(C): coset layer
    targets.push("(1,3)(2,4)(5,8,6,7)".parse().unwrap()); // NOT layer + cascade
    targets
}

/// Serial reference: one private engine, one query at a time.
fn serial_reference(targets: &[Perm]) -> Vec<Outcome> {
    let mut engine = SynthesisEngine::unit_cost_with_threads(1);
    targets
        .iter()
        .map(|t| outcome(engine.synthesize(t, CB)))
        .collect()
}

/// Drives every target through the host from `CLIENTS` threads
/// (interleaved round-robin, so all threads hammer the same levels) and
/// returns the outcomes in target order.
fn through_host(host: &EngineHost, targets: &[Perm]) -> Vec<Outcome> {
    let collected: BTreeMap<usize, Outcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                scope.spawn(move || {
                    targets
                        .iter()
                        .enumerate()
                        .skip(client)
                        .step_by(CLIENTS)
                        .map(|(idx, target)| {
                            (idx, outcome(host.synthesize(target, CB).expect("admitted")))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    assert_eq!(collected.len(), targets.len());
    collected.into_values().collect()
}

#[test]
fn host_with_8_clients_matches_serial_engine() {
    let targets = query_mix();
    let want = serial_reference(&targets);
    // Cold host: the first wave of clients races through the
    // single-flight expansion path while the rest resolve as readers.
    let host = EngineHost::new(SynthesisEngine::unit_cost_with_threads(1), 7);
    let got = through_host(&host, &targets);
    assert_eq!(want, got, "host outcomes diverge from serial outcomes");
    let stats = host.stats().unwrap();
    assert_eq!(
        stats.synthesize_requests,
        targets.len() as u64,
        "every query admitted"
    );
    // All clients needing the same levels shared expansions instead of
    // each re-expanding: never more write expansions than cost levels.
    assert!(
        stats.expansions <= u64::from(CB) + 1,
        "expected single-flight expansion sharing, saw {} expansions",
        stats.expansions
    );
}

#[test]
fn snapshot_roundtrip_preserves_service_results() {
    let targets = query_mix();
    let want = serial_reference(&targets);

    // Save a warm engine, reload it, and serve the same mix.
    let mut warm = SynthesisEngine::unit_cost_with_threads(1);
    warm.expand_to_cost(CB);
    let bytes = warm.snapshot_to_bytes().expect("serialize warm engine");

    // (c1) serial queries on the loaded engine.
    let mut loaded = SynthesisEngine::load_snapshot_from_bytes(&bytes, 1).expect("load");
    let serial_loaded: Vec<Outcome> = targets
        .iter()
        .map(|t| outcome(loaded.synthesize(t, CB)))
        .collect();
    assert_eq!(want, serial_loaded, "snapshot round-trip changed results");

    // (c2) 8 concurrent clients over a host built from the snapshot.
    let loaded = SynthesisEngine::load_snapshot_from_bytes(&bytes, 1).expect("load");
    let host = Arc::new(EngineHost::new(loaded, 7));
    let got = through_host(&host, &targets);
    assert_eq!(want, got, "snapshot-backed host diverges from serial");
    // The snapshot already covers every queried level: zero expansions.
    assert_eq!(host.stats().unwrap().expansions, 0);
}

#[test]
fn auto_strategy_matches_forced_uni() {
    // The serving planner must never change answers: "auto"
    // (cache-hit-or-bidirectional) and a forced "uni" agree on cost,
    // witness count, and reachability for the whole mix — including
    // Fredkin's definitive `None` at cb = 5 — even though the two
    // strategies may surface different (equally minimal) witness
    // circuits.
    let targets = query_mix();
    let uni_host = EngineHost::new(SynthesisEngine::unit_cost_with_threads(1), 7);
    let auto_host = EngineHost::new(SynthesisEngine::unit_cost_with_threads(1), 7);
    for target in &targets {
        let uni = uni_host
            .synthesize_with_strategy(target, CB, ServeStrategy::Uni)
            .expect("admitted");
        let auto = auto_host
            .synthesize_with_strategy(target, CB, ServeStrategy::Auto)
            .expect("admitted");
        assert_eq!(
            uni.as_ref().map(|s| (s.cost, s.implementation_count)),
            auto.as_ref().map(|s| (s.cost, s.implementation_count)),
            "strategy divergence on {target}"
        );
        if let Some(syn) = &auto {
            assert!(syn.circuit.verify_against_binary_perm(target), "{target}");
        }
    }
    // The auto host never deepened its shared forward levels past the
    // one preparation level; the uni host climbed to the bound.
    assert_eq!(auto_host.stats().unwrap().completed, Some(0));
    assert_eq!(uni_host.stats().unwrap().completed, Some(5));
}

#[test]
fn concurrent_bounds_respect_warm_engine_semantics() {
    // Mixed bounds from many clients: under-bound queries must stay
    // `None` even while other clients warm the same shared engine past
    // their bound (the PR 2 warm-bound regression, service edition).
    let host = Arc::new(EngineHost::new(
        SynthesisEngine::unit_cost_with_threads(1),
        7,
    ));
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let bounded = Arc::clone(&host);
            scope.spawn(move || {
                for _ in 0..5 {
                    assert!(bounded
                        .synthesize(&known::toffoli_perm(), 4)
                        .unwrap()
                        .is_none());
                }
            });
            let unbounded = Arc::clone(&host);
            scope.spawn(move || {
                for _ in 0..5 {
                    let syn = unbounded
                        .synthesize(&known::toffoli_perm(), 6)
                        .unwrap()
                        .expect("cost 5 within bound 6");
                    assert_eq!(syn.cost, 5);
                    assert_eq!(syn.implementation_count, 4);
                }
            });
        }
    });
}
