//! Serde round-trips for the feature-gated `serde` support (C-SERDE):
//! circuits, permutations, patterns and census rows survive JSON.

// The whole suite needs the `serde` feature (on by default; CI's
// `--no-default-features` job compiles the workspace without it).
#![cfg(feature = "serde")]

use mvq_arith::{CDyadic, Dyadic};
use mvq_core::{Census, CensusRow, Circuit, CostModel};
use mvq_logic::{Gate, Pattern, Value};
use mvq_perm::Perm;

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + for<'de> serde::Deserialize<'de>,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn dyadic_roundtrip() {
    for d in [Dyadic::ZERO, Dyadic::HALF, Dyadic::new(-7, 4)] {
        assert_eq!(roundtrip(&d), d);
    }
}

#[test]
fn cdyadic_roundtrip() {
    for z in [CDyadic::I, CDyadic::HALF_ONE_PLUS_I, CDyadic::new(-3, 5, 2)] {
        assert_eq!(roundtrip(&z), z);
    }
}

#[test]
fn perm_roundtrip() {
    let p: Perm = "(5,17,7,21)(6,18,8,22)".parse().unwrap();
    assert_eq!(roundtrip(&p), p);
}

#[test]
fn value_and_pattern_roundtrip() {
    for v in Value::ALL {
        assert_eq!(roundtrip(&v), v);
    }
    let pattern = Pattern::new(vec![Value::One, Value::V0, Value::Zero]);
    assert_eq!(roundtrip(&pattern), pattern);
}

#[test]
fn gate_and_circuit_roundtrip() {
    let circuit: Circuit = "VCB*FBA*VCA*V+CB".parse().unwrap();
    let back = roundtrip(&circuit);
    assert_eq!(back, circuit);
    // Behaviour survives, not just structure.
    assert_eq!(back.binary_perm(), circuit.binary_perm());
    let gate = Gate::v_dagger(2, 0);
    assert_eq!(roundtrip(&gate), gate);
}

#[test]
fn cost_model_roundtrip() {
    let m = CostModel::weighted(2, 3, 1);
    assert_eq!(roundtrip(&m), m);
}

#[test]
fn census_rows_roundtrip() {
    let census = Census::compute(2);
    for row in census.rows() {
        let back: CensusRow = roundtrip(row);
        assert_eq!(&back, row);
    }
}

#[test]
fn json_is_stable_for_gates() {
    // Downstream tooling relies on the enum layout; pin it.
    let json = serde_json::to_string(&Gate::v(1, 0)).expect("serializes");
    assert_eq!(json, r#"{"V":{"data":1,"control":0}}"#);
}
