//! E10: the matrix-level identities of Figures 1–2 — `V·V = NOT`,
//! `V⁺·V = I`, unitarity of all 18 gate arrangements, and exact agreement
//! between the multiple-valued abstraction and Hilbert space.

use mvq_arith::{CDyadic, Dyadic};
use mvq_logic::{Gate, GateLibrary, PatternDomain};
use mvq_matrix::CMatrix;
use mvq_sim::{circuit_unitary, StateVector};

#[test]
fn v_matrix_values_match_the_paper() {
    // V = ½ [[1+i, 1−i], [1−i, 1+i]].
    let v = CMatrix::v_gate();
    assert_eq!(v[(0, 0)], CDyadic::new(1, 1, 1));
    assert_eq!(v[(0, 1)], CDyadic::new(1, -1, 1));
    assert_eq!(v[(1, 0)], CDyadic::new(1, -1, 1));
    assert_eq!(v[(1, 1)], CDyadic::new(1, 1, 1));
    // V⁺ is the conjugate.
    let vd = CMatrix::v_dagger_gate();
    assert_eq!(vd[(0, 0)], CDyadic::new(1, -1, 1));
    assert_eq!(vd[(0, 1)], CDyadic::new(1, 1, 1));
}

#[test]
fn square_root_of_not_identities() {
    let v = CMatrix::v_gate();
    let vd = CMatrix::v_dagger_gate();
    let not = CMatrix::not_gate();
    // V×V = V⁺×V⁺ = NOT; V⁺×V = V×V⁺ = I (Section 2).
    assert_eq!(&v * &v, not);
    assert_eq!(&vd * &vd, not);
    assert!((&vd * &v).is_identity());
    assert!((&v * &vd).is_identity());
}

#[test]
fn paper_v0_v1_column_vectors() {
    // V|0⟩ = ((1+i)/2, (1−i)/2)ᵀ and V|1⟩ = ((1−i)/2, (1+i)/2)ᵀ.
    let v = CMatrix::v_gate();
    let v0 = v.apply(&[CDyadic::ONE, CDyadic::ZERO]);
    assert_eq!(v0, vec![CDyadic::new(1, 1, 1), CDyadic::new(1, -1, 1)]);
    let v1 = v.apply(&[CDyadic::ZERO, CDyadic::ONE]);
    assert_eq!(v1, vec![CDyadic::new(1, -1, 1), CDyadic::new(1, 1, 1)]);
    // Measurement probabilities ½ / ½ (the "equal probabilities" remark).
    assert_eq!(v0[0].norm_sqr(), Dyadic::HALF);
    assert_eq!(v0[1].norm_sqr(), Dyadic::HALF);
}

#[test]
fn all_18_arrangements_are_unitary() {
    for lg in GateLibrary::standard(3).gates() {
        let u = lg.gate().unitary(3);
        assert!(u.is_unitary(), "{} is unitary", lg.gate());
        assert_eq!(u.rows(), 8);
    }
}

#[test]
fn controlled_v_squares_to_cnot_in_all_arrangements() {
    for data in 0..3usize {
        for control in 0..3usize {
            if data == control {
                continue;
            }
            let v = Gate::v(data, control).unitary(3);
            let cnot = Gate::feynman(data, control).unitary(3);
            assert_eq!(&v * &v, cnot, "V²=CNOT for ({data},{control})");
            let vd = Gate::v_dagger(data, control).unitary(3);
            assert!((&v * &vd).is_identity());
        }
    }
}

#[test]
fn mv_semantics_agrees_with_hilbert_space_on_reachable_patterns() {
    // For every gate and every domain pattern whose control wires are
    // binary (the reachable situations), pattern semantics == unitary
    // semantics, exactly.
    let domain = PatternDomain::permutable(3);
    for lg in GateLibrary::standard(3).gates() {
        let g = lg.gate();
        let u = g.unitary(3);
        for (_, p) in domain.iter() {
            let skip = match g {
                Gate::V { control, .. } | Gate::VDagger { control, .. } => {
                    p.value(control).is_mixed()
                }
                Gate::Feynman { data, control } => {
                    p.value(data).is_mixed() || p.value(control).is_mixed()
                }
                Gate::Not { .. } => false,
            };
            if skip {
                continue;
            }
            let mut sv = StateVector::from_pattern(p);
            sv.apply_unitary(&u);
            let want = StateVector::from_pattern(&g.apply(p));
            assert_eq!(sv, want, "{g} on {p}");
        }
    }
}

#[test]
fn cascade_unitary_is_product_of_gate_unitaries() {
    let gates = [Gate::v(2, 1), Gate::feynman(1, 0), Gate::v_dagger(0, 2)];
    let u = circuit_unitary(&gates, 3);
    let manual = &Gate::v_dagger(0, 2).unitary(3)
        * &(&Gate::feynman(1, 0).unitary(3) * &Gate::v(2, 1).unitary(3));
    assert_eq!(u, manual);
    assert!(u.is_unitary());
}

#[test]
fn probabilities_remain_exactly_normalized_through_deep_cascades() {
    // 20 gates deep, exact arithmetic: probabilities still sum to exactly 1.
    let mut sv = StateVector::basis(3, 0b111);
    let cascade = [
        Gate::v(1, 0),
        Gate::v_dagger(2, 0),
        Gate::feynman(0, 2),
        Gate::v(2, 0),
    ];
    for _ in 0..5 {
        sv.apply_cascade(&cascade);
    }
    let total = sv
        .distribution()
        .probs()
        .iter()
        .fold(Dyadic::ZERO, |acc, &p| acc + p);
    assert_eq!(total, Dyadic::ONE);
}
