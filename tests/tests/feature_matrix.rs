//! Feature-matrix guard: the workspace's key types must compile and work
//! both **with** and **without** the `serde` feature. CI runs this suite
//! twice — default features (serde on) and `--no-default-features`
//! (serde off) — so the `#[cfg_attr(feature = "serde", …)]` gates in
//! arith/logic/perm/core can't silently break in either direction.

use mvq_arith::{CDyadic, Dyadic};
use mvq_core::{Census, Circuit, CostModel};
use mvq_logic::{Gate, Pattern, PatternDomain, Value};
use mvq_perm::Perm;

/// Exercises every serde-gated type through its plain (feature-free) API.
/// This test is identical in both feature configurations.
#[test]
fn gated_types_work_without_serde_specific_api() {
    assert_eq!(Dyadic::new(1, 1) + Dyadic::new(1, 1), Dyadic::ONE);
    assert_eq!(CDyadic::I * CDyadic::I, -CDyadic::ONE);

    let perm: Perm = "(5,7,6,8)".parse().expect("cycle notation parses");
    assert_eq!(perm.image(5), 7);

    assert_eq!(Value::ALL.len(), 4);
    let pattern = Pattern::new(vec![Value::One, Value::V0, Value::Zero]);
    assert_eq!(pattern.len(), 3);
    assert_eq!(PatternDomain::permutable(3).len(), 38);

    let gate = Gate::v(1, 0);
    assert_eq!(gate, Gate::v(1, 0));

    let circuit: Circuit = "VCB*FBA".parse().expect("circuit notation parses");
    assert_eq!(circuit.cost_under(&CostModel::unit()), 2);

    let census = Census::compute(1);
    assert_eq!(census.rows().len(), 2);
}

#[cfg(feature = "serde")]
mod with_serde {
    use super::*;
    use std::fmt::Debug;

    fn roundtrip<T>(value: &T) -> T
    where
        T: serde::Serialize + for<'de> serde::Deserialize<'de>,
    {
        let json = serde_json::to_string(value).expect("serializes");
        serde_json::from_str(&json).expect("deserializes")
    }

    fn assert_roundtrips<T>(value: T)
    where
        T: serde::Serialize + for<'de> serde::Deserialize<'de> + PartialEq + Debug,
    {
        assert_eq!(roundtrip(&value), value);
    }

    /// With the feature on, every gated type must satisfy the serde
    /// bounds and survive a JSON round-trip.
    #[test]
    fn gated_types_roundtrip_when_serde_is_enabled() {
        assert_roundtrips(Dyadic::new(-7, 4));
        assert_roundtrips(CDyadic::new(-3, 5, 2));
        assert_roundtrips("(5,7,6,8)".parse::<Perm>().expect("parses"));
        assert_roundtrips(Value::V1);
        assert_roundtrips(Pattern::new(vec![Value::Zero, Value::V0]));
        assert_roundtrips(Gate::v_dagger(2, 0));
        assert_roundtrips("VCB*FBA".parse::<Circuit>().expect("parses"));
        assert_roundtrips(CostModel::weighted(2, 3, 1));
    }
}
