//! Observability contract suite: the log2 histogram's quantile bounds
//! against an exact sorted-vector reference, and the `/metrics` ↔
//! `/stats` ↔ trace-line agreement of a live server under concurrent
//! clients — every request must show up once in each view, with the
//! same counts.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use mvq_obs::{parse_scrape, Histogram, LogLevel};
use mvq_serve::{HostConfig, HostRegistry, ServeObs, Server, ServerHandle};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Histogram quantile bounds vs. an exact reference.
// ---------------------------------------------------------------------

/// Nearest-rank quantile on the raw samples: the ground truth the
/// bucketed histogram must bracket.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #[test]
    fn histogram_brackets_the_exact_quantiles(
        values in prop::collection::vec(0u64..50_000_000, 1..300),
        q_percent in 1u32..100,
    ) {
        let q = f64::from(q_percent) / 100.0;
        let histogram = Histogram::new();
        for &v in &values {
            histogram.record(v);
        }
        let snap = histogram.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());

        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [q, 0.5, 0.9, 0.99] {
            let exact = exact_quantile(&sorted, q);
            let (lower, upper) = snap.quantile_bounds(q);
            prop_assert!(
                lower <= exact && exact <= upper,
                "q={q}: exact {exact} outside bucket [{lower}, {upper}]"
            );
            // The reported (conservative) quantile is the bucket's upper
            // bound, so it never understates the exact value.
            prop_assert!(snap.quantile(q) >= exact);
        }
    }

    #[test]
    fn bucket_bounds_contain_their_values(value in 0u64..u64::MAX) {
        let index = Histogram::bucket_index(value);
        prop_assert!(Histogram::bucket_lower_bound(index) <= value);
        prop_assert!(value <= Histogram::bucket_upper_bound(index));
    }
}

// ---------------------------------------------------------------------
// Live-server agreement: /metrics == /stats == trace lines.
// ---------------------------------------------------------------------

/// In-memory trace sink shared with the server's `TraceLog`.
#[derive(Clone, Default)]
struct SharedSink(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("sink").extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl SharedSink {
    fn lines(&self) -> Vec<String> {
        String::from_utf8(self.0.lock().expect("sink").clone())
            .expect("trace lines are UTF-8")
            .lines()
            .map(str::to_string)
            .collect()
    }
}

struct RunningServer {
    handle: ServerHandle,
    obs: Arc<ServeObs>,
    runner: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl RunningServer {
    fn start(registry: HostRegistry, workers: usize, sink: SharedSink) -> Self {
        let server = Server::bind("127.0.0.1:0", Arc::new(registry)).expect("bind loopback");
        let obs = server.obs();
        obs.trace().set_sink(Box::new(sink));
        obs.trace().set_level(LogLevel::Info);
        let handle = server.handle().expect("handle");
        let runner = std::thread::spawn(move || server.run(workers));
        Self {
            handle,
            obs,
            runner: Some(runner),
        }
    }

    fn request(&self, method: &str, path: &str, body: &str) -> (u16, String) {
        request_at(self.handle.addr(), method, path, body)
    }

    fn shutdown(mut self) {
        self.handle.shutdown();
        self.runner
            .take()
            .expect("still running")
            .join()
            .expect("server thread")
            .expect("server run");
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        if let Some(runner) = self.runner.take() {
            self.handle.shutdown();
            let _ = runner.join();
        }
    }
}

fn request_at(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {response}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// The scripted per-client workload: five requests that succeed and one
/// malformed body that must still be traced.
const CLIENT_SCRIPT: [(&str, &str, &str, u16); 6] = [
    ("POST", "/synthesize", r#"{"target":"(7,8)","cb":6}"#, 200),
    ("POST", "/synthesize", r#"{"target":"(7,8)","cb":6}"#, 200),
    (
        "POST",
        "/synthesize",
        r#"{"target":"(5,7,6,8)","cb":5}"#,
        200,
    ),
    ("POST", "/census", r#"{"cb":3}"#, 200),
    ("GET", "/healthz", "", 200),
    ("POST", "/synthesize", "definitely not json", 400),
];

#[test]
fn metrics_stats_and_trace_lines_agree_under_concurrent_clients() {
    const CLIENTS: usize = 8;
    let sink = SharedSink::default();
    let server = RunningServer::start(
        HostRegistry::new(HostConfig {
            threads: 1,
            ..HostConfig::default()
        }),
        4,
        sink.clone(),
    );

    let addr = server.handle.addr();
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            scope.spawn(move || {
                for (method, path, body, want) in CLIENT_SCRIPT {
                    let (status, body_out) = request_at(addr, method, path, body);
                    assert_eq!(status, want, "{method} {path}: {body_out}");
                }
            });
        }
    });
    let traffic = CLIENTS * CLIENT_SCRIPT.len();

    // Scrape after the clients quiesce, so the counter identity is
    // exact. The /metrics body is rendered before its own request is
    // counted, so it sees precisely the client traffic.
    let (status, metrics_body) = server.request("GET", "/metrics", "");
    assert_eq!(status, 200, "{metrics_body}");
    let scrape = parse_scrape(&metrics_body);
    let counter = |name: &str| {
        *scrape
            .counters
            .get(name)
            .unwrap_or_else(|| panic!("{name} missing from /metrics:\n{metrics_body}"))
    };
    assert_eq!(counter("http_requests_total"), traffic as u64);
    assert_eq!(counter("synthesize_requests_total"), (CLIENTS * 3) as u64);
    assert_eq!(counter("census_requests_total"), CLIENTS as u64);
    assert_eq!(counter("sheds_total"), 0);
    assert!(counter("expansions_total") > 0, "cold engine must expand");
    // Every host-level synthesis either hit or missed the result cache.
    assert_eq!(
        counter("cache_hits_total") + counter("cache_misses_total"),
        counter("synthesize_requests_total") + counter("census_requests_total"),
    );
    let request_hist = &scrape.histograms["request_us"];
    assert_eq!(request_hist.count, traffic as u64);

    // /stats must embed the very same registry: every counter the
    // scrape reported appears verbatim in its "metrics" object (the
    // request counters have moved by the /metrics request itself, so
    // compare only the host-derived ones, which are quiescent).
    let (status, stats_body) = server.request("GET", "/stats", "");
    assert_eq!(status, 200, "{stats_body}");
    for name in [
        "synthesize_requests_total",
        "census_requests_total",
        "cache_hits_total",
        "cache_misses_total",
        "expansions_total",
        "single_flight_waits_total",
        "rejected_requests_total",
        "rebuilds_total",
        "deadline_timeouts_total",
        "sheds_total",
    ] {
        let needle = format!("\"{name}\":{}", counter(name));
        assert!(
            stats_body.contains(&needle),
            "/stats disagrees with /metrics on {needle}:\n{stats_body}"
        );
    }

    // /debug/slow serves retained trace lines.
    let (status, slow_body) = server.request("GET", "/debug/slow", "");
    assert_eq!(status, 200, "{slow_body}");
    assert!(slow_body.starts_with(r#"{"slowest":["#), "{slow_body}");

    server.shutdown();

    // Exactly one trace line per request — the client traffic plus the
    // three inspection requests above — each with a unique id.
    let lines = sink.lines();
    assert_eq!(lines.len(), traffic + 3, "{lines:#?}");
    let ids: std::collections::BTreeSet<&str> = lines
        .iter()
        .map(|l| {
            l.split_once(r#""trace":""#)
                .and_then(|(_, rest)| rest.split_once('"'))
                .map(|(id, _)| id)
                .unwrap_or_else(|| panic!("no trace id in {l}"))
        })
        .collect();
    assert_eq!(ids.len(), lines.len(), "trace ids must be unique");
    let count_with = |needle: &str| lines.iter().filter(|l| l.contains(needle)).count();
    assert_eq!(count_with(r#""outcome":"ok""#), CLIENTS * 5 + 3);
    assert_eq!(count_with(r#""outcome":"invalid""#), CLIENTS);
    // The malformed-body lines keep the full schema, nulls included.
    assert_eq!(count_with(r#""target":null"#), CLIENTS * 2 + 3 + CLIENTS);
}

#[test]
fn trace_level_off_emits_nothing() {
    let sink = SharedSink::default();
    let server = RunningServer::start(HostRegistry::new(HostConfig::default()), 1, sink.clone());
    server.obs.trace().set_level(LogLevel::Off);
    let (status, _) = server.request("GET", "/healthz", "");
    assert_eq!(status, 200);
    server.shutdown();
    assert!(sink.lines().is_empty(), "{:#?}", sink.lines());
}
