//! Determinism audit for parallel sharded level expansion: for any
//! thread count the engine must produce **bit-identical** search state —
//! the same per-cost levels in the same order, the same class costs and
//! witness counts, and the same Dijkstra decrease-key outcomes under
//! weighted cost models — as the serial engine, warm and cold, for both
//! the unidirectional and bidirectional strategies.

use std::sync::{Mutex, OnceLock};

use mvq_core::{
    known, CostModel, Narrow, SearchEngine, SearchWidth, SynthesisEngine, SynthesisStrategy, Wide,
};
use mvq_logic::GateLibrary;
use mvq_perm::Perm;
use proptest::prelude::*;

const PARALLEL_THREADS: [usize; 3] = [2, 4, 8];

fn unit_engine(threads: usize) -> SynthesisEngine {
    SynthesisEngine::with_threads(GateLibrary::standard(3), CostModel::unit(), threads)
}

fn weighted_engine(threads: usize) -> SynthesisEngine {
    SynthesisEngine::with_threads(
        GateLibrary::standard(3),
        CostModel::weighted(1, 2, 3),
        threads,
    )
}

/// Levels, counts, and class statistics must agree exactly — including
/// the *order* of words within every level.
fn assert_state_identical(
    reference: &SynthesisEngine,
    other: &SynthesisEngine,
    up_to: u32,
    label: &str,
) {
    assert_eq!(reference.g_counts(), other.g_counts(), "{label}: g_counts");
    assert_eq!(reference.b_counts(), other.b_counts(), "{label}: b_counts");
    assert_eq!(reference.a_size(), other.a_size(), "{label}: |A|");
    assert_eq!(
        reference.classes_found(),
        other.classes_found(),
        "{label}: classes"
    );
    for cost in 0..=up_to {
        assert_eq!(
            reference.level_words(cost),
            other.level_words(cost),
            "{label}: level {cost} words (order-sensitive)"
        );
    }
}

#[test]
fn unit_cost_levels_bit_identical_across_thread_counts() {
    let mut serial = unit_engine(1);
    serial.expand_to_cost(5);
    for threads in PARALLEL_THREADS {
        let mut parallel = unit_engine(threads);
        parallel.expand_to_cost(5);
        assert_state_identical(&serial, &parallel, 5, &format!("unit, threads={threads}"));
    }
}

#[test]
fn weighted_levels_bit_identical_across_thread_counts() {
    // weighted(1,2,3) exercises gap levels, within-level cost mixing,
    // and the lazy decrease-key re-admissions.
    let mut serial = weighted_engine(1);
    serial.expand_to_cost(6);
    for threads in PARALLEL_THREADS {
        let mut parallel = weighted_engine(threads);
        parallel.expand_to_cost(6);
        assert_state_identical(
            &serial,
            &parallel,
            6,
            &format!("weighted(1,2,3), threads={threads}"),
        );
    }
}

#[test]
fn warm_synthesis_agrees_for_every_low_cost_class() {
    // Every class realizable within cost 4: identical minimal cost and
    // witness count on warm engines at every thread count, both
    // strategies.
    let mut enumerator = unit_engine(1);
    let mut serial = unit_engine(1);
    serial.expand_to_cost(4);
    for threads in PARALLEL_THREADS {
        let mut parallel = unit_engine(threads);
        parallel.expand_to_cost(4);
        for k in 0..=4u32 {
            for (perm, _) in enumerator.reversible_circuits_at_cost(k) {
                let want = serial.synthesize(&perm, 4).expect("within bound");
                let uni = parallel.synthesize(&perm, 4).expect("within bound");
                let bidi = parallel
                    .synthesize_bidirectional(&perm, 4)
                    .expect("within bound");
                assert_eq!(want.cost, uni.cost, "uni cost of {perm}, threads={threads}");
                assert_eq!(
                    want.implementation_count, uni.implementation_count,
                    "uni count of {perm}, threads={threads}"
                );
                assert_eq!(
                    want.cost, bidi.cost,
                    "bidi cost of {perm}, threads={threads}"
                );
                assert_eq!(
                    want.implementation_count, bidi.implementation_count,
                    "bidi count of {perm}, threads={threads}"
                );
                assert!(uni.circuit.verify_against_binary_perm(&perm));
                assert!(bidi.circuit.verify_against_binary_perm(&perm));
            }
        }
    }
}

#[test]
fn cold_bidirectional_deep_target_identical_across_thread_counts() {
    // Fredkin at cost 7 — cold engines, so the adaptive bidirectional
    // split and both frontiers' parallel expansion are exercised
    // end-to-end.
    for threads in [1, 2, 4, 8] {
        let mut engine = unit_engine(threads);
        assert!(engine
            .synthesize_bidirectional(&known::fredkin_perm(), 6)
            .is_none());
        let syn = engine
            .synthesize_bidirectional(&known::fredkin_perm(), 7)
            .expect("cost 7");
        assert_eq!(syn.cost, 7, "threads={threads}");
        assert_eq!(syn.implementation_count, 16, "threads={threads}");
        assert!(syn
            .circuit
            .verify_against_binary_perm(&known::fredkin_perm()));
    }
}

#[test]
fn bidirectional_join_matrix_bit_identical_across_threads() {
    // The sharded bidirectional join: threads {1,2,4,8} ×
    // {unit, weighted(1,2,3)} × {warm, cold} × {3-wire, 4-wire} must
    // reproduce the serial join's cost, witness count, AND circuit
    // exactly (the shard-order merge keeps the first-witness scan order,
    // and the distinct-witness sets are merged without loss).
    fn case<W: SearchWidth>(
        wires: usize,
        model: CostModel,
        target: &Perm,
        cb: u32,
        warm: bool,
        label: &str,
    ) {
        let run = |threads: usize| {
            let mut engine =
                SearchEngine::<W>::with_threads(GateLibrary::standard(wires), model, threads);
            if warm {
                engine.expand_to_cost(2);
            }
            engine
                .synthesize_bidirectional(target, cb)
                .map(|s| (s.cost, s.implementation_count, s.circuit.to_string()))
        };
        let reference = run(1);
        assert!(reference.is_some(), "{label}: reference found no witness");
        for threads in PARALLEL_THREADS {
            assert_eq!(run(threads), reference, "{label}: threads={threads}");
        }
    }

    let unit = CostModel::unit();
    let weighted = CostModel::weighted(1, 2, 3);
    let weighted3: Perm = "(3,5)(4,6)".parse::<Perm>().unwrap().extended(8);
    // Toffoli embedded on 4 wires (flip C when A = B = 1), and the
    // 4-wire CNOT — whose weighted(1,2,3) minimum is a cost-2 double-V,
    // exercising gap levels in the wide join.
    let toffoli4 = known::parse_target_on("(13,15)(14,16)", 16).unwrap();
    let cnot4 = known::parse_target_on("(9,10)(11,12)(13,14)(15,16)", 16).unwrap();
    for warm in [false, true] {
        let w = if warm { "warm" } else { "cold" };
        case::<Narrow>(
            3,
            unit,
            &known::fredkin_perm(),
            7,
            warm,
            &format!("3-wire unit fredkin, {w}"),
        );
        case::<Narrow>(
            3,
            weighted,
            &weighted3,
            8,
            warm,
            &format!("3-wire weighted(1,2,3), {w}"),
        );
        case::<Wide>(
            4,
            unit,
            &toffoli4,
            5,
            warm,
            &format!("4-wire unit toffoli, {w}"),
        );
        case::<Wide>(
            4,
            weighted,
            &cnot4,
            4,
            warm,
            &format!("4-wire weighted(1,2,3) cnot, {w}"),
        );
    }
}

#[test]
fn weighted_cold_synthesis_identical_across_thread_counts() {
    // The Dijkstra-exactness regression target under weighted(1,2,3):
    // an all-V cost-6 cascade beats the first-seen cost-7 path.
    let target: Perm = "(3,5)(4,6)".parse::<Perm>().unwrap().extended(8);
    let mut serial = weighted_engine(1);
    let want = serial.synthesize(&target, 8).expect("reachable");
    assert_eq!(want.cost, 6);
    for threads in PARALLEL_THREADS {
        let mut uni = weighted_engine(threads);
        let mut bidi = weighted_engine(threads);
        let a = uni.synthesize(&target, 8).expect("reachable");
        let b = bidi
            .synthesize_bidirectional(&target, 8)
            .expect("reachable");
        assert_eq!(a.cost, want.cost, "threads={threads}");
        assert_eq!(b.cost, want.cost, "threads={threads}");
        assert_eq!(
            a.implementation_count, want.implementation_count,
            "threads={threads}"
        );
        assert_eq!(
            b.implementation_count, want.implementation_count,
            "threads={threads}"
        );
    }
}

#[test]
fn set_threads_on_warm_engine_keeps_expansion_identical() {
    // Reshard mid-search: expand serially to cost 3, switch to 4
    // threads, finish to cost 5 — state must match an all-serial run.
    let mut serial = unit_engine(1);
    serial.expand_to_cost(5);
    let mut mixed = unit_engine(1);
    mixed.expand_to_cost(3);
    mixed.set_threads(4);
    assert_eq!(mixed.threads(), 4);
    mixed.expand_to_cost(5);
    assert_state_identical(&serial, &mixed, 5, "reshard at cost 3");
    // And back down to serial.
    mixed.set_threads(1);
    assert_eq!(mixed.minimal_cost(&known::toffoli_perm(), 5), Some(5));
}

/// Shared warm engines for the property suite: one per thread count,
/// expanded once (proptest would otherwise rebuild the cost-5 levels
/// for every case).
fn warm_engines() -> &'static Mutex<Vec<SynthesisEngine>> {
    static ENGINES: OnceLock<Mutex<Vec<SynthesisEngine>>> = OnceLock::new();
    ENGINES.get_or_init(|| {
        let engines = [1, 2, 4, 8]
            .into_iter()
            .map(|threads| {
                let mut engine = unit_engine(threads);
                engine.expand_to_cost(5);
                engine
            })
            .collect();
        Mutex::new(engines)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_targets_agree_across_thread_counts_and_strategies(
        images in Just((1..=8usize).collect::<Vec<_>>()).prop_shuffle(),
        strategy_bit in any::<bool>(),
    ) {
        let target = Perm::from_images(&images).expect("shuffled bijection");
        let strategy = if strategy_bit {
            SynthesisStrategy::Bidirectional
        } else {
            SynthesisStrategy::Unidirectional
        };
        let mut engines = warm_engines().lock().expect("no poisoning");
        let reference = engines[0]
            .synthesize(&target, 5)
            .map(|s| (s.cost, s.implementation_count));
        for engine in engines.iter_mut() {
            let got = engine
                .synthesize_with(strategy, &target, 5)
                .map(|s| (s.cost, s.implementation_count));
            prop_assert_eq!(
                got,
                reference,
                "threads={}, strategy={}",
                engine.threads(),
                strategy
            );
        }
    }
}
