//! Property-based tests: permutations form a group, cycle notation
//! round-trips, and restriction behaves like GAP's `RestrictedPerm`.

use mvq_perm::Perm;
use proptest::prelude::*;

/// Random permutation of {1..=n} for n in 2..=12.
fn perm() -> impl Strategy<Value = Perm> {
    (2usize..=12)
        .prop_flat_map(|n| Just((1..=n).collect::<Vec<usize>>()).prop_shuffle())
        .prop_map(|images| Perm::from_images(&images).expect("shuffle is a bijection"))
}

/// Two random permutations of the same degree.
fn perm_pair() -> impl Strategy<Value = (Perm, Perm)> {
    (2usize..=10).prop_flat_map(|n| {
        let one = Just((1..=n).collect::<Vec<usize>>())
            .prop_shuffle()
            .prop_map(|v| Perm::from_images(&v).expect("bijection"));
        let two = Just((1..=n).collect::<Vec<usize>>())
            .prop_shuffle()
            .prop_map(|v| Perm::from_images(&v).expect("bijection"));
        (one, two)
    })
}

proptest! {
    #[test]
    fn inverse_cancels_both_sides(p in perm()) {
        prop_assert!((p.clone() * p.inverse()).is_identity());
        prop_assert!((p.inverse() * p).is_identity());
    }

    #[test]
    fn product_convention_applies_left_first((a, b) in perm_pair()) {
        let ab = a.clone() * b.clone();
        for point in 1..=a.degree() {
            prop_assert_eq!(ab.image(point), b.image(a.image(point)));
        }
    }

    #[test]
    fn inverse_of_product_reverses((a, b) in perm_pair()) {
        let left = (a.clone() * b.clone()).inverse();
        let right = b.inverse() * a.inverse();
        prop_assert_eq!(left, right);
    }

    #[test]
    fn display_parse_roundtrip(p in perm()) {
        if p.is_identity() {
            return Ok(()); // "( )" parses to degree 1; see extended()
        }
        let s = p.to_string();
        let back: Perm = s.parse().expect("cycle notation parses");
        prop_assert_eq!(back.extended(p.degree()), p);
    }

    #[test]
    fn order_annihilates(p in perm()) {
        let order = p.order();
        prop_assert!(order >= 1);
        let mut acc = Perm::identity(p.degree());
        for _ in 0..order {
            acc = acc * p.clone();
        }
        prop_assert!(acc.is_identity());
    }

    #[test]
    fn power_below_order_is_not_identity(p in perm()) {
        let order = p.order();
        if order > 1 {
            // p^d for every proper divisor d of order is non-identity
            // exactly when d < order; check d = order / smallest prime
            // factor.
            let spf = (2..=order).find(|d| order % d == 0).expect("has a factor");
            let d = order / spf;
            if d > 0 {
                let mut acc = Perm::identity(p.degree());
                for _ in 0..d {
                    acc = acc * p.clone();
                }
                prop_assert!(!acc.is_identity());
            }
        }
    }

    #[test]
    fn preimage_inverts_image(p in perm()) {
        for point in 1..=p.degree() {
            prop_assert_eq!(p.preimage(p.image(point)), point);
            prop_assert_eq!(p.inverse().image(point), p.preimage(point));
        }
    }

    #[test]
    fn conjugation_preserves_cycle_type((a, b) in perm_pair()) {
        let conj = a.conjugated_by(&b);
        let mut type_a: Vec<usize> = a.cycles().iter().map(|c| c.len()).collect();
        let mut type_c: Vec<usize> = conj.cycles().iter().map(|c| c.len()).collect();
        type_a.sort_unstable();
        type_c.sort_unstable();
        prop_assert_eq!(type_a, type_c);
    }

    #[test]
    fn support_matches_moved_points(p in perm()) {
        let support = p.support();
        for point in 1..=p.degree() {
            prop_assert_eq!(support.contains(&point), p.image(point) != point);
        }
    }

    #[test]
    fn restriction_to_full_domain_is_identity_operation(p in perm()) {
        let full: Vec<usize> = (1..=p.degree()).collect();
        let r = p.restricted(&full).expect("full set is invariant");
        prop_assert_eq!(r, p);
    }

    #[test]
    fn cycles_partition_the_support(p in perm()) {
        let mut from_cycles: Vec<usize> =
            p.cycles().into_iter().flatten().collect();
        from_cycles.sort_unstable();
        prop_assert_eq!(from_cycles, p.support());
    }

    #[test]
    fn extension_commutes_with_product((a, b) in perm_pair()) {
        let wide = (a.clone() * b.clone()).extended(14);
        let separate = a.extended(14) * b.extended(14);
        prop_assert_eq!(wide, separate);
    }
}
