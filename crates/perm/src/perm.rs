use std::error::Error;
use std::fmt;
use std::ops::Mul;
use std::str::FromStr;

/// A permutation of the points `{1, 2, …, n}`.
///
/// Internally stored as a 0-based image table; externally every API speaks
/// the paper's 1-based language. Products use the paper's (and GAP's)
/// convention: `a * b` applies `a` **first**, then `b`, so
/// `(a * b).image(p) == b.image(a.image(p))`.
///
/// # Examples
///
/// ```
/// use mvq_perm::Perm;
///
/// let a: Perm = "(1,2,3)".parse()?;
/// let b: Perm = "(3,4)".parse()?;
/// let ab = a * b;
/// assert_eq!(ab.image(2), 4); // 2 →a 3 →b 4
/// # Ok::<(), mvq_perm::ParsePermError>(())
/// ```
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Perm {
    /// `images[p]` is the 0-based image of 0-based point `p`.
    images: Vec<u8>,
}

impl Perm {
    /// Maximum supported domain size (images are stored as `u8`).
    pub const MAX_DEGREE: usize = 255;

    /// The identity permutation `( )` on `{1, …, degree}`.
    ///
    /// # Panics
    ///
    /// Panics if `degree > Perm::MAX_DEGREE`.
    pub fn identity(degree: usize) -> Self {
        assert!(degree <= Self::MAX_DEGREE, "degree too large");
        Self {
            images: (0..degree as u8).collect(),
        }
    }

    /// Builds a permutation from a 1-based image table:
    /// `images[p - 1]` is the image of point `p`.
    ///
    /// Returns `None` if the table is not a bijection of `{1, …, n}`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mvq_perm::Perm;
    /// let p = Perm::from_images(&[2, 1, 3]).unwrap();
    /// assert_eq!(p.to_string(), "(1,2)");
    /// assert!(Perm::from_images(&[1, 1]).is_none());
    /// ```
    pub fn from_images(images: &[usize]) -> Option<Self> {
        let n = images.len();
        if n > Self::MAX_DEGREE {
            return None;
        }
        let mut seen = vec![false; n];
        let mut table = Vec::with_capacity(n);
        for &img in images {
            if img == 0 || img > n || seen[img - 1] {
                return None;
            }
            seen[img - 1] = true;
            table.push((img - 1) as u8);
        }
        Some(Self { images: table })
    }

    /// Builds a permutation of `{1, …, degree}` from disjoint cycles.
    ///
    /// Returns `None` if a point is out of range or repeated.
    ///
    /// # Examples
    ///
    /// ```
    /// use mvq_perm::Perm;
    /// let vba = Perm::from_cycles(38, &[vec![5, 17, 7, 21], vec![6, 18, 8, 22]]).unwrap();
    /// assert_eq!(vba.image(5), 17);
    /// assert_eq!(vba.image(21), 5);
    /// ```
    pub fn from_cycles(degree: usize, cycles: &[Vec<usize>]) -> Option<Self> {
        if degree > Self::MAX_DEGREE {
            return None;
        }
        let mut images: Vec<u8> = (0..degree as u8).collect();
        let mut seen = vec![false; degree];
        for cycle in cycles {
            for window in 0..cycle.len() {
                let from = *cycle.get(window)?;
                let to = cycle[(window + 1) % cycle.len()];
                if from == 0 || from > degree || to == 0 || to > degree || seen[from - 1] {
                    return None;
                }
                seen[from - 1] = true;
                images[from - 1] = (to - 1) as u8;
            }
        }
        Some(Self { images })
    }

    /// The domain size `n`.
    pub fn degree(&self) -> usize {
        self.images.len()
    }

    /// The image of 1-based point `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is zero or exceeds the degree.
    pub fn image(&self, p: usize) -> usize {
        self.images[p - 1] as usize + 1
    }

    /// The preimage of 1-based point `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is zero or exceeds the degree.
    pub fn preimage(&self, p: usize) -> usize {
        self.images
            .iter()
            .position(|&img| img as usize == p - 1)
            // lint: allow(panic) callers pass points inside the permutation's domain (checked by debug_assert above)
            .expect("point out of range")
            + 1
    }

    /// The image of a set of 1-based points, sorted ascending.
    ///
    /// This is the paper's `f(S)` used in the banned-set test of the
    /// *reasonable product*.
    pub fn image_of_set(&self, set: &[usize]) -> Vec<usize> {
        let mut out: Vec<usize> = set.iter().map(|&p| self.image(p)).collect();
        out.sort_unstable();
        out
    }

    /// `true` iff this is the identity mapping `( )`.
    pub fn is_identity(&self) -> bool {
        self.images
            .iter()
            .enumerate()
            .all(|(p, &img)| p as u8 == img)
    }

    /// `true` iff `self` maps the set `S` onto itself.
    ///
    /// Points above the degree are treated as fixed, so a narrow
    /// permutation can be tested against a wider set.
    pub fn stabilizes_set(&self, set: &[usize]) -> bool {
        set.iter().all(|&p| {
            let img = if p <= self.degree() { self.image(p) } else { p };
            set.contains(&img)
        })
    }

    /// GAP's `RestrictedPerm(b, S)`: if `b(S) = S`, the permutation `b'` of
    /// `{1, …, |S|}` with `b'(i) = position in S of b(S[i])`; otherwise
    /// `None`.
    ///
    /// `set` must be sorted ascending; the resulting permutation acts on
    /// positions within `set` (1-based). For the paper's `S = {1, …, 8}`
    /// this is literally the restriction.
    ///
    /// # Examples
    ///
    /// ```
    /// use mvq_perm::Perm;
    /// let b: Perm = "(5,7,6,8)(9,11)".parse()?;
    /// let s: Vec<usize> = (1..=8).collect();
    /// let restricted = b.restricted(&s).unwrap();
    /// assert_eq!(restricted.to_string(), "(5,7,6,8)");
    /// # Ok::<(), mvq_perm::ParsePermError>(())
    /// ```
    pub fn restricted(&self, set: &[usize]) -> Option<Perm> {
        let mut images = Vec::with_capacity(set.len());
        for &p in set {
            let img = self.image(p);
            let pos = set.binary_search(&img).ok()?;
            images.push(pos as u8);
        }
        Some(Perm { images })
    }

    /// The inverse permutation.
    ///
    /// # Examples
    ///
    /// ```
    /// use mvq_perm::Perm;
    /// let p: Perm = "(1,2,3)".parse()?;
    /// assert!((p.clone() * p.inverse()).is_identity());
    /// # Ok::<(), mvq_perm::ParsePermError>(())
    /// ```
    pub fn inverse(&self) -> Perm {
        let mut images = vec![0u8; self.images.len()];
        for (p, &img) in self.images.iter().enumerate() {
            images[img as usize] = p as u8;
        }
        Perm { images }
    }

    /// The multiplicative order of the permutation.
    ///
    /// # Examples
    ///
    /// ```
    /// use mvq_perm::Perm;
    /// let p: Perm = "(1,2)(3,4,5)".parse()?;
    /// assert_eq!(p.order(), 6);
    /// # Ok::<(), mvq_perm::ParsePermError>(())
    /// ```
    pub fn order(&self) -> u64 {
        self.cycles().iter().map(|c| c.len() as u64).fold(1, lcm)
    }

    /// The disjoint cycles of length ≥ 2 (1-based, each starting at its
    /// smallest point, sorted by that point).
    pub fn cycles(&self) -> Vec<Vec<usize>> {
        let n = self.images.len();
        let mut seen = vec![false; n];
        let mut cycles = Vec::new();
        for start in 0..n {
            if seen[start] || self.images[start] as usize == start {
                continue;
            }
            let mut cycle = vec![start + 1];
            seen[start] = true;
            let mut cur = self.images[start] as usize;
            while cur != start {
                seen[cur] = true;
                cycle.push(cur + 1);
                cur = self.images[cur] as usize;
            }
            cycles.push(cycle);
        }
        cycles
    }

    /// The set of points moved by the permutation (1-based, ascending).
    pub fn support(&self) -> Vec<usize> {
        self.images
            .iter()
            .enumerate()
            .filter(|&(p, &img)| p as u8 != img)
            .map(|(p, _)| p + 1)
            .collect()
    }

    /// Extends the permutation to a larger degree, fixing the new points.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is smaller than the current degree or exceeds
    /// [`Perm::MAX_DEGREE`].
    pub fn extended(&self, degree: usize) -> Perm {
        assert!(degree >= self.degree(), "cannot shrink a permutation");
        assert!(degree <= Self::MAX_DEGREE, "degree too large");
        let mut images = self.images.clone();
        images.extend(self.degree() as u8..degree as u8);
        Perm { images }
    }

    /// Raw access to the 0-based image table.
    pub fn as_images(&self) -> &[u8] {
        &self.images
    }

    /// Left quotient `self⁻¹ * other`: the unique `x` with
    /// `self * x = other` (paper/GAP product convention).
    ///
    /// This is the coset-reduction step of the paper's Theorem 2: given a
    /// NOT-layer permutation `d0`, `d0.left_div(target)` is the remainder
    /// the level search must express.
    ///
    /// # Examples
    ///
    /// ```
    /// use mvq_perm::Perm;
    /// let a: Perm = "(1,2,3)".parse()?;
    /// let b: Perm = "(1,3)".parse()?;
    /// let x = a.left_div(&b);
    /// assert_eq!(a * x, b);
    /// # Ok::<(), mvq_perm::ParsePermError>(())
    /// ```
    pub fn left_div(&self, other: &Perm) -> Perm {
        self.inverse() * other.clone()
    }

    /// Right quotient `self * other⁻¹`: the unique `x` with
    /// `x * other = self` (paper/GAP product convention).
    ///
    /// The meet-in-the-middle search uses this to peel a known suffix off
    /// a target: if a frontier realizes `other` as a tail, the remaining
    /// head is `self.right_div(&other)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mvq_perm::Perm;
    /// let a: Perm = "(1,2,3)".parse()?;
    /// let b: Perm = "(1,3)".parse()?;
    /// let x = a.right_div(&b);
    /// assert_eq!(x * b, a);
    /// # Ok::<(), mvq_perm::ParsePermError>(())
    /// ```
    pub fn right_div(&self, other: &Perm) -> Perm {
        self.clone() * other.inverse()
    }

    /// Conjugate of `self` by `g`: `g⁻¹ * self * g` (paper convention).
    ///
    /// Used to derive the "other five similar circuits with different
    /// permutations of the three bits" from each g1–g4 representative.
    pub fn conjugated_by(&self, g: &Perm) -> Perm {
        g.inverse() * self.clone() * g.clone()
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

impl Mul for Perm {
    type Output = Perm;

    /// `a * b`: apply `a` first, then `b` (paper/GAP convention).
    ///
    /// Operands of different degrees are extended to the larger one by
    /// fixing the extra points, matching GAP semantics.
    fn mul(self, rhs: Perm) -> Perm {
        let degree = self.degree().max(rhs.degree());
        let lhs = if self.degree() < degree {
            self.extended(degree)
        } else {
            self
        };
        let rhs = if rhs.degree() < degree {
            rhs.extended(degree)
        } else {
            rhs
        };
        let images = lhs
            .images
            .iter()
            .map(|&mid| rhs.images[mid as usize])
            .collect();
        Perm { images }
    }
}

impl Mul for &Perm {
    type Output = Perm;

    fn mul(self, rhs: &Perm) -> Perm {
        self.clone() * rhs.clone()
    }
}

impl fmt::Display for Perm {
    /// Formats as disjoint cycles, `( )` for the identity.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cycles = self.cycles();
        if cycles.is_empty() {
            return write!(f, "( )");
        }
        for cycle in cycles {
            write!(f, "(")?;
            for (i, p) in cycle.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{p}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// Error returned when parsing a [`Perm`] from cycle notation fails.
///
/// # Examples
///
/// ```
/// use mvq_perm::Perm;
/// assert!("(1,2".parse::<Perm>().is_err());
/// assert!("(1,1)".parse::<Perm>().is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePermError {
    message: String,
}

impl fmt::Display for ParsePermError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid cycle notation: {}", self.message)
    }
}

impl Error for ParsePermError {}

impl FromStr for Perm {
    type Err = ParsePermError;

    /// Parses disjoint-cycle notation such as `"(5,17,7,21)(6,18,8,22)"`.
    ///
    /// `"( )"` and `"()"` denote the identity. The degree is the largest
    /// point mentioned (minimum 1); use [`Perm::extended`] to widen it.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |m: &str| ParsePermError { message: m.into() };
        let compact: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        if compact.is_empty() {
            return Err(err("empty input"));
        }
        let mut cycles: Vec<Vec<usize>> = Vec::new();
        let mut rest = compact.as_str();
        while !rest.is_empty() {
            let body_and_rest = rest.strip_prefix('(').ok_or_else(|| err("expected `(`"))?;
            let close = body_and_rest.find(')').ok_or_else(|| err("missing `)`"))?;
            let body = &body_and_rest[..close];
            rest = &body_and_rest[close + 1..];
            if body.is_empty() {
                continue; // identity cycle
            }
            let cycle = body
                .split(',')
                .map(|t| {
                    t.parse::<usize>()
                        .ok()
                        .filter(|&p| p >= 1)
                        .ok_or_else(|| err(&format!("bad point `{t}`")))
                })
                .collect::<Result<Vec<usize>, _>>()?;
            cycles.push(cycle);
        }
        let degree = cycles
            .iter()
            .flat_map(|c| c.iter().copied())
            .max()
            .unwrap_or(1);
        Perm::from_cycles(degree, &cycles).ok_or_else(|| err("repeated point across cycles"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Perm {
        s.parse().unwrap()
    }

    #[test]
    fn identity_roundtrip() {
        let id = Perm::identity(8);
        assert!(id.is_identity());
        assert_eq!(id.to_string(), "( )");
        assert_eq!("()".parse::<Perm>().unwrap().degree(), 1);
        assert!("( )".parse::<Perm>().unwrap().is_identity());
    }

    #[test]
    fn product_applies_left_first() {
        let a = p("(1,2,3)");
        let b = p("(3,4)").extended(4);
        let ab = a.extended(4) * b;
        // 2 →a 3 →b 4.
        assert_eq!(ab.image(2), 4);
        // GAP convention, not function composition.
        assert_eq!(ab.image(3), 1);
    }

    #[test]
    fn inverse_cancels() {
        let a = p("(5,17,7,21)(6,18,8,22)(13,19,15,23)(14,20,16,24)");
        assert!((a.clone() * a.inverse()).is_identity());
        assert!((a.inverse() * a).is_identity());
    }

    #[test]
    fn inverse_of_four_cycle() {
        let v = p("(5,17,7,21)");
        let vinv = v.inverse();
        assert_eq!(vinv.image(17), 5);
        assert_eq!(vinv.to_string(), "(5,21,7,17)");
    }

    #[test]
    fn order_is_lcm_of_cycle_lengths() {
        assert_eq!(p("(1,2)").order(), 2);
        assert_eq!(p("(1,2)(3,4,5)").order(), 6);
        assert_eq!(Perm::identity(5).order(), 1);
        assert_eq!(p("(5,7,6,8)").order(), 4);
    }

    #[test]
    fn cycles_start_at_smallest_point() {
        let v = p("(7,21,5,17)");
        assert_eq!(v.to_string(), "(5,17,7,21)");
    }

    #[test]
    fn image_of_set_sorts() {
        let a = p("(1,5)(2,6)");
        assert_eq!(a.image_of_set(&[1, 2, 3]), vec![3, 5, 6]);
    }

    #[test]
    fn restricted_matches_gap_semantics() {
        let s: Vec<usize> = (1..=8).collect();
        // b stabilizes S.
        let b = p("(5,7,6,8)(9,11)");
        let r = b.restricted(&s).unwrap();
        assert_eq!(r.degree(), 8);
        assert_eq!(r.to_string(), "(5,7,6,8)");
        // b does not stabilize S → None (Restrictedperm returns FALSE).
        let b2 = p("(8,9)");
        assert!(b2.restricted(&s).is_none());
    }

    #[test]
    fn restricted_renumbers_sparse_sets() {
        // Restricting (2,4) to S = {2, 4} gives the transposition (1,2).
        let b = p("(2,4)");
        let r = b.restricted(&[2, 4]).unwrap();
        assert_eq!(r.to_string(), "(1,2)");
    }

    #[test]
    fn stabilizes_set_checks_closure() {
        assert!(p("(1,2)").stabilizes_set(&[1, 2, 3]));
        assert!(!p("(3,4)").stabilizes_set(&[1, 2, 3]));
    }

    #[test]
    fn support_and_extension() {
        let a = p("(2,3)");
        assert_eq!(a.support(), vec![2, 3]);
        let wide = a.extended(10);
        assert_eq!(wide.degree(), 10);
        assert_eq!(wide.image(9), 9);
        assert_eq!(wide.support(), vec![2, 3]);
    }

    #[test]
    fn preimage_inverts_image() {
        let a = p("(1,3,5,7)");
        for point in 1..=7 {
            assert_eq!(a.preimage(a.image(point)), point);
        }
    }

    #[test]
    fn left_div_solves_left_multiplication() {
        let a = p("(1,2,3,4)");
        let b = p("(2,4)(1,3)");
        let x = a.left_div(&b);
        assert_eq!(a * x, b);
    }

    #[test]
    fn right_div_solves_right_multiplication() {
        let a = p("(1,2,3,4)");
        let b = p("(2,4)(1,3)");
        let x = a.right_div(&b);
        assert_eq!(x * b, a);
    }

    #[test]
    fn quotients_of_self_are_identity() {
        let a = p("(1,5)(2,6,3)");
        assert!(a.left_div(&a).is_identity());
        assert!(a.right_div(&a).is_identity());
    }

    #[test]
    fn quotients_extend_mismatched_degrees() {
        // Mixed degrees follow the Mul convention: extend by fixing.
        let a = p("(1,2)");
        let b = p("(3,4)");
        assert_eq!(a.left_div(&b), a.clone() * b.clone());
        assert_eq!(a.right_div(&b), a * b);
    }

    #[test]
    fn conjugation_relabels_cycles() {
        // Conjugating (1,2) by (2,3) gives (1,3).
        let t = p("(1,2)").extended(3);
        let g = p("(2,3)");
        assert_eq!(t.conjugated_by(&g).to_string(), "(1,3)");
    }

    #[test]
    fn from_images_validates() {
        assert!(Perm::from_images(&[2, 1]).is_some());
        assert!(Perm::from_images(&[2, 2]).is_none());
        assert!(Perm::from_images(&[0, 1]).is_none());
        assert!(Perm::from_images(&[3, 1]).is_none());
    }

    #[test]
    fn from_cycles_rejects_overlap() {
        assert!(Perm::from_cycles(5, &[vec![1, 2], vec![2, 3]]).is_none());
        assert!(Perm::from_cycles(5, &[vec![1, 6]]).is_none());
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in ["", "(1,2", "1,2)", "(1,x)", "(1,1)", "(0,1)"] {
            assert!(bad.parse::<Perm>().is_err(), "should reject `{bad}`");
        }
    }

    #[test]
    fn display_parse_roundtrip() {
        for s in ["(1,2)", "(5,17,7,21)(6,18,8,22)", "(3,4)(5,8)(6,7)"] {
            assert_eq!(p(s).to_string(), s);
        }
    }
}
