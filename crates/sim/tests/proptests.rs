//! Property-based tests: exact state-vector simulation preserves
//! normalization, adjoint cascades invert, and the V ↔ V⁺ swap preserves
//! permutative behaviour.

use mvq_arith::Dyadic;
use mvq_logic::Gate;
use mvq_sim::{adjoint_cascade, circuit_unitary, vswap_cascade, StateVector};
use proptest::prelude::*;

fn gate3() -> impl Strategy<Value = Gate> {
    let pairs = [(0usize, 1usize), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1)];
    (0usize..4, prop::sample::select(pairs.to_vec())).prop_map(|(kind, (d, c))| match kind {
        0 => Gate::v(d, c),
        1 => Gate::v_dagger(d, c),
        2 => Gate::feynman(d, c),
        _ => Gate::not(d),
    })
}

fn cascade() -> impl Strategy<Value = Vec<Gate>> {
    prop::collection::vec(gate3(), 0..10)
}

proptest! {
    #[test]
    fn normalization_is_preserved_exactly(gates in cascade(), start in 0usize..8) {
        let mut sv = StateVector::basis(3, start);
        sv.apply_cascade(&gates);
        let total = sv
            .distribution()
            .probs()
            .iter()
            .fold(Dyadic::ZERO, |acc, &p| acc + p);
        prop_assert_eq!(total, Dyadic::ONE);
    }

    #[test]
    fn adjoint_cascade_returns_to_start(gates in cascade(), start in 0usize..8) {
        let mut sv = StateVector::basis(3, start);
        sv.apply_cascade(&gates);
        sv.apply_cascade(&adjoint_cascade(&gates));
        prop_assert_eq!(sv.as_basis(), Some(start));
    }

    #[test]
    fn cascade_unitary_is_unitary(gates in cascade()) {
        prop_assert!(circuit_unitary(&gates, 3).is_unitary());
    }

    #[test]
    fn unitary_times_adjoint_unitary_is_identity(gates in cascade()) {
        let u = circuit_unitary(&gates, 3);
        let ua = circuit_unitary(&adjoint_cascade(&gates), 3);
        prop_assert!((&u * &ua).is_identity());
    }

    #[test]
    fn vswap_preserves_permutation_matrices(gates in cascade()) {
        // Whenever a cascade is permutative, its V ↔ V⁺ swap realizes the
        // very same permutation (a permutation matrix is real, so it
        // equals its complex conjugate).
        let u = circuit_unitary(&gates, 3);
        if let Some(images) = u.to_permutation_images() {
            let swapped = circuit_unitary(&vswap_cascade(&gates), 3);
            prop_assert_eq!(swapped.to_permutation_images(), Some(images));
        }
    }

    #[test]
    fn marginal_probabilities_are_consistent(gates in cascade(), start in 0usize..8) {
        let mut sv = StateVector::basis(3, start);
        sv.apply_cascade(&gates);
        let dist = sv.distribution();
        for wire in 0..3 {
            let mask = 1usize << (2 - wire);
            let marginal: Dyadic = dist
                .probs()
                .iter()
                .enumerate()
                .filter(|(i, _)| i & mask != 0)
                .map(|(_, &p)| p)
                .fold(Dyadic::ZERO, |acc, p| acc + p);
            prop_assert_eq!(marginal, sv.prob_wire_one(wire));
        }
    }

    #[test]
    fn state_application_matches_unitary_application(
        gates in cascade(), start in 0usize..8
    ) {
        let mut a = StateVector::basis(3, start);
        a.apply_cascade(&gates);
        let mut b = StateVector::basis(3, start);
        b.apply_unitary(&circuit_unitary(&gates, 3));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn sampling_stays_in_support(gates in cascade(), seed in 0u64..1000) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut sv = StateVector::basis(3, 0b101);
        sv.apply_cascade(&gates);
        let dist = sv.distribution();
        let support = dist.support();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..16 {
            prop_assert!(support.contains(&dist.sample(&mut rng)));
        }
    }
}
