use mvq_arith::Dyadic;
use rand::Rng;

/// An exact probability distribution over the `2^n` basis states of a
/// register — the interface between the quantum circuit and the
/// measurement unit of Figure 3 (the probabilistic state machine).
///
/// Probabilities are exact dyadic rationals (squared magnitudes of
/// ℤ[i, ½] amplitudes always are), so empirical sampling frequencies can
/// be compared against *exact* targets.
///
/// # Examples
///
/// ```
/// use mvq_logic::Gate;
/// use mvq_sim::StateVector;
///
/// let mut sv = StateVector::basis(2, 0b10);
/// sv.apply_gate(Gate::v(1, 0));
/// let d = sv.distribution();
/// assert_eq!(d.prob_of(0b10).to_f64(), 0.5);
/// assert_eq!(d.support().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Distribution {
    probs: Vec<Dyadic>,
}

impl Distribution {
    /// Wraps a probability vector.
    ///
    /// # Panics
    ///
    /// Panics if the probabilities do not sum exactly to 1.
    pub fn new(probs: Vec<Dyadic>) -> Self {
        let total = probs.iter().fold(Dyadic::ZERO, |acc, &p| acc + p);
        assert_eq!(total, Dyadic::ONE, "probabilities must sum to one");
        Self { probs }
    }

    /// The exact probability of basis state `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn prob_of(&self, state: usize) -> Dyadic {
        self.probs[state]
    }

    /// All probabilities in basis order.
    pub fn probs(&self) -> &[Dyadic] {
        &self.probs
    }

    /// Basis states with non-zero probability, ascending.
    pub fn support(&self) -> Vec<usize> {
        self.probs
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.is_zero())
            .map(|(i, _)| i)
            .collect()
    }

    /// `true` iff the distribution is a point mass (deterministic output).
    pub fn is_deterministic(&self) -> bool {
        self.support().len() == 1
    }

    /// Samples one basis state.
    ///
    /// This is the "Measurement" box of Figure 3: the only place in the
    /// workspace where exactness gives way to randomness.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let roll: f64 = rng.gen();
        let mut acc = 0.0;
        for (state, p) in self.probs.iter().enumerate() {
            acc += p.to_f64();
            if roll < acc {
                return state;
            }
        }
        // Floating-point slack: return the last supported state.
        *self.support().last().expect("distribution has support")
    }

    /// Samples `n` measurements and returns per-state counts.
    pub fn sample_counts<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<usize> {
        let mut counts = vec![0usize; self.probs.len()];
        for _ in 0..n {
            counts[self.sample(rng)] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn half_half() -> Distribution {
        Distribution::new(vec![Dyadic::HALF, Dyadic::ZERO, Dyadic::ZERO, Dyadic::HALF])
    }

    #[test]
    fn support_and_determinism() {
        let d = half_half();
        assert_eq!(d.support(), vec![0, 3]);
        assert!(!d.is_deterministic());
        let point = Distribution::new(vec![Dyadic::ZERO, Dyadic::ONE]);
        assert!(point.is_deterministic());
    }

    #[test]
    #[should_panic(expected = "sum to one")]
    fn rejects_unnormalized() {
        let _ = Distribution::new(vec![Dyadic::HALF, Dyadic::HALF, Dyadic::HALF]);
    }

    #[test]
    fn sampling_respects_support() {
        let d = half_half();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let s = d.sample(&mut rng);
            assert!(s == 0 || s == 3);
        }
    }

    #[test]
    fn sampling_frequencies_approach_exact_probabilities() {
        let d = half_half();
        let mut rng = StdRng::seed_from_u64(42);
        let counts = d.sample_counts(&mut rng, 20_000);
        let f0 = counts[0] as f64 / 20_000.0;
        assert!((f0 - 0.5).abs() < 0.02, "frequency {f0} too far from 0.5");
        assert_eq!(counts[1], 0);
        assert_eq!(counts[2], 0);
    }

    #[test]
    fn deterministic_sampling_is_constant() {
        let point = Distribution::new(vec![Dyadic::ZERO, Dyadic::ONE]);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(point.sample_counts(&mut rng, 50)[1] == 50);
    }
}
