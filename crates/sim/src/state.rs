use mvq_arith::{CDyadic, Dyadic};
use mvq_logic::{Gate, Pattern};
use mvq_matrix::CMatrix;

use crate::Distribution;

/// An exact amplitude vector over the `2^n` computational basis states of
/// an `n`-qubit register.
///
/// Wire `A` (index 0) is the most significant bit of the basis index,
/// matching the paper's truth-table ordering.
///
/// # Examples
///
/// ```
/// use mvq_logic::Gate;
/// use mvq_sim::StateVector;
///
/// // |10⟩ through controlled-V (control A, data B):
/// let mut sv = StateVector::basis(2, 0b10);
/// sv.apply_gate(Gate::v(1, 0));
/// // The data qubit is now V|0⟩ — a half/half superposition.
/// let d = sv.distribution();
/// assert_eq!(d.prob_of(0b10).to_f64(), 0.5);
/// assert_eq!(d.prob_of(0b11).to_f64(), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateVector {
    wires: usize,
    amps: Vec<CDyadic>,
}

impl StateVector {
    /// The basis state `|bits⟩` on `wires` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `bits >= 2^wires` or `wires > 12` (exact simulation of
    /// larger registers is outside this reproduction's scope).
    pub fn basis(wires: usize, bits: usize) -> Self {
        assert!(wires <= 12, "register too large for exact simulation");
        let dim = 1usize << wires;
        assert!(bits < dim, "basis state out of range");
        let mut amps = vec![CDyadic::ZERO; dim];
        amps[bits] = CDyadic::ONE;
        Self { wires, amps }
    }

    /// The product state of a (possibly mixed-valued) wire pattern.
    ///
    /// # Examples
    ///
    /// ```
    /// use mvq_logic::{Pattern, Value};
    /// use mvq_sim::StateVector;
    ///
    /// let p = Pattern::new(vec![Value::One, Value::V0]);
    /// let sv = StateVector::from_pattern(&p);
    /// assert_eq!(sv.distribution().prob_of(0b10).to_f64(), 0.5);
    /// ```
    pub fn from_pattern(pattern: &Pattern) -> Self {
        let mut amps = vec![CDyadic::ONE];
        for v in pattern.values() {
            let (a0, a1) = v.amplitudes();
            let mut next = Vec::with_capacity(amps.len() * 2);
            for &a in &amps {
                next.push(a * a0);
                next.push(a * a1);
            }
            amps = next;
        }
        Self {
            wires: pattern.len(),
            amps,
        }
    }

    /// Builds a state from raw amplitudes.
    ///
    /// Returns `None` unless the length is a power of two and the squared
    /// magnitudes sum to exactly 1.
    pub fn from_amplitudes(amps: Vec<CDyadic>) -> Option<Self> {
        if !amps.len().is_power_of_two() {
            return None;
        }
        let norm: Dyadic = amps
            .iter()
            .map(|a| a.norm_sqr())
            .fold(Dyadic::ZERO, |acc, p| acc + p);
        if norm != Dyadic::ONE {
            return None;
        }
        Some(Self {
            wires: amps.len().trailing_zeros() as usize,
            amps,
        })
    }

    /// The number of wires.
    pub fn wires(&self) -> usize {
        self.wires
    }

    /// The exact amplitudes, basis order (wire `A` most significant).
    pub fn amplitudes(&self) -> &[CDyadic] {
        &self.amps
    }

    /// Applies an elementary gate in place.
    ///
    /// # Panics
    ///
    /// Panics if the gate references a wire outside the register.
    pub fn apply_gate(&mut self, gate: Gate) {
        // Gate unitaries are tiny; going through the matrix keeps the
        // semantics in one place (`Gate::unitary`).
        let u = gate.unitary(self.wires);
        self.amps = u.apply(&self.amps);
    }

    /// Applies a cascade of gates left to right (paper order: `d[0]` is
    /// executed first).
    pub fn apply_cascade(&mut self, gates: &[Gate]) {
        for &g in gates {
            self.apply_gate(g);
        }
    }

    /// Applies an arbitrary unitary.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn apply_unitary(&mut self, u: &CMatrix) {
        assert_eq!(u.cols(), self.amps.len(), "dimension mismatch");
        self.amps = u.apply(&self.amps);
    }

    /// The exact measurement distribution over all basis states.
    pub fn distribution(&self) -> Distribution {
        Distribution::new(self.amps.iter().map(|a| a.norm_sqr()).collect())
    }

    /// The exact probability of measuring `1` on `wire` (marginal).
    ///
    /// # Panics
    ///
    /// Panics if `wire` is out of range.
    pub fn prob_wire_one(&self, wire: usize) -> Dyadic {
        assert!(wire < self.wires, "wire out of range");
        let mask = 1usize << (self.wires - 1 - wire);
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & mask != 0)
            .map(|(_, a)| a.norm_sqr())
            .fold(Dyadic::ZERO, |acc, p| acc + p)
    }

    /// `true` iff the state is exactly a computational basis state, and if
    /// so, which.
    pub fn as_basis(&self) -> Option<usize> {
        let mut found = None;
        for (i, a) in self.amps.iter().enumerate() {
            if a.is_zero() {
                continue;
            }
            // Accept any unit-magnitude amplitude (global phase).
            if a.norm_sqr() != Dyadic::ONE || found.is_some() {
                return None;
            }
            found = Some(i);
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvq_logic::Value;

    #[test]
    fn basis_state_roundtrip() {
        let sv = StateVector::basis(3, 0b101);
        assert_eq!(sv.as_basis(), Some(0b101));
        assert_eq!(sv.wires(), 3);
    }

    #[test]
    fn from_pattern_matches_basis_for_binary() {
        let p = Pattern::from_bits(0b110, 3);
        assert_eq!(StateVector::from_pattern(&p), StateVector::basis(3, 0b110));
    }

    #[test]
    fn v_creates_equal_superposition() {
        let mut sv = StateVector::basis(2, 0b10);
        sv.apply_gate(Gate::v(1, 0));
        assert_eq!(sv.prob_wire_one(1), Dyadic::HALF);
        assert_eq!(sv.prob_wire_one(0), Dyadic::ONE);
        assert_eq!(sv.as_basis(), None);
    }

    #[test]
    fn v_twice_is_not_on_states() {
        let mut sv = StateVector::basis(2, 0b10);
        sv.apply_cascade(&[Gate::v(1, 0), Gate::v(1, 0)]);
        assert_eq!(sv.as_basis(), Some(0b11));
    }

    #[test]
    fn control_zero_is_inert() {
        let mut sv = StateVector::basis(2, 0b01);
        sv.apply_gate(Gate::v(1, 0)); // control A = 0
        assert_eq!(sv.as_basis(), Some(0b01));
    }

    #[test]
    fn cascade_matches_pattern_semantics() {
        // A mixed-value pattern pushed through a (control-binary) cascade
        // agrees with the MV algebra.
        let p = Pattern::new(vec![Value::One, Value::V0, Value::Zero]);
        let mut sv = StateVector::from_pattern(&p);
        let g = Gate::v(1, 0); // control A = 1, data B mixed
        sv.apply_gate(g);
        let expected = StateVector::from_pattern(&g.apply(&p));
        assert_eq!(sv, expected);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut sv = StateVector::basis(3, 0b111);
        sv.apply_cascade(&[Gate::v(1, 0), Gate::v_dagger(2, 1), Gate::feynman(0, 2)]);
        let total = sv
            .distribution()
            .probs()
            .iter()
            .fold(Dyadic::ZERO, |acc, &p| acc + p);
        assert_eq!(total, Dyadic::ONE);
    }

    #[test]
    fn from_amplitudes_validates() {
        assert!(StateVector::from_amplitudes(vec![CDyadic::ONE, CDyadic::ZERO]).is_some());
        // Not normalized.
        assert!(StateVector::from_amplitudes(vec![CDyadic::ONE, CDyadic::ONE]).is_none());
        // Not a power of two.
        assert!(
            StateVector::from_amplitudes(vec![CDyadic::ONE, CDyadic::ZERO, CDyadic::ZERO])
                .is_none()
        );
    }

    #[test]
    fn global_phase_still_counts_as_basis() {
        let mut amps = vec![CDyadic::ZERO; 4];
        amps[2] = CDyadic::I; // i·|10⟩
        let sv = StateVector::from_amplitudes(amps).unwrap();
        assert_eq!(sv.as_basis(), Some(2));
    }

    #[test]
    fn apply_unitary_matches_apply_gate() {
        let g = Gate::v_dagger(0, 2);
        let mut a = StateVector::basis(3, 0b011);
        let mut b = a.clone();
        a.apply_gate(g);
        b.apply_unitary(&g.unitary(3));
        assert_eq!(a, b);
    }
}
