//! Exact state-vector and unitary simulator for small qubit registers.
//!
//! This crate is the reproduction's stand-in for the authors' physical
//! (NMR) semantics: every synthesis result produced by the multiple-valued
//! / group-theoretic machinery is *independently verified* here at the
//! Hilbert-space level, using exact ℤ[i, ½] arithmetic throughout — a
//! synthesized Toffoli cascade is checked by **matrix equality**, not by a
//! floating-point tolerance.
//!
//! * [`circuit_unitary`] multiplies out a gate cascade into one
//!   `2^n × 2^n` unitary.
//! * [`StateVector`] simulates amplitudes, exact measurement
//!   probabilities, and (for the Section 4 probabilistic-machine
//!   experiments) rand-driven sampling.
//! * [`adjoint_cascade`] / [`vswap_cascade`] implement the two circuit
//!   transforms the paper uses in Figures 8 and 9 (Hermitian-adjoint
//!   implementations).
//!
//! # Examples
//!
//! ```
//! use mvq_logic::Gate;
//! use mvq_sim::{circuit_unitary, StateVector};
//!
//! // Controlled-V twice equals CNOT.
//! let u = circuit_unitary(&[Gate::v(1, 0), Gate::v(1, 0)], 2);
//! assert_eq!(u, Gate::feynman(1, 0).unitary(2));
//!
//! // With the control raised, V|0⟩ measures 0 and 1 with probability ½ each.
//! let mut sv = StateVector::basis(2, 0b10);
//! sv.apply_gate(Gate::v(1, 0));
//! let probs = sv.distribution();
//! assert_eq!(probs.prob_of(0b10).to_f64(), 0.5);
//! assert_eq!(probs.prob_of(0b11).to_f64(), 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod measure;
mod state;
mod transform;

pub use measure::Distribution;
pub use state::StateVector;
pub use transform::{adjoint_cascade, circuit_unitary, vswap_cascade};
