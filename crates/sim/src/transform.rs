use mvq_logic::Gate;
use mvq_matrix::CMatrix;

/// Multiplies a gate cascade into a single `2^n × 2^n` unitary.
///
/// The cascade is in execution order (`gates[0]` acts first), so the
/// matrix is `U = U_k · … · U_2 · U_1`.
///
/// # Examples
///
/// ```
/// use mvq_logic::Gate;
/// use mvq_sim::circuit_unitary;
///
/// // The paper's Figure 4: Peres = VCB * FBA * VCA * V⁺CB.
/// let peres = [
///     Gate::v(2, 1),
///     Gate::feynman(1, 0),
///     Gate::v(2, 0),
///     Gate::v_dagger(2, 1),
/// ];
/// let u = circuit_unitary(&peres, 3);
/// // Peres is permutative: P = A, Q = A⊕B, R = C⊕AB.
/// assert_eq!(
///     u.to_permutation_images().unwrap(),
///     vec![1, 2, 3, 4, 7, 8, 6, 5],
/// );
/// ```
///
/// # Panics
///
/// Panics if a gate references a wire ≥ `n`.
pub fn circuit_unitary(gates: &[Gate], n: usize) -> CMatrix {
    let mut u = CMatrix::identity(1 << n);
    for g in gates {
        u = &g.unitary(n) * &u;
    }
    u
}

/// The Hermitian adjoint of a cascade: reversed order, each gate replaced
/// by its adjoint. `circuit_unitary(adjoint_cascade(c)) =
/// circuit_unitary(c)⁺` always holds.
///
/// # Examples
///
/// ```
/// use mvq_logic::Gate;
/// use mvq_sim::{adjoint_cascade, circuit_unitary};
///
/// let c = [Gate::v(2, 1), Gate::feynman(1, 0)];
/// let adj = adjoint_cascade(&c);
/// assert_eq!(adj, vec![Gate::feynman(1, 0), Gate::v_dagger(2, 1)]);
/// assert_eq!(circuit_unitary(&adj, 3), circuit_unitary(&c, 3).adjoint());
/// ```
pub fn adjoint_cascade(gates: &[Gate]) -> Vec<Gate> {
    gates.iter().rev().map(|g| g.adjoint()).collect()
}

/// The paper's Figure 8 transform: **keep the gate order** but swap every
/// V with V⁺ (and vice versa).
///
/// For a permutative circuit whose unitary is real (a 0/1 permutation
/// matrix), this produces the complex-conjugate implementation, which
/// realizes the *same* permutation — the paper's "hermitian adjoint
/// implementation" of Peres, and the (a)/(b) and (c)/(d) pairs of
/// Figure 9.
///
/// # Examples
///
/// ```
/// use mvq_logic::Gate;
/// use mvq_sim::{circuit_unitary, vswap_cascade};
///
/// let peres = [
///     Gate::v(2, 1),
///     Gate::feynman(1, 0),
///     Gate::v(2, 0),
///     Gate::v_dagger(2, 1),
/// ];
/// let swapped = vswap_cascade(&peres);
/// // Same permutative behaviour:
/// assert_eq!(
///     circuit_unitary(&swapped, 3),
///     circuit_unitary(&peres, 3),
/// );
/// ```
pub fn vswap_cascade(gates: &[Gate]) -> Vec<Gate> {
    gates.iter().map(|g| g.adjoint()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvq_logic::PatternDomain;

    fn peres() -> Vec<Gate> {
        vec![
            Gate::v(2, 1),
            Gate::feynman(1, 0),
            Gate::v(2, 0),
            Gate::v_dagger(2, 1),
        ]
    }

    #[test]
    fn empty_cascade_is_identity() {
        assert!(circuit_unitary(&[], 3).is_identity());
    }

    #[test]
    fn unitary_order_matters() {
        let a = circuit_unitary(&[Gate::v(1, 0), Gate::feynman(2, 1)], 3);
        let b = circuit_unitary(&[Gate::feynman(2, 1), Gate::v(1, 0)], 3);
        assert_ne!(a, b);
    }

    #[test]
    fn peres_cascade_is_permutative() {
        let u = circuit_unitary(&peres(), 3);
        assert!(u.is_permutation());
        // P = A, Q = A⊕B, R = C⊕AB (paper, Figure 4).
        let images = u.to_permutation_images().unwrap();
        for (state, &img) in images.iter().enumerate() {
            let (a, b, c) = (state >> 2 & 1, state >> 1 & 1, state & 1);
            let want = (a << 2) | ((a ^ b) << 1) | (c ^ (a & b));
            assert_eq!(img - 1, want, "state {state:03b}");
        }
    }

    #[test]
    fn adjoint_cascade_inverts() {
        let c = peres();
        let u = circuit_unitary(&c, 3);
        let adj = circuit_unitary(&adjoint_cascade(&c), 3);
        assert!((&u * &adj).is_identity());
    }

    #[test]
    fn vswap_preserves_permutative_behaviour() {
        // Figure 8: swapping V ↔ V⁺ realizes the same permutation.
        let c = peres();
        let swapped = vswap_cascade(&c);
        assert_eq!(circuit_unitary(&swapped, 3), circuit_unitary(&c, 3));
        // But is a genuinely different gate list.
        assert_ne!(swapped, c);
    }

    #[test]
    fn vswap_is_involution() {
        let c = peres();
        assert_eq!(vswap_cascade(&vswap_cascade(&c)), c);
    }

    #[test]
    fn unitary_matches_pattern_permutation_on_binary_inputs() {
        // The MV permutation restricted to binary patterns agrees with the
        // unitary permutation for the Peres cascade.
        let domain = PatternDomain::permutable(3);
        let mut perm = mvq_perm::Perm::identity(38);
        for g in peres() {
            perm = perm * g.perm(&domain);
        }
        let s: Vec<usize> = (1..=8).collect();
        let restricted = perm.restricted(&s).expect("peres maps S to S");
        let u = circuit_unitary(&peres(), 3);
        let images = u.to_permutation_images().unwrap();
        for p in 1..=8usize {
            assert_eq!(restricted.image(p), images[p - 1]);
        }
    }
}
