//! Rendering helpers shared by the CLI subcommands.

use mvq_core::{Circuit, Synthesis};

/// Renders a synthesis result: cost line, cascade, ASCII diagram.
pub fn render_synthesis(synthesis: &Synthesis) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "cost {} ({} minimal implementation{})\n",
        synthesis.cost,
        synthesis.implementation_count,
        if synthesis.implementation_count == 1 {
            ""
        } else {
            "s"
        },
    ));
    out.push_str(&render_circuit(&synthesis.circuit));
    out
}

/// Renders a circuit: cascade notation plus diagram.
pub fn render_circuit(circuit: &Circuit) -> String {
    format!("{circuit}\n{}\n", circuit.diagram())
}

/// Left-pads every line of `body` by `indent` spaces.
pub fn indent(body: &str, indent: usize) -> String {
    let pad = " ".repeat(indent);
    body.lines()
        .map(|l| format!("{pad}{l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvq_logic::Gate;

    #[test]
    fn render_circuit_includes_notation_and_diagram() {
        let c = Circuit::new(3, vec![Gate::v(2, 1), Gate::feynman(1, 0)]);
        let s = render_circuit(&c);
        assert!(s.contains("VCB*FBA"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn indent_pads_every_line() {
        let s = indent("a\nb", 2);
        assert_eq!(s, "  a\n  b");
    }
}
