//! Subcommand implementations.

use std::error::Error;
use std::sync::Arc;

use mvq_automata::ControlledRng;
use mvq_core::{
    universal, Census, Circuit, CostModel, Narrow, SearchEngine, SearchWidth, SnapshotError,
    SynthesisEngine, SynthesisStrategy, Wide, WideSynthesisEngine, EXPECTED_TABLE_2, PAPER_TABLE_2,
};
use mvq_logic::{Gate, GateLibrary, PatternDomain, TruthTable};
use mvq_perm::Perm;
use mvq_serve::{HostConfig, HostRegistry, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::args::{Args, ParseArgsError};
use crate::output;

type CommandResult = Result<(), Box<dyn Error>>;

const USAGE: &str = "\
mvq — exact synthesis of 3-qubit quantum circuits (Yang et al., DATE 2005)

USAGE:
    mvq <command> [options]

COMMANDS:
    census [--cb N] [--threads T]   reproduce Table 2 up to cost N (default 6;
           [--snapshot FILE]        3 on 4 wires) — warm-start from / write
           [--wires 2|3|4]          back a level-cache snapshot (created if
           [--model M]              missing); M is unit | V,VD,F |
                                    weighted(V,VD,F)
    synth <perm> [--cb N] [--all]   minimal-cost synthesis of a reversible
          [--strategy uni|bidi]     function given in cycle notation on the
          [--threads T]             2^n binary patterns, e.g. \"(7,8)\";
          [--snapshot FILE]         `bidi` meets in the middle from the
          [--wires 2|3|4]           target side (faster for deep targets);
          [--model M]               T defaults to MVQ_THREADS or the
                                    available parallelism (0 = auto)
    serve [--addr A] [--threads T]  long-lived synthesis service (HTTP/1.1 +
          [--snapshot FILE]         JSON): /synthesize /census /healthz
          [--max-cb N]              /stats /metrics /debug/slow /shutdown;
          [--workers W]             warm-starts from FILE (falling back to
          [--max-models M]          FILE.bak, then cold, if torn); admission
          [--faults PLAN]           rejects cost bounds > N (default 7); W
          [--log LEVEL]             handler threads (default 4); PLAN (or
                                    $MVQ_FAULTS) arms failpoints in
                                    `fault-injection` builds, e.g.
                                    \"snapshot.rename=err@2;pool.task=panic\";
                                    LEVEL (or $MVQ_LOG) is off | info | debug —
                                    info emits one JSON trace line per request
    verify <circuit> <perm>         check a cascade (e.g. VCB*FBA*VCA*V+CB)
                                    against a target permutation, exactly
    gate <name>                     show a gate's domain permutation and
                                    its exact 8x8 unitary (VBA, V+AB, FCA…)
    table [--wires N]               Table 1-style truth table of Ctrl-V
    universal                       G[4] structure & universality (Section 5)
    rng [--samples N] [--seed S]    controlled quantum RNG demo (Section 4)
    spectrum [--cb N]               cost spectrum, incl. levels beyond the
                                    paper's bound of 7 (memory permitting)
    help                            this message
";

/// Dispatches a raw argument vector to the matching subcommand.
pub fn dispatch(argv: &[String]) -> CommandResult {
    let args = Args::parse(argv, &["all"])?;
    // Every command honours `$MVQ_FAULTS`, so snapshot/expansion drills
    // work on one-shot runs too; `serve --faults` re-arms over this.
    arm_faults("")?;
    match args.positional(0) {
        None | Some("help") | Some("--help") => {
            println!("{USAGE}");
            Ok(())
        }
        Some("census") => census(&args),
        Some("synth") => synth(&args),
        Some("serve") => serve(&args),
        Some("verify") => verify(&args),
        Some("gate") => gate(&args),
        Some("table") => table(&args),
        Some("universal") => universal_cmd(&args),
        Some("rng") => rng(&args),
        Some("spectrum") => spectrum(&args),
        Some(other) => Err(Box::new(ParseArgsError::new(format!(
            "unknown command `{other}`"
        )))),
    }
}

/// Resolves `--threads` (0 or absent = auto: `MVQ_THREADS`, then the
/// machine's available parallelism).
fn thread_count(args: &Args) -> Result<usize, ParseArgsError> {
    let requested: usize = args.option("threads", 0)?;
    Ok(mvq_core::resolve_threads(
        (requested > 0).then_some(requested),
    ))
}

/// Resolves `--wires` (default 3).
fn wires_arg(args: &Args) -> Result<usize, ParseArgsError> {
    let wires: usize = args.option("wires", 3)?;
    if !(2..=4).contains(&wires) {
        return Err(ParseArgsError::new("--wires must be 2, 3 or 4"));
    }
    Ok(wires)
}

/// Resolves `--model` (default unit costs).
fn model_arg(args: &Args) -> Result<CostModel, ParseArgsError> {
    args.option("model", CostModel::unit())
}

/// Builds an engine for one-shot commands: loaded from `--snapshot` when
/// the file exists, cold otherwise. Returns the engine and the snapshot
/// depth it started from (for the write-back decision).
///
/// A loaded snapshot must match the *requested* wires and cost model —
/// a weighted snapshot warm-starts `--model weighted(...)` runs just
/// like a unit snapshot warm-starts unit runs.
fn snapshot_engine<W: SearchWidth>(
    args: &Args,
    wires: usize,
    model: CostModel,
    threads: usize,
) -> Result<(SearchEngine<W>, Option<u32>), Box<dyn Error>> {
    let cold = || -> Result<SearchEngine<W>, Box<dyn Error>> {
        Ok(SearchEngine::<W>::try_with_threads(
            GateLibrary::standard(wires),
            model,
            threads,
        )?)
    };
    let Some(path) = args
        .option("snapshot", String::new())
        .ok()
        .filter(|p| !p.is_empty())
    else {
        return Ok((cold()?, None));
    };
    if std::path::Path::new(&path).exists() || mvq_core::snapshot_backup_path(&path).exists() {
        let (engine, source) = match SearchEngine::<W>::load_snapshot_resilient(&path, threads) {
            Ok(loaded) => loaded,
            Err(err) if err.is_corruption() => {
                // A torn snapshot (with no usable backup) must not kill
                // the run: start cold and let the write-back replace it.
                eprintln!("warning: snapshot {path} is unusable ({err}); starting cold");
                return Ok((cold()?, None));
            }
            Err(err) => return Err(err.into()),
        };
        if let mvq_core::SnapshotSource::Backup { primary_error } = &source {
            eprintln!(
                "warning: snapshot {path} is unusable ({primary_error}); \
                 loaded the last-good backup instead"
            );
        }
        if engine.library().domain().wires() != wires {
            return Err(Box::new(ParseArgsError::new(format!(
                "snapshot {path} was built over {} wires, but --wires requests {wires}",
                engine.library().domain().wires()
            ))));
        }
        if engine.cost_model() != &model {
            return Err(Box::new(ParseArgsError::new(format!(
                "snapshot {path} was built with cost model {:?}, but this run requests {:?} \
                 (pass the matching --model or a different snapshot file)",
                engine.cost_model().weights(),
                model.weights()
            ))));
        }
        let depth = engine.completed_cost();
        println!(
            "loaded snapshot {path} (levels ≤ {}, |A| = {})",
            depth.map_or_else(|| "none".to_string(), |c| c.to_string()),
            engine.a_size()
        );
        // A backup load reports no prior depth, so the write-back always
        // runs and repairs the torn primary file.
        let loaded_depth = match source {
            mvq_core::SnapshotSource::Primary => depth.or(Some(0)),
            mvq_core::SnapshotSource::Backup { .. } => None,
        };
        Ok((engine, loaded_depth))
    } else {
        Ok((cold()?, None))
    }
}

/// Writes the snapshot back when `--snapshot` was given and the engine
/// grew past the depth it started from.
fn snapshot_writeback<W: SearchWidth>(
    args: &Args,
    engine: &mut SearchEngine<W>,
    loaded_depth: Option<u32>,
) -> Result<(), Box<dyn Error>> {
    let Some(path) = args
        .option("snapshot", String::new())
        .ok()
        .filter(|p| !p.is_empty())
    else {
        return Ok(());
    };
    let grew = match (loaded_depth, engine.completed_cost()) {
        (Some(loaded), Some(now)) => now > loaded,
        (None, _) => true, // no snapshot existed yet
        (Some(_), None) => false,
    };
    if grew {
        engine.save_snapshot(&path)?;
        println!(
            "wrote snapshot {path} (levels ≤ {}, |A| = {})",
            engine
                .completed_cost()
                .map_or_else(|| "none".to_string(), |c| c.to_string()),
            engine.a_size()
        );
    }
    Ok(())
}

fn census(args: &Args) -> CommandResult {
    let wires = wires_arg(args)?;
    if wires == 4 {
        census_run::<Wide>(args, wires)
    } else {
        census_run::<Narrow>(args, wires)
    }
}

fn census_run<W: SearchWidth>(args: &Args, wires: usize) -> CommandResult {
    // The 4-wire frontier grows ~3× faster per level than the 3-wire
    // one; keep the default bound shallow there.
    let cb: u32 = args.option("cb", if wires == 4 { 3 } else { 6 })?;
    let model = model_arg(args)?;
    let threads = thread_count(args)?;
    let (mut engine, loaded_depth) = snapshot_engine::<W>(args, wires, model, threads)?;
    // Wall-clock is measured here, at the edge: `mvq_core`'s
    // search-state modules are clock-free by lint rule.
    let start = std::time::Instant::now();
    let census = Census::compute_with(&mut engine, cb);
    let elapsed = start.elapsed();
    snapshot_writeback(args, &mut engine, loaded_depth)?;
    println!("{census}");
    println!("(wires: {wires}, threads: {threads}, elapsed: {elapsed:.2?})");
    if wires == 3 && model == CostModel::unit() {
        println!();
        println!("paper (printed): {PAPER_TABLE_2:?}");
        println!("verified:        {EXPECTED_TABLE_2:?}");
        for (k, mine, paper) in census.diff_vs_paper() {
            println!(
                "note: k = {k}: measured {mine} vs paper {paper} (paper slip; see EXPERIMENTS.md)"
            );
        }
    }
    Ok(())
}

fn parse_target(text: &str) -> Result<Perm, Box<dyn Error>> {
    mvq_core::known::parse_binary_target(text)
        .map_err(|detail| Box::new(ParseArgsError::new(detail)) as Box<dyn Error>)
}

fn synth(args: &Args) -> CommandResult {
    let wires = wires_arg(args)?;
    if wires == 4 {
        synth_run::<Wide>(args, wires)
    } else {
        synth_run::<Narrow>(args, wires)
    }
}

fn synth_run<W: SearchWidth>(args: &Args, wires: usize) -> CommandResult {
    let text = args
        .positional(1)
        .ok_or_else(|| ParseArgsError::new("synth needs a permutation, e.g. \"(7,8)\""))?;
    let cb: u32 = args.option("cb", if wires == 4 { 4 } else { 7 })?;
    let strategy: SynthesisStrategy = args.option("strategy", SynthesisStrategy::default())?;
    let model = model_arg(args)?;
    let threads = thread_count(args)?;
    let target = mvq_core::known::parse_target_on(text, 1 << wires)
        .map_err(|detail| Box::new(ParseArgsError::new(detail)) as Box<dyn Error>)?;
    let (mut engine, loaded_depth) = snapshot_engine::<W>(args, wires, model, threads)?;
    if args.flag("all") {
        if strategy != SynthesisStrategy::Unidirectional {
            return Err(Box::new(ParseArgsError::new(
                "--all enumerates the unidirectional level sets; \
                 drop --strategy or use --strategy uni",
            )));
        }
        let all = engine.synthesize_all(&target, cb);
        if all.is_empty() {
            println!("no implementation within cost {cb}");
            return Ok(());
        }
        println!(
            "target {target}: cost {}, {} minimal implementations",
            all[0].cost,
            all.len()
        );
        for (i, syn) in all.iter().enumerate() {
            println!("\n[{}]", i + 1);
            print!("{}", output::render_circuit(&syn.circuit));
            debug_assert!(syn.circuit.verify_against_binary_perm(&target));
        }
    } else {
        match engine.synthesize_with(strategy, &target, cb) {
            None => println!("no implementation within cost {cb}"),
            Some(syn) => {
                println!("target {target} (strategy: {strategy}):");
                print!("{}", output::render_synthesis(&syn));
                assert!(
                    syn.circuit.verify_against_binary_perm(&target),
                    "internal error: synthesis failed unitary verification"
                );
                println!("verified against the exact unitary ✓");
            }
        }
    }
    snapshot_writeback(args, &mut engine, loaded_depth)?;
    Ok(())
}

fn serve(args: &Args) -> CommandResult {
    let addr: String = args.option("addr", "127.0.0.1:7878".to_string())?;
    let threads: usize = args.option("threads", 0)?;
    let max_cb: u32 = args.option("max-cb", 7)?;
    let workers: usize = args.option("workers", 4)?;
    let max_models: usize = args.option("max-models", 8)?;
    let snapshot: String = args.option("snapshot", String::new())?;
    let faults: String = args.option("faults", String::new())?;
    let log: String = args.option("log", String::new())?;
    // Resolve the trace level before binding: a typo'd level must fail
    // loudly, not serve silently untraced.
    let log = if log.is_empty() {
        std::env::var("MVQ_LOG").unwrap_or_default()
    } else {
        log
    };
    let log_level = match log.as_str() {
        "" => None,
        level => Some(mvq_obs::LogLevel::parse(level).ok_or_else(|| {
            ParseArgsError::new(format!("bad --log level `{level}` (off | info | debug)"))
        })?),
    };
    if !faults.is_empty() {
        arm_faults(&faults)?;
    }
    let registry = Arc::new(HostRegistry::new(HostConfig {
        max_cost_bound: max_cb,
        threads,
        max_models,
        ..HostConfig::default()
    }));
    if !snapshot.is_empty() {
        let resolved = mvq_core::resolve_threads((threads > 0).then_some(threads));
        install_serve_snapshot(&registry, &snapshot, resolved)?;
    }
    let server = Server::bind(addr.as_str(), registry)?;
    if let Some(level) = log_level {
        server.obs().trace().set_level(level);
    }
    println!(
        "mvq serve listening on http://{} ({} workers, admission cb ≤ {max_cb})",
        server.local_addr()?,
        workers.max(1)
    );
    println!(
        "endpoints: POST /synthesize /census /shutdown · GET /healthz /stats /metrics /debug/slow"
    );
    server.run(workers)?;
    println!("mvq serve: shut down cleanly");
    Ok(())
}

/// Arms the failpoint registry from `--faults` (or `$MVQ_FAULTS` when
/// the flag is absent). Loud on every failure mode: a malformed plan,
/// or any plan at all in a build without the `fault-injection` feature
/// — a chaos drill must never run silently unarmed.
fn arm_faults(plan: &str) -> CommandResult {
    if plan.is_empty() {
        let sites =
            mvq_fault::arm_from_env().map_err(|err| ParseArgsError::new(err.to_string()))?;
        if sites > 0 {
            println!(
                "fault plan armed: {sites} site(s) from ${}",
                mvq_fault::ENV_VAR
            );
        }
        return Ok(());
    }
    if !mvq_fault::enabled() {
        return Err(Box::new(ParseArgsError::new(
            "--faults needs a binary built with `--features fault-injection`",
        )));
    }
    let sites = mvq_fault::arm(plan).map_err(|err| ParseArgsError::new(err.to_string()))?;
    println!("fault plan armed: {sites} site(s) from --faults");
    Ok(())
}

/// Warm-starts the serve registry with the degradation ladder: the
/// primary snapshot, then its `.bak`, then a cold start with a
/// diagnostic. A torn snapshot must not keep the service down; only a
/// *healthy* snapshot that mismatches the configuration (an over-wide
/// library, a full registry) stays fatal.
fn install_serve_snapshot(
    registry: &Arc<HostRegistry>,
    path: &str,
    threads: usize,
) -> CommandResult {
    // Ok(true) = installed; Ok(false) = unreadable or torn (keep
    // degrading); Err = healthy but incompatible (fatal).
    let attempt = |file: &std::path::Path| -> Result<bool, Box<dyn Error>> {
        let shown = file.display();
        let bytes = match std::fs::read(file) {
            Ok(bytes) => bytes,
            Err(err) => {
                eprintln!("warning: snapshot {shown} unreadable ({err})");
                return Ok(false);
            }
        };
        // The file's recorded widths decide which engine loads it: try
        // the narrow engine, fall back to the wide one on its
        // (header-only) width mismatch.
        let torn = match SynthesisEngine::load_snapshot_from_bytes(&bytes, threads) {
            Ok(engine) => {
                announce_snapshot(&shown.to_string(), &engine);
                registry.install(engine)?;
                return Ok(true);
            }
            Err(SnapshotError::WidthMismatch { .. }) => {
                match WideSynthesisEngine::load_snapshot_from_bytes(&bytes, threads) {
                    Ok(engine) => {
                        announce_snapshot(&shown.to_string(), &engine);
                        registry.install_wide(engine)?;
                        return Ok(true);
                    }
                    Err(err) if err.is_corruption() => err,
                    Err(err) => return Err(err.into()),
                }
            }
            Err(err) if err.is_corruption() => err,
            Err(err) => return Err(err.into()),
        };
        eprintln!("warning: snapshot {shown} is torn ({torn})");
        Ok(false)
    };
    if attempt(std::path::Path::new(path))? {
        return Ok(());
    }
    let backup = mvq_core::snapshot_backup_path(path);
    if backup.exists() && attempt(&backup)? {
        return Ok(());
    }
    eprintln!("warning: no usable snapshot at {path}; serving cold");
    Ok(())
}

fn announce_snapshot<W: SearchWidth>(path: &str, engine: &SearchEngine<W>) {
    println!(
        "loaded snapshot {path} ({} wires, model {:?}, levels ≤ {}, |A| = {}, {} classes)",
        engine.library().domain().wires(),
        engine.cost_model().weights(),
        engine
            .completed_cost()
            .map_or_else(|| "none".to_string(), |c| c.to_string()),
        engine.a_size(),
        engine.classes_found()
    );
}

fn verify(args: &Args) -> CommandResult {
    let circuit_text = args
        .positional(1)
        .ok_or_else(|| ParseArgsError::new("verify needs a circuit and a permutation"))?;
    let perm_text = args
        .positional(2)
        .ok_or_else(|| ParseArgsError::new("verify needs a target permutation"))?;
    let circuit: Circuit = circuit_text.parse()?;
    let circuit = if circuit.wires() < 3 {
        Circuit::new(3, circuit.gates().to_vec())
    } else {
        circuit
    };
    let target = parse_target(perm_text)?;
    print!("{}", output::render_circuit(&circuit));
    println!("quantum cost: {}", circuit.quantum_cost());
    match circuit.binary_perm() {
        Some(p) => println!("binary permutation: {p}"),
        None => println!("binary permutation: none (probabilistic outputs)"),
    }
    if circuit.verify_against_binary_perm(&target) {
        println!("realizes {target} exactly ✓");
    } else {
        println!("does NOT realize {target} ✗");
    }
    Ok(())
}

fn gate(args: &Args) -> CommandResult {
    let name = args
        .positional(1)
        .ok_or_else(|| ParseArgsError::new("gate needs a name, e.g. VBA or V+AB"))?;
    let gate: Gate = name.parse()?;
    println!("gate {gate}");
    let wires = gate
        .wires()
        .iter()
        .max()
        .map_or(2, |w| (w + 1).max(2))
        .max(3);
    let domain = PatternDomain::permutable(wires.min(3));
    if gate.wires().iter().all(|&w| w < 3) && !matches!(gate, Gate::Not { .. }) {
        println!("permutation on the {}-pattern domain:", domain.len());
        println!("  {}", gate.perm(&domain));
    }
    println!("exact unitary on 3 wires:");
    print!("{}", output::indent(&gate.unitary(3).to_string(), 2));
    println!();
    Ok(())
}

fn table(args: &Args) -> CommandResult {
    let wires: usize = args.option("wires", 2)?;
    if !(2..=3).contains(&wires) {
        return Err(Box::new(ParseArgsError::new("--wires must be 2 or 3")));
    }
    let domain = if wires == 2 {
        PatternDomain::table_ordered(2)
    } else {
        PatternDomain::permutable(3)
    };
    let table = TruthTable::new(Gate::v(1, 0), domain);
    println!("{table}");
    Ok(())
}

fn universal_cmd(_args: &Args) -> CommandResult {
    let mut engine = SynthesisEngine::unit_cost();
    let analysis = universal::analyze_g4(&mut engine);
    println!("|G[4]| = {}", analysis.members.len());
    println!("  Feynman-only: {}", analysis.feynman_only().len());
    println!(
        "  with control gates: {} (all universal: {})",
        analysis.with_control_gates().len(),
        analysis.with_control_gates().iter().all(|m| m.universal)
    );
    let orbits = analysis.wire_permutation_orbits();
    println!("  wire-relabeling orbits: {}", orbits.len());
    for (i, orbit) in orbits.iter().enumerate() {
        println!(
            "    orbit {}: {} members, representative {}",
            i + 1,
            orbit.len(),
            orbit[0]
        );
    }
    Ok(())
}

fn rng(args: &Args) -> CommandResult {
    let samples: usize = args.option("samples", 10_000)?;
    let seed: u64 = args.option("seed", 42)?;
    let generator = ControlledRng::synthesize()
        .ok_or_else(|| ParseArgsError::new("RNG spec failed to synthesize"))?;
    println!(
        "synthesized: {} (cost {})",
        generator.block().circuit(),
        generator.quantum_cost()
    );
    let d = generator.block().output_distribution(0b10);
    println!(
        "exact: P(0) = {}, P(1) = {}",
        d.prob_of(0b10),
        d.prob_of(0b11)
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let bits = generator.generate(&mut rng, samples, true);
    let ones = bits.iter().filter(|&&b| b).count();
    println!(
        "empirical over {samples} samples (seed {seed}): P(1) ≈ {:.4}",
        ones as f64 / samples as f64
    );
    Ok(())
}

fn spectrum(args: &Args) -> CommandResult {
    let cb: u32 = args.option("cb", 8)?;
    println!("cost spectrum of NOT-free reversible 3-qubit circuits:");
    let spectrum = mvq_core::CostSpectrum::compute(cb);
    println!("{spectrum}");
    if spectrum.is_complete() {
        println!("every reversible class has a known minimal cost");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(items: &[&str]) -> CommandResult {
        let argv: Vec<String> = items.iter().map(|s| s.to_string()).collect();
        dispatch(&argv)
    }

    #[test]
    fn help_runs() {
        assert!(run(&["help"]).is_ok());
        assert!(run(&[]).is_ok());
    }

    #[test]
    fn unknown_command_fails() {
        assert!(run(&["frobnicate"]).is_err());
    }

    #[test]
    fn census_small() {
        assert!(run(&["census", "--cb", "2"]).is_ok());
    }

    #[test]
    fn synth_feynman() {
        assert!(run(&["synth", "(5,7)(6,8)", "--cb", "2"]).is_ok());
    }

    #[test]
    fn synth_all_peres() {
        assert!(run(&["synth", "(5,7,6,8)", "--cb", "4", "--all"]).is_ok());
    }

    #[test]
    fn synth_rejects_garbage() {
        assert!(run(&["synth", "(1,x)"]).is_err());
        assert!(run(&["synth"]).is_err());
        assert!(run(&["synth", "(1,9)"]).is_err());
    }

    #[test]
    fn synth_bidirectional_strategy() {
        assert!(run(&["synth", "(7,8)", "--cb", "6", "--strategy", "bidi"]).is_ok());
        assert!(run(&["synth", "(7,8)", "--cb", "6", "--strategy", "bidirectional"]).is_ok());
        assert!(run(&["synth", "(7,8)", "--cb", "6", "--strategy", "uni"]).is_ok());
    }

    #[test]
    fn synth_rejects_bad_strategy() {
        assert!(run(&["synth", "(7,8)", "--strategy", "sideways"]).is_err());
        // --all enumerates unidirectional level sets only.
        assert!(run(&["synth", "(7,8)", "--all", "--strategy", "bidi"]).is_err());
    }

    #[test]
    fn threads_flag_accepted() {
        assert!(run(&["census", "--cb", "2", "--threads", "4"]).is_ok());
        assert!(run(&["synth", "(7,8)", "--cb", "6", "--threads", "2"]).is_ok());
        // 0 = auto-detect.
        assert!(run(&["census", "--cb", "2", "--threads", "0"]).is_ok());
        assert!(run(&["synth", "(7,8)", "--cb", "6", "--threads", "x"]).is_err());
    }

    #[test]
    fn census_snapshot_roundtrip() {
        let path = std::env::temp_dir().join(format!("mvq_cli_census_{}.snap", std::process::id()));
        let path = path.to_string_lossy().to_string();
        let _ = std::fs::remove_file(&path);
        // First run creates the snapshot, second run warm-starts from it,
        // a deeper third run re-saves it.
        assert!(run(&["census", "--cb", "2", "--snapshot", &path]).is_ok());
        assert!(std::path::Path::new(&path).exists());
        assert!(run(&["census", "--cb", "2", "--snapshot", &path]).is_ok());
        assert!(run(&["census", "--cb", "3", "--snapshot", &path]).is_ok());
        let loaded = SynthesisEngine::load_snapshot(&path).unwrap();
        assert_eq!(loaded.completed_cost(), Some(3));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn synth_snapshot_flag() {
        let path = std::env::temp_dir().join(format!("mvq_cli_synth_{}.snap", std::process::id()));
        let path = path.to_string_lossy().to_string();
        let _ = std::fs::remove_file(&path);
        assert!(run(&["synth", "(7,8)", "--cb", "2", "--snapshot", &path]).is_ok());
        assert!(std::path::Path::new(&path).exists());
        assert!(run(&["synth", "(7,8)", "--cb", "2", "--snapshot", &path]).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn synth_snapshot_bidi_roundtrip() {
        // A snapshot warm-starts the *forward* frontier of a
        // bidirectional run exactly like a unidirectional one (the
        // backward frontier is per-query and never snapshotted), and a
        // bidi run that deepens the forward levels writes them back.
        let path = std::env::temp_dir().join(format!("mvq_cli_bidi_{}.snap", std::process::id()));
        let path = path.to_string_lossy().to_string();
        let _ = std::fs::remove_file(&path);
        // Seed a shallow snapshot (levels ≤ 1).
        assert!(run(&["census", "--cb", "1", "--snapshot", &path]).is_ok());
        assert_eq!(
            SynthesisEngine::load_snapshot(&path)
                .unwrap()
                .completed_cost(),
            Some(1)
        );
        // Toffoli costs 5: the adaptive split grows the warm forward
        // frontier past the loaded depth, so the run writes back.
        assert!(run(&[
            "synth",
            "(7,8)",
            "--cb",
            "5",
            "--snapshot",
            &path,
            "--strategy",
            "bidi"
        ])
        .is_ok());
        let after = SynthesisEngine::load_snapshot(&path).unwrap();
        let depth = after.completed_cost().expect("levels present");
        assert!(
            depth >= 2,
            "bidi run should write back deeper levels, got {depth}"
        );
        // The written snapshot reloads and warm-starts either strategy.
        assert!(run(&[
            "synth",
            "(7,8)",
            "--cb",
            "5",
            "--snapshot",
            &path,
            "--strategy",
            "bidi"
        ])
        .is_ok());
        assert!(run(&[
            "synth",
            "(7,8)",
            "--cb",
            "5",
            "--snapshot",
            &path,
            "--strategy",
            "uni"
        ])
        .is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_flag_degrades_garbage_files_to_cold_start() {
        let path =
            std::env::temp_dir().join(format!("mvq_cli_garbage_{}.snap", std::process::id()));
        std::fs::write(&path, b"not a snapshot").unwrap();
        let path_text = path.to_string_lossy().to_string();
        // A torn snapshot (no backup) degrades to a cold start instead
        // of killing the run — and the write-back repairs the file.
        assert!(run(&["census", "--cb", "2", "--snapshot", &path_text]).is_ok());
        let repaired = SynthesisEngine::load_snapshot(&path).unwrap();
        assert_eq!(repaired.completed_cost(), Some(2));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_snapshot_with_backup_warm_starts_and_repairs() {
        let dir = std::env::temp_dir().join(format!("mvq_cli_bak_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("levels.snap");
        let path_text = path.to_string_lossy().to_string();
        // Seed a healthy snapshot, rotate it to .bak, tear the primary.
        assert!(run(&["census", "--cb", "2", "--snapshot", &path_text]).is_ok());
        let backup = mvq_core::snapshot_backup_path(&path);
        std::fs::copy(&path, &backup).unwrap();
        std::fs::write(&path, b"torn mid-write").unwrap();
        // The run falls back to the backup (no cold recompute of the
        // loaded levels) and the write-back repairs the primary.
        assert!(run(&["census", "--cb", "3", "--snapshot", &path_text]).is_ok());
        let repaired = SynthesisEngine::load_snapshot(&path).unwrap();
        assert_eq!(repaired.completed_cost(), Some(3));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_faults_flag_is_validated_before_binding() {
        if mvq_fault::enabled() {
            // A malformed plan is rejected before the server binds.
            assert!(run(&["serve", "--faults", "not-a-plan"]).is_err());
        } else {
            // Without the feature, any --faults request is refused
            // loudly — a chaos drill must never run silently unarmed.
            assert!(run(&["serve", "--faults", "snapshot.rename=err"]).is_err());
        }
    }

    #[test]
    fn four_wire_census_and_synth() {
        assert!(run(&["census", "--wires", "4", "--cb", "2"]).is_ok());
        let cnot = "(9,10)(11,12)(13,14)(15,16)";
        assert!(run(&["synth", cnot, "--wires", "4", "--cb", "2"]).is_ok());
        assert!(run(&[
            "synth",
            cnot,
            "--wires",
            "4",
            "--cb",
            "2",
            "--strategy",
            "bidi"
        ])
        .is_ok());
        assert!(run(&["synth", cnot, "--wires", "4", "--cb", "2", "--all"]).is_ok());
        // Out-of-range wire counts and 3-wire targets naming 4-wire
        // patterns are rejected.
        assert!(run(&["census", "--wires", "5"]).is_err());
        assert!(run(&["census", "--wires", "1"]).is_err());
        assert!(run(&["synth", "(15,16)", "--cb", "2"]).is_err());
    }

    #[test]
    fn four_wire_snapshot_roundtrip() {
        let path = std::env::temp_dir().join(format!("mvq_cli_w4_{}.snap", std::process::id()));
        let path = path.to_string_lossy().to_string();
        let _ = std::fs::remove_file(&path);
        assert!(run(&["census", "--wires", "4", "--cb", "2", "--snapshot", &path]).is_ok());
        assert!(std::path::Path::new(&path).exists());
        // Warm-start from the wide snapshot.
        assert!(run(&["census", "--wires", "4", "--cb", "2", "--snapshot", &path]).is_ok());
        let loaded = WideSynthesisEngine::load_snapshot(&path).unwrap();
        assert_eq!(loaded.completed_cost(), Some(2));
        // The narrow engine (and a --wires 3 run) must reject it.
        assert!(SynthesisEngine::load_snapshot(&path).is_err());
        assert!(run(&["census", "--cb", "2", "--snapshot", &path]).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn weighted_model_snapshot_warm_starts() {
        // Regression: `snapshot_engine` used to reject any snapshot
        // "built with a non-unit cost model", so a weighted run could
        // never warm-start even from its own snapshot. The check now
        // compares the snapshot's model against the requested one.
        let path = std::env::temp_dir().join(format!("mvq_cli_model_{}.snap", std::process::id()));
        let path = path.to_string_lossy().to_string();
        let _ = std::fs::remove_file(&path);
        assert!(run(&[
            "census",
            "--cb",
            "2",
            "--model",
            "1,2,3",
            "--snapshot",
            &path
        ])
        .is_ok());
        assert!(std::path::Path::new(&path).exists());
        // Same weighted model: warm-starts (used to fail outright).
        assert!(run(&[
            "census",
            "--cb",
            "2",
            "--model",
            "1,2,3",
            "--snapshot",
            &path
        ])
        .is_ok());
        assert!(run(&[
            "synth",
            "(7,8)",
            "--cb",
            "6",
            "--model",
            "1,2,3",
            "--snapshot",
            &path
        ])
        .is_ok());
        // A different model is still a mismatch (here: default unit).
        let err = run(&["census", "--cb", "2", "--snapshot", &path]).unwrap_err();
        assert!(err.to_string().contains("cost model"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn model_flag_parses() {
        assert!(run(&["census", "--cb", "1", "--model", "unit"]).is_ok());
        assert!(run(&["census", "--cb", "2", "--model", "weighted(2,2,1)"]).is_ok());
        assert!(run(&["census", "--cb", "1", "--model", "bogus"]).is_err());
        assert!(run(&["synth", "(7,8)", "--cb", "2", "--model", "0,1,1"]).is_err());
    }

    #[test]
    fn serve_rejects_bad_addr() {
        assert!(run(&["serve", "--addr", "not-an-address"]).is_err());
        assert!(run(&["serve", "--workers", "x"]).is_err());
    }

    #[test]
    fn verify_peres_circuit() {
        assert!(run(&["verify", "VCB*FBA*VCA*V+CB", "(5,7,6,8)"]).is_ok());
    }

    #[test]
    fn gate_display() {
        assert!(run(&["gate", "VBA"]).is_ok());
        assert!(run(&["gate", "NOT(B)"]).is_ok());
        assert!(run(&["gate", "ZZZ"]).is_err());
    }

    #[test]
    fn table_both_sizes() {
        assert!(run(&["table"]).is_ok());
        assert!(run(&["table", "--wires", "3"]).is_ok());
        assert!(run(&["table", "--wires", "4"]).is_err());
    }

    #[test]
    fn rng_small_sample() {
        assert!(run(&["rng", "--samples", "100", "--seed", "7"]).is_ok());
    }

    #[test]
    fn spectrum_small() {
        assert!(run(&["spectrum", "--cb", "3"]).is_ok());
    }
}
