//! `mvq` — command-line front-end for the exact quantum-circuit synthesis
//! workspace.
//!
//! ```text
//! mvq census [--cb N]                     reproduce Table 2
//! mvq synth <perm> [--cb N] [--all]       minimal-cost synthesis (MCE)
//! mvq gate <name>                         show a gate's permutation/unitary
//! mvq table [--wires N]                   Table 1-style truth table
//! mvq universal                           G[4] universality analysis
//! mvq rng [--samples N] [--seed S]        Section 4 controlled QRNG demo
//! mvq spectrum [--cb N]                   cost spectrum beyond the paper
//! ```

use std::process::ExitCode;

mod args;
mod commands;
mod output;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            eprintln!("run `mvq help` for usage");
            ExitCode::FAILURE
        }
    }
}
