//! A tiny dependency-free argument parser: positional arguments plus
//! `--flag` and `--key value` options.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error produced while parsing command-line arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArgsError {
    message: String,
}

impl ParseArgsError {
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl Error for ParseArgsError {}

/// Parsed arguments: positionals in order, options by name.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positionals: Vec<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses raw arguments. `known_flags` take no value; every other
    /// `--key` consumes the following token as its value.
    ///
    /// # Errors
    ///
    /// Fails on a `--key` with no following value, or an unknown leading
    /// `-` token.
    pub fn parse(raw: &[String], known_flags: &[&str]) -> Result<Self, ParseArgsError> {
        let mut args = Args::default();
        let mut iter = raw.iter().peekable();
        while let Some(token) = iter.next() {
            if let Some(name) = token.strip_prefix("--") {
                if known_flags.contains(&name) {
                    args.flags.push(name.to_string());
                } else {
                    let value = iter.next().ok_or_else(|| {
                        ParseArgsError::new(format!("option --{name} needs a value"))
                    })?;
                    args.options.insert(name.to_string(), value.clone());
                }
            } else if token.starts_with('-') && token.len() > 1 {
                return Err(ParseArgsError::new(format!(
                    "unknown option `{token}` (only --long options are supported)"
                )));
            } else {
                args.positionals.push(token.clone());
            }
        }
        Ok(args)
    }

    /// The `i`-th positional argument.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// A `--key value` option, parsed into `T`.
    ///
    /// # Errors
    ///
    /// Fails if the value does not parse as `T`.
    pub fn option<T: std::str::FromStr>(
        &self,
        name: &str,
        default: T,
    ) -> Result<T, ParseArgsError> {
        match self.options.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse::<T>()
                .map_err(|_| ParseArgsError::new(format!("invalid value `{v}` for --{name}"))),
        }
    }

    /// `true` iff the flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn positionals_and_options() {
        let args = Args::parse(&raw(&["synth", "(7,8)", "--cb", "6"]), &["all"]).unwrap();
        assert_eq!(args.positional(0), Some("synth"));
        assert_eq!(args.positional(1), Some("(7,8)"));
        assert_eq!(args.option("cb", 7u32).unwrap(), 6);
        assert!(!args.flag("all"));
    }

    #[test]
    fn flags_take_no_value() {
        let args = Args::parse(&raw(&["synth", "--all", "(7,8)"]), &["all"]).unwrap();
        assert!(args.flag("all"));
        assert_eq!(args.positional(1), Some("(7,8)"));
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Args::parse(&raw(&["census", "--cb"]), &[]).is_err());
    }

    #[test]
    fn bad_option_value_is_an_error() {
        let args = Args::parse(&raw(&["census", "--cb", "x"]), &[]).unwrap();
        assert!(args.option("cb", 7u32).is_err());
    }

    #[test]
    fn default_applies_when_absent() {
        let args = Args::parse(&raw(&["census"]), &[]).unwrap();
        assert_eq!(args.option("cb", 7u32).unwrap(), 7);
    }

    #[test]
    fn short_options_rejected() {
        assert!(Args::parse(&raw(&["-c"]), &[]).is_err());
    }

    #[test]
    fn unknown_long_token_consumes_a_value_not_a_flag() {
        // `--bogus` is not a known flag, so it is treated as a `--key
        // value` option and must consume the next token.
        let args = Args::parse(&raw(&["--bogus", "x", "synth"]), &["all"]).unwrap();
        assert!(!args.flag("bogus"));
        assert_eq!(args.option("bogus", String::new()).unwrap(), "x");
        assert_eq!(args.positional(0), Some("synth"));
    }

    #[test]
    fn unknown_long_token_at_end_is_a_missing_value_error() {
        let err = Args::parse(&raw(&["--bogus"]), &["all"]).unwrap_err();
        assert!(err.to_string().contains("--bogus"), "got: {err}");
    }

    #[test]
    fn missing_value_error_names_the_option() {
        let err = Args::parse(&raw(&["census", "--cb"]), &[]).unwrap_err();
        assert!(err.to_string().contains("--cb"), "got: {err}");
        assert!(err.to_string().contains("needs a value"), "got: {err}");
    }

    #[test]
    fn repeated_flags_are_idempotent() {
        let args = Args::parse(&raw(&["--all", "--all", "synth"]), &["all"]).unwrap();
        assert!(args.flag("all"));
        assert_eq!(args.positional(0), Some("synth"));
    }

    #[test]
    fn repeated_options_last_one_wins() {
        let args = Args::parse(&raw(&["--cb", "3", "--cb", "6"]), &[]).unwrap();
        assert_eq!(args.option("cb", 7u32).unwrap(), 6);
    }

    #[test]
    fn lone_dash_is_a_positional() {
        // A single `-` conventionally means stdin; the parser keeps it
        // positional rather than erroring.
        let args = Args::parse(&raw(&["-"]), &[]).unwrap();
        assert_eq!(args.positional(0), Some("-"));
    }

    #[test]
    fn empty_input_parses_to_defaults() {
        let args = Args::parse(&[], &["all"]).unwrap();
        assert_eq!(args.positional(0), None);
        assert!(!args.flag("all"));
        assert_eq!(args.option("cb", 7u32).unwrap(), 7);
    }

    #[test]
    fn threads_option_parses_as_usize() {
        let args = Args::parse(&raw(&["census", "--threads", "8"]), &[]).unwrap();
        assert_eq!(args.option("threads", 0usize).unwrap(), 8);
        // Absent → default (0 = auto-detect downstream).
        let args = Args::parse(&raw(&["census"]), &[]).unwrap();
        assert_eq!(args.option("threads", 0usize).unwrap(), 0);
        // Negative values are not a usize.
        let args = Args::parse(&raw(&["census", "--threads", "-2"]), &[]).unwrap();
        assert!(args.option("threads", 0usize).is_err());
    }

    #[test]
    fn flag_lookup_distinguishes_flags_from_options() {
        // `--cb 6` is an option; querying it as a flag must stay false.
        let args = Args::parse(&raw(&["--cb", "6"]), &["all"]).unwrap();
        assert!(!args.flag("cb"));
    }
}
