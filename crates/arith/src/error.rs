use std::error::Error;
use std::fmt;

/// Error returned when parsing a [`Dyadic`](crate::Dyadic) or
/// [`CDyadic`](crate::CDyadic) from a string fails.
///
/// # Examples
///
/// ```
/// use mvq_arith::Dyadic;
///
/// let err = "3/5".parse::<Dyadic>().unwrap_err();
/// assert!(err.to_string().contains("power of two"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRingError {
    kind: ParseRingErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ParseRingErrorKind {
    Empty,
    InvalidInteger(String),
    NonPowerOfTwoDenominator(String),
    MalformedComplex(String),
}

impl ParseRingError {
    pub(crate) fn new(kind: ParseRingErrorKind) -> Self {
        Self { kind }
    }
}

impl fmt::Display for ParseRingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseRingErrorKind::Empty => write!(f, "empty input"),
            ParseRingErrorKind::InvalidInteger(s) => {
                write!(f, "invalid integer literal `{s}`")
            }
            ParseRingErrorKind::NonPowerOfTwoDenominator(s) => {
                write!(f, "denominator `{s}` is not a power of two")
            }
            ParseRingErrorKind::MalformedComplex(s) => {
                write!(f, "malformed complex literal `{s}`")
            }
        }
    }
}

impl Error for ParseRingError {}
