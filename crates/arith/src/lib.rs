//! Exact Gaussian-dyadic complex arithmetic for quantum gate algebra.
//!
//! Every matrix entry of the gates used in the reproduced paper —
//! controlled-V, controlled-V⁺ (the square roots of NOT), Feynman/CNOT and
//! NOT — lies in the ring ℤ[i, ½]: complex numbers of the form
//! `(a + b·i) / 2^k` with integer `a`, `b`. Products and sums of such
//! numbers stay in the ring, so the entire verification path of this
//! reproduction (building circuit unitaries, checking `V·V = NOT`, checking
//! that a synthesized cascade equals the Toffoli permutation matrix) is
//! carried out **exactly**, with no floating-point tolerance anywhere.
//!
//! The two core types are:
//!
//! * [`Dyadic`] — exact rational `n / 2^k`,
//! * [`CDyadic`] — exact complex `(a + b·i) / 2^k`.
//!
//! # Examples
//!
//! ```
//! use mvq_arith::CDyadic;
//!
//! // The diagonal entry of V is (1 + i)/2 and the off-diagonal is (1 - i)/2.
//! let d = CDyadic::new(1, 1, 1);
//! let o = CDyadic::new(1, -1, 1);
//! // V·V = NOT: the (0,0) entry of the square must vanish …
//! assert_eq!(d * d + o * o, CDyadic::ZERO);
//! // … and the (0,1) entry must be one.
//! assert_eq!(d * o + o * d, CDyadic::ONE);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cdyadic;
mod dyadic;
mod error;

pub use cdyadic::CDyadic;
pub use dyadic::Dyadic;
pub use error::ParseRingError;
