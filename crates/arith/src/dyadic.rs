use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

use crate::error::{ParseRingError, ParseRingErrorKind};

/// An exact dyadic rational `num / 2^exp`.
///
/// Values are kept normalized: either `num` is odd, or the value is exactly
/// zero (`num == 0`, `exp == 0`). This makes equality structural and keeps
/// numerators as small as possible through long gate cascades.
///
/// The type is a ring, not a field: division is only available through
/// [`Dyadic::halve`], which is always exact.
///
/// # Examples
///
/// ```
/// use mvq_arith::Dyadic;
///
/// let half = Dyadic::new(1, 1);      // 1/2
/// let q = half * half;               // 1/4
/// assert_eq!(q, Dyadic::new(1, 2));
/// assert_eq!(q + q + half, Dyadic::ONE);
/// assert_eq!(half.to_f64(), 0.5);
/// ```
///
/// # Panics
///
/// Arithmetic panics on `i64` numerator overflow. Entries of products of a
/// few dozen elementary quantum gates stay far below that bound.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Dyadic {
    num: i64,
    exp: u32,
}

impl Dyadic {
    /// The additive identity, `0`.
    pub const ZERO: Dyadic = Dyadic { num: 0, exp: 0 };
    /// The multiplicative identity, `1`.
    pub const ONE: Dyadic = Dyadic { num: 1, exp: 0 };
    /// Minus one.
    pub const NEG_ONE: Dyadic = Dyadic { num: -1, exp: 0 };
    /// One half, the weight of a balanced measurement outcome.
    pub const HALF: Dyadic = Dyadic { num: 1, exp: 1 };

    /// Creates `num / 2^exp`, normalizing the representation.
    ///
    /// # Examples
    ///
    /// ```
    /// use mvq_arith::Dyadic;
    /// assert_eq!(Dyadic::new(4, 2), Dyadic::ONE);
    /// assert_eq!(Dyadic::new(0, 57), Dyadic::ZERO);
    /// ```
    pub fn new(num: i64, exp: u32) -> Self {
        Self { num, exp }.normalize()
    }

    /// Creates an integer-valued dyadic.
    ///
    /// # Examples
    ///
    /// ```
    /// use mvq_arith::Dyadic;
    /// assert_eq!(Dyadic::from_int(-3).to_f64(), -3.0);
    /// ```
    pub fn from_int(n: i64) -> Self {
        Self { num: n, exp: 0 }
    }

    /// The normalized numerator.
    pub fn numerator(self) -> i64 {
        self.num
    }

    /// The normalized base-2 logarithm of the denominator.
    pub fn denominator_log2(self) -> u32 {
        self.exp
    }

    /// Returns `self / 2`, always exact.
    ///
    /// # Examples
    ///
    /// ```
    /// use mvq_arith::Dyadic;
    /// assert_eq!(Dyadic::ONE.halve(), Dyadic::HALF);
    /// ```
    pub fn halve(self) -> Self {
        if self.num == 0 {
            Self::ZERO
        } else {
            Self {
                num: self.num,
                exp: self.exp + 1,
            }
        }
    }

    /// `true` iff the value is exactly zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// `true` iff the value is exactly one.
    pub fn is_one(self) -> bool {
        self == Self::ONE
    }

    /// The absolute value.
    pub fn abs(self) -> Self {
        Self {
            num: self.num.abs(),
            exp: self.exp,
        }
    }

    /// The sign of the value: `-1`, `0` or `1`.
    pub fn signum(self) -> i64 {
        self.num.signum()
    }

    /// Converts to the nearest `f64`.
    ///
    /// Exact for all values arising from short gate cascades (numerators
    /// below 2⁵³).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / (1u64 << self.exp.min(63)) as f64 / {
            // Handle exponents beyond 63 without overflowing the shift.
            if self.exp > 63 {
                (1u64 << (self.exp - 63)) as f64
            } else {
                1.0
            }
        }
    }

    fn normalize(mut self) -> Self {
        if self.num == 0 {
            return Self::ZERO;
        }
        while self.exp > 0 && self.num % 2 == 0 {
            self.num /= 2;
            self.exp -= 1;
        }
        self
    }

    /// Brings two values to a common denominator, returning the numerators
    /// and the shared exponent.
    fn align(self, other: Self) -> (i64, i64, u32) {
        let exp = self.exp.max(other.exp);
        let a = checked_shift(self.num, exp - self.exp);
        let b = checked_shift(other.num, exp - other.exp);
        (a, b, exp)
    }
}

fn checked_shift(n: i64, by: u32) -> i64 {
    n.checked_shl(by)
        .filter(|&v| (v >> by) == n)
        .expect("dyadic numerator overflow")
}

impl Add for Dyadic {
    type Output = Dyadic;
    fn add(self, rhs: Dyadic) -> Dyadic {
        let (a, b, exp) = self.align(rhs);
        Dyadic::new(a.checked_add(b).expect("dyadic numerator overflow"), exp)
    }
}

impl Sub for Dyadic {
    type Output = Dyadic;
    fn sub(self, rhs: Dyadic) -> Dyadic {
        self + (-rhs)
    }
}

impl Mul for Dyadic {
    type Output = Dyadic;
    // Denominator exponents add when dyadic values multiply.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn mul(self, rhs: Dyadic) -> Dyadic {
        Dyadic::new(
            self.num
                .checked_mul(rhs.num)
                .expect("dyadic numerator overflow"),
            self.exp + rhs.exp,
        )
    }
}

impl Neg for Dyadic {
    type Output = Dyadic;
    fn neg(self) -> Dyadic {
        Dyadic {
            num: -self.num,
            exp: self.exp,
        }
    }
}

impl AddAssign for Dyadic {
    fn add_assign(&mut self, rhs: Dyadic) {
        *self = *self + rhs;
    }
}

impl SubAssign for Dyadic {
    fn sub_assign(&mut self, rhs: Dyadic) {
        *self = *self - rhs;
    }
}

impl MulAssign for Dyadic {
    fn mul_assign(&mut self, rhs: Dyadic) {
        *self = *self * rhs;
    }
}

impl PartialOrd for Dyadic {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Dyadic {
    fn cmp(&self, other: &Self) -> Ordering {
        let (a, b, _) = self.align(*other);
        a.cmp(&b)
    }
}

impl From<i64> for Dyadic {
    fn from(n: i64) -> Self {
        Dyadic::from_int(n)
    }
}

impl fmt::Display for Dyadic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.exp == 0 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, 1i128 << self.exp)
        }
    }
}

impl FromStr for Dyadic {
    type Err = ParseRingError;

    /// Parses `"n"` or `"n/d"` where `d` is a power of two.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() {
            return Err(ParseRingError::new(ParseRingErrorKind::Empty));
        }
        match s.split_once('/') {
            None => {
                let n = s.parse::<i64>().map_err(|_| {
                    ParseRingError::new(ParseRingErrorKind::InvalidInteger(s.into()))
                })?;
                Ok(Dyadic::from_int(n))
            }
            Some((num, den)) => {
                let n = num.trim().parse::<i64>().map_err(|_| {
                    ParseRingError::new(ParseRingErrorKind::InvalidInteger(num.into()))
                })?;
                let d = den.trim().parse::<u64>().map_err(|_| {
                    ParseRingError::new(ParseRingErrorKind::InvalidInteger(den.into()))
                })?;
                if !d.is_power_of_two() {
                    return Err(ParseRingError::new(
                        ParseRingErrorKind::NonPowerOfTwoDenominator(den.into()),
                    ));
                }
                Ok(Dyadic::new(n, d.trailing_zeros()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_normalized() {
        assert_eq!(Dyadic::ZERO, Dyadic::new(0, 9));
        assert_eq!(Dyadic::ONE, Dyadic::new(8, 3));
        assert_eq!(Dyadic::HALF, Dyadic::new(4, 3));
        assert_eq!(Dyadic::NEG_ONE, Dyadic::new(-2, 1));
    }

    #[test]
    fn addition_aligns_denominators() {
        let a = Dyadic::new(1, 2); // 1/4
        let b = Dyadic::new(1, 1); // 1/2
        assert_eq!(a + b, Dyadic::new(3, 2));
    }

    #[test]
    fn subtraction_cancels_to_zero() {
        let a = Dyadic::new(3, 4);
        assert_eq!(a - a, Dyadic::ZERO);
        assert!((a - a).is_zero());
    }

    #[test]
    fn multiplication_adds_exponents() {
        assert_eq!(Dyadic::HALF * Dyadic::HALF, Dyadic::new(1, 2));
        assert_eq!(Dyadic::new(3, 1) * Dyadic::new(5, 2), Dyadic::new(15, 3));
    }

    #[test]
    fn multiplication_renormalizes() {
        // (2/2) stays 1 after normalization through a product.
        assert_eq!(Dyadic::new(2, 1) * Dyadic::new(2, 1), Dyadic::ONE);
    }

    #[test]
    fn ordering_matches_values() {
        assert!(Dyadic::new(1, 2) < Dyadic::HALF);
        assert!(Dyadic::new(-1, 0) < Dyadic::ZERO);
        assert!(Dyadic::new(3, 1) > Dyadic::ONE);
    }

    #[test]
    fn halve_is_exact_and_zero_safe() {
        assert_eq!(Dyadic::ZERO.halve(), Dyadic::ZERO);
        assert_eq!(Dyadic::new(3, 0).halve(), Dyadic::new(3, 1));
    }

    #[test]
    fn to_f64_roundtrips_small_values() {
        assert_eq!(Dyadic::new(-5, 3).to_f64(), -0.625);
        assert_eq!(Dyadic::ZERO.to_f64(), 0.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Dyadic::new(3, 2).to_string(), "3/4");
        assert_eq!(Dyadic::from_int(-7).to_string(), "-7");
    }

    #[test]
    fn parse_roundtrip() {
        for s in ["0", "1", "-3", "5/8", "-9/16"] {
            let d: Dyadic = s.parse().unwrap();
            assert_eq!(d.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!("".parse::<Dyadic>().is_err());
        assert!("x".parse::<Dyadic>().is_err());
        assert!("3/5".parse::<Dyadic>().is_err());
        assert!("3/".parse::<Dyadic>().is_err());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let big = Dyadic::from_int(i64::MAX / 2 + 1);
        let _ = big + big;
    }

    #[test]
    fn signum_and_abs() {
        assert_eq!(Dyadic::new(-3, 1).signum(), -1);
        assert_eq!(Dyadic::new(-3, 1).abs(), Dyadic::new(3, 1));
        assert_eq!(Dyadic::ZERO.signum(), 0);
    }
}
