use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

use crate::error::{ParseRingError, ParseRingErrorKind};
use crate::Dyadic;

/// An exact Gaussian-dyadic complex number `(re + im·i) / 2^exp`.
///
/// This is the ring ℤ[i, ½] in which all entries of V, V⁺, CNOT and NOT
/// (and hence of every circuit unitary built from them) live. The
/// representation is normalized: the value is zero with `exp == 0`, or at
/// least one of `re`, `im` is odd.
///
/// # Examples
///
/// ```
/// use mvq_arith::{CDyadic, Dyadic};
///
/// let v_diag = CDyadic::new(1, 1, 1);   // (1+i)/2
/// let v_off = CDyadic::new(1, -1, 1);   // (1-i)/2
/// // |(1+i)/2|² + |(1-i)/2|² = 1 — V's first row is a unit vector.
/// assert_eq!(v_diag.norm_sqr() + v_off.norm_sqr(), Dyadic::ONE);
/// ```
///
/// # Panics
///
/// Arithmetic panics on `i64` component overflow, which cannot occur for
/// cascades of the depth handled by this workspace (≪ 50 gates).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CDyadic {
    re: i64,
    im: i64,
    exp: u32,
}

impl CDyadic {
    /// The additive identity, `0`.
    pub const ZERO: CDyadic = CDyadic {
        re: 0,
        im: 0,
        exp: 0,
    };
    /// The multiplicative identity, `1`.
    pub const ONE: CDyadic = CDyadic {
        re: 1,
        im: 0,
        exp: 0,
    };
    /// The imaginary unit `i`.
    pub const I: CDyadic = CDyadic {
        re: 0,
        im: 1,
        exp: 0,
    };
    /// `(1 + i)/2`, the diagonal entry of V.
    pub const HALF_ONE_PLUS_I: CDyadic = CDyadic {
        re: 1,
        im: 1,
        exp: 1,
    };
    /// `(1 - i)/2`, the off-diagonal entry of V.
    pub const HALF_ONE_MINUS_I: CDyadic = CDyadic {
        re: 1,
        im: -1,
        exp: 1,
    };

    /// Creates `(re + im·i) / 2^exp`, normalizing the representation.
    ///
    /// # Examples
    ///
    /// ```
    /// use mvq_arith::CDyadic;
    /// assert_eq!(CDyadic::new(2, 2, 1), CDyadic::new(1, 1, 0));
    /// ```
    pub fn new(re: i64, im: i64, exp: u32) -> Self {
        Self { re, im, exp }.normalize()
    }

    /// Creates a real integer value.
    pub fn from_int(n: i64) -> Self {
        Self {
            re: n,
            im: 0,
            exp: 0,
        }
    }

    /// Creates a value from exact real and imaginary dyadic parts.
    ///
    /// # Examples
    ///
    /// ```
    /// use mvq_arith::{CDyadic, Dyadic};
    /// let z = CDyadic::from_parts(Dyadic::HALF, Dyadic::NEG_ONE);
    /// assert_eq!(z, CDyadic::new(1, -2, 1));
    /// ```
    pub fn from_parts(re: Dyadic, im: Dyadic) -> Self {
        let exp = re.denominator_log2().max(im.denominator_log2());
        let r = re.numerator() << (exp - re.denominator_log2());
        let i = im.numerator() << (exp - im.denominator_log2());
        Self::new(r, i, exp)
    }

    /// The exact real part.
    pub fn re(self) -> Dyadic {
        Dyadic::new(self.re, self.exp)
    }

    /// The exact imaginary part.
    pub fn im(self) -> Dyadic {
        Dyadic::new(self.im, self.exp)
    }

    /// `true` iff the value is exactly zero.
    pub fn is_zero(self) -> bool {
        self.re == 0 && self.im == 0
    }

    /// `true` iff the value is exactly one.
    pub fn is_one(self) -> bool {
        self == Self::ONE
    }

    /// The complex conjugate.
    ///
    /// # Examples
    ///
    /// ```
    /// use mvq_arith::CDyadic;
    /// assert_eq!(CDyadic::I.conj(), -CDyadic::I);
    /// ```
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
            exp: self.exp,
        }
    }

    /// The exact squared magnitude `|z|²` as a dyadic rational.
    ///
    /// This is the measurement probability weight of an amplitude, so it is
    /// the quantity compared against empirical frequencies in the
    /// probabilistic-machine experiments.
    pub fn norm_sqr(self) -> Dyadic {
        let re2 = self.re.checked_mul(self.re).expect("cdyadic overflow");
        let im2 = self.im.checked_mul(self.im).expect("cdyadic overflow");
        Dyadic::new(
            re2.checked_add(im2).expect("cdyadic overflow"),
            2 * self.exp,
        )
    }

    /// Converts to an `(re, im)` pair of `f64`s.
    pub fn to_f64_pair(self) -> (f64, f64) {
        (self.re().to_f64(), self.im().to_f64())
    }

    fn normalize(mut self) -> Self {
        if self.re == 0 && self.im == 0 {
            return Self::ZERO;
        }
        while self.exp > 0 && self.re % 2 == 0 && self.im % 2 == 0 {
            self.re /= 2;
            self.im /= 2;
            self.exp -= 1;
        }
        self
    }

    fn align(self, other: Self) -> (i64, i64, i64, i64, u32) {
        let exp = self.exp.max(other.exp);
        let s = |n: i64, by: u32| -> i64 {
            n.checked_shl(by)
                .filter(|&v| (v >> by) == n)
                .expect("cdyadic overflow")
        };
        (
            s(self.re, exp - self.exp),
            s(self.im, exp - self.exp),
            s(other.re, exp - other.exp),
            s(other.im, exp - other.exp),
            exp,
        )
    }
}

impl Add for CDyadic {
    type Output = CDyadic;
    fn add(self, rhs: CDyadic) -> CDyadic {
        let (ar, ai, br, bi, exp) = self.align(rhs);
        CDyadic::new(
            ar.checked_add(br).expect("cdyadic overflow"),
            ai.checked_add(bi).expect("cdyadic overflow"),
            exp,
        )
    }
}

impl Sub for CDyadic {
    type Output = CDyadic;
    fn sub(self, rhs: CDyadic) -> CDyadic {
        self + (-rhs)
    }
}

impl Mul for CDyadic {
    type Output = CDyadic;
    // Denominator exponents add when values multiply.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn mul(self, rhs: CDyadic) -> CDyadic {
        let m = |a: i64, b: i64| a.checked_mul(b).expect("cdyadic overflow");
        let re = m(self.re, rhs.re)
            .checked_sub(m(self.im, rhs.im))
            .expect("cdyadic overflow");
        let im = m(self.re, rhs.im)
            .checked_add(m(self.im, rhs.re))
            .expect("cdyadic overflow");
        CDyadic::new(re, im, self.exp + rhs.exp)
    }
}

impl Neg for CDyadic {
    type Output = CDyadic;
    fn neg(self) -> CDyadic {
        CDyadic {
            re: -self.re,
            im: -self.im,
            exp: self.exp,
        }
    }
}

impl AddAssign for CDyadic {
    fn add_assign(&mut self, rhs: CDyadic) {
        *self = *self + rhs;
    }
}

impl SubAssign for CDyadic {
    fn sub_assign(&mut self, rhs: CDyadic) {
        *self = *self - rhs;
    }
}

impl MulAssign for CDyadic {
    fn mul_assign(&mut self, rhs: CDyadic) {
        *self = *self * rhs;
    }
}

impl From<i64> for CDyadic {
    fn from(n: i64) -> Self {
        CDyadic::from_int(n)
    }
}

impl From<Dyadic> for CDyadic {
    fn from(d: Dyadic) -> Self {
        CDyadic::new(d.numerator(), 0, d.denominator_log2())
    }
}

impl fmt::Display for CDyadic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        if self.exp == 0 {
            match (self.re, self.im) {
                (r, 0) => write!(f, "{r}"),
                (0, i) => write!(f, "{i}i"),
                (r, i) if i < 0 => write!(f, "{r}{i}i"),
                (r, i) => write!(f, "{r}+{i}i"),
            }
        } else {
            let den = 1i128 << self.exp;
            match (self.re, self.im) {
                (r, 0) => write!(f, "{r}/{den}"),
                (0, i) => write!(f, "{i}i/{den}"),
                (r, i) if i < 0 => write!(f, "({r}{i}i)/{den}"),
                (r, i) => write!(f, "({r}+{i}i)/{den}"),
            }
        }
    }
}

impl FromStr for CDyadic {
    type Err = ParseRingError;

    /// Parses the formats produced by [`Display`](fmt::Display):
    /// `"n"`, `"ni"`, `"a+bi"`, `"a-bi"`, each optionally wrapped in
    /// parentheses and followed by `"/d"` with `d` a power of two.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() {
            return Err(ParseRingError::new(ParseRingErrorKind::Empty));
        }
        let (body, exp) = match s.rsplit_once('/') {
            Some((b, d)) if !b.is_empty() => {
                let den = d.trim().parse::<u64>().map_err(|_| {
                    ParseRingError::new(ParseRingErrorKind::InvalidInteger(d.into()))
                })?;
                if !den.is_power_of_two() {
                    return Err(ParseRingError::new(
                        ParseRingErrorKind::NonPowerOfTwoDenominator(d.into()),
                    ));
                }
                (b.trim(), den.trailing_zeros())
            }
            _ => (s, 0),
        };
        let body = body
            .strip_prefix('(')
            .and_then(|b| b.strip_suffix(')'))
            .unwrap_or(body);
        let (re, im) = parse_complex_body(body)
            .ok_or_else(|| ParseRingError::new(ParseRingErrorKind::MalformedComplex(s.into())))?;
        Ok(CDyadic::new(re, im, exp))
    }
}

/// Parses `a`, `bi`, `a+bi`, `a-bi` into integer real/imaginary parts.
fn parse_complex_body(body: &str) -> Option<(i64, i64)> {
    let body = body.trim();
    if let Some(im_str) = body.strip_suffix('i') {
        // Find the split point between the real part and the imaginary part:
        // the last '+'/'-' that is not a leading sign.
        let bytes = im_str.as_bytes();
        let mut split = None;
        for (idx, &b) in bytes.iter().enumerate().skip(1).rev() {
            if (b == b'+' || b == b'-') && bytes[idx - 1].is_ascii_digit() {
                split = Some(idx);
                break;
            }
        }
        match split {
            Some(idx) => {
                let re = im_str[..idx].trim().parse::<i64>().ok()?;
                let im_part = im_str[idx..].trim();
                let im = match im_part {
                    "+" => 1,
                    "-" => -1,
                    _ => im_part.parse::<i64>().ok()?,
                };
                Some((re, im))
            }
            None => {
                let im = match im_str.trim() {
                    "" | "+" => 1,
                    "-" => -1,
                    t => t.parse::<i64>().ok()?,
                };
                Some((0, im))
            }
        }
    } else {
        Some((body.parse::<i64>().ok()?, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v_entries_square_to_not() {
        // V = [[(1+i)/2, (1-i)/2], [(1-i)/2, (1+i)/2]]; V² = NOT.
        let d = CDyadic::HALF_ONE_PLUS_I;
        let o = CDyadic::HALF_ONE_MINUS_I;
        assert_eq!(d * d + o * o, CDyadic::ZERO);
        assert_eq!(d * o + o * d, CDyadic::ONE);
    }

    #[test]
    fn v_times_v_dagger_is_identity() {
        let d = CDyadic::HALF_ONE_PLUS_I;
        let o = CDyadic::HALF_ONE_MINUS_I;
        // Row 0 of V times column 0 of V⁺.
        assert_eq!(d * d.conj() + o * o.conj(), CDyadic::ONE);
        // Row 0 of V times column 1 of V⁺.
        assert_eq!(d * o.conj() + o * d.conj(), CDyadic::ZERO);
    }

    #[test]
    fn normalization() {
        assert_eq!(CDyadic::new(2, 4, 1), CDyadic::new(1, 2, 0));
        assert_eq!(CDyadic::new(0, 0, 7), CDyadic::ZERO);
        // One component odd blocks reduction.
        let z = CDyadic::new(1, 2, 1);
        assert_eq!(z.re(), Dyadic::HALF);
        assert_eq!(z.im(), Dyadic::ONE);
    }

    #[test]
    fn conjugation_is_involutive() {
        let z = CDyadic::new(3, -5, 2);
        assert_eq!(z.conj().conj(), z);
    }

    #[test]
    fn norm_sqr_examples() {
        assert_eq!(CDyadic::HALF_ONE_PLUS_I.norm_sqr(), Dyadic::HALF);
        assert_eq!(CDyadic::I.norm_sqr(), Dyadic::ONE);
        assert_eq!(CDyadic::ZERO.norm_sqr(), Dyadic::ZERO);
    }

    #[test]
    fn from_parts_aligns() {
        let z = CDyadic::from_parts(Dyadic::new(1, 2), Dyadic::HALF);
        assert_eq!(z, CDyadic::new(1, 2, 2));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(CDyadic::I * CDyadic::I, -CDyadic::ONE);
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let values = [
            CDyadic::ZERO,
            CDyadic::ONE,
            CDyadic::I,
            -CDyadic::I,
            CDyadic::HALF_ONE_PLUS_I,
            CDyadic::HALF_ONE_MINUS_I,
            CDyadic::new(-3, 5, 3),
            CDyadic::new(7, 0, 2),
            CDyadic::new(0, -9, 4),
        ];
        for v in values {
            let s = v.to_string();
            let back: CDyadic = s.parse().unwrap_or_else(|e| panic!("parse `{s}`: {e}"));
            assert_eq!(back, v, "roundtrip of `{s}`");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<CDyadic>().is_err());
        assert!("1+2j".parse::<CDyadic>().is_err());
        assert!("(1+i)/3".parse::<CDyadic>().is_err());
    }

    #[test]
    fn mixed_exponent_addition() {
        let a = CDyadic::new(1, 1, 1); // (1+i)/2
        let b = CDyadic::new(1, -1, 2); // (1-i)/4
        assert_eq!(a + b, CDyadic::new(3, 1, 2));
    }
}
