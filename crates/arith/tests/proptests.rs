//! Property-based tests: ℤ[i, ½] really is a commutative ring with
//! conjugation, and the representation stays normalized through arbitrary
//! expression trees.

use mvq_arith::{CDyadic, Dyadic};
use proptest::prelude::*;

fn dyadic() -> impl Strategy<Value = Dyadic> {
    (-1000i64..=1000, 0u32..=8).prop_map(|(n, e)| Dyadic::new(n, e))
}

fn cdyadic() -> impl Strategy<Value = CDyadic> {
    (-1000i64..=1000, -1000i64..=1000, 0u32..=8).prop_map(|(re, im, e)| CDyadic::new(re, im, e))
}

proptest! {
    #[test]
    fn dyadic_addition_commutes(a in dyadic(), b in dyadic()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn dyadic_addition_associates(a in dyadic(), b in dyadic(), c in dyadic()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn dyadic_multiplication_distributes(a in dyadic(), b in dyadic(), c in dyadic()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn dyadic_negation_is_additive_inverse(a in dyadic()) {
        prop_assert_eq!(a + (-a), Dyadic::ZERO);
    }

    #[test]
    fn dyadic_halve_doubles_back(a in dyadic()) {
        prop_assert_eq!(a.halve() + a.halve(), a);
    }

    #[test]
    fn dyadic_ordering_is_translation_invariant(
        a in dyadic(), b in dyadic(), c in dyadic()
    ) {
        prop_assert_eq!(a < b, a + c < b + c);
    }

    #[test]
    fn dyadic_display_parse_roundtrip(a in dyadic()) {
        let s = a.to_string();
        let back: Dyadic = s.parse().expect("parses");
        prop_assert_eq!(back, a);
    }

    #[test]
    fn dyadic_to_f64_is_order_preserving(a in dyadic(), b in dyadic()) {
        if a < b {
            prop_assert!(a.to_f64() <= b.to_f64());
        }
    }

    #[test]
    fn cdyadic_ring_axioms(a in cdyadic(), b in cdyadic(), c in cdyadic()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a * b) * c, a * (b * c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn cdyadic_conjugation_is_a_ring_homomorphism(a in cdyadic(), b in cdyadic()) {
        prop_assert_eq!((a + b).conj(), a.conj() + b.conj());
        prop_assert_eq!((a * b).conj(), a.conj() * b.conj());
        prop_assert_eq!(a.conj().conj(), a);
    }

    #[test]
    fn cdyadic_norm_is_multiplicative(a in cdyadic(), b in cdyadic()) {
        prop_assert_eq!((a * b).norm_sqr(), a.norm_sqr() * b.norm_sqr());
    }

    #[test]
    fn cdyadic_norm_is_conj_product(a in cdyadic()) {
        let z = a * a.conj();
        prop_assert_eq!(z.im(), Dyadic::ZERO);
        prop_assert_eq!(z.re(), a.norm_sqr());
    }

    #[test]
    fn cdyadic_display_parse_roundtrip(a in cdyadic()) {
        let s = a.to_string();
        let back: CDyadic = s.parse().unwrap_or_else(|e| panic!("parse `{s}`: {e}"));
        prop_assert_eq!(back, a);
    }

    #[test]
    fn cdyadic_parts_roundtrip(a in cdyadic()) {
        prop_assert_eq!(CDyadic::from_parts(a.re(), a.im()), a);
    }

    #[test]
    fn cdyadic_i_rotation_has_order_4(a in cdyadic()) {
        let rotated = a * CDyadic::I * CDyadic::I * CDyadic::I * CDyadic::I;
        prop_assert_eq!(rotated, a);
        prop_assert_eq!((a * CDyadic::I).norm_sqr(), a.norm_sqr());
    }
}
