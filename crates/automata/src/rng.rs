use mvq_core::{synthesize_spec, CostModel, QuaternarySpec, SynthesisEngine};
use mvq_logic::{GateLibrary, Pattern, Value};
use rand::Rng;

use crate::ProbabilisticCircuit;

/// A controlled quantum random-bit generator — the paper's Section 4
/// example application (the commercial "Quantis" QRNG \[19\], realized as a
/// synthesized 2-wire circuit).
///
/// Wire `A` is the enable input, wire `B` carries the random bit: when
/// `A = 1` the output `B` measures 0/1 with exact probability ½ each;
/// when `A = 0`, `B` passes through deterministically.
///
/// The circuit is *synthesized* from a [`QuaternarySpec`] by the paper's
/// own algorithm rather than hand-built — demonstrating that the method
/// extends to probabilistic targets without modification.
///
/// # Examples
///
/// ```
/// use mvq_automata::ControlledRng;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let generator = ControlledRng::synthesize().expect("single gate");
/// assert_eq!(generator.quantum_cost(), 1);
/// let mut rng = StdRng::seed_from_u64(1);
/// let bits = generator.generate(&mut rng, 8, true);
/// assert_eq!(bits.len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct ControlledRng {
    block: ProbabilisticCircuit,
}

impl ControlledRng {
    /// Synthesizes the generator from its quaternary specification.
    ///
    /// Returns `None` if synthesis fails (it cannot for the standard
    /// library: a single controlled-V meets the spec).
    pub fn synthesize() -> Option<Self> {
        let spec = Self::spec();
        let mut engine = SynthesisEngine::new(GateLibrary::standard(2), CostModel::unit());
        let result = synthesize_spec(&mut engine, &spec, 3)?;
        Some(Self {
            block: ProbabilisticCircuit::new(result.circuit),
        })
    }

    /// The generator's binary-input / quaternary-output specification:
    /// `(0, b) ↦ (0, b)`; `(1, b) ↦ (1, V_b)`.
    pub fn spec() -> QuaternarySpec {
        QuaternarySpec::new(
            2,
            vec![
                Pattern::from_bits(0b00, 2),
                Pattern::from_bits(0b01, 2),
                Pattern::new(vec![Value::One, Value::V0]),
                Pattern::new(vec![Value::One, Value::V1]),
            ],
        )
        .expect("spec is valid")
    }

    /// The synthesized measurement block.
    pub fn block(&self) -> &ProbabilisticCircuit {
        &self.block
    }

    /// The quantum cost of the synthesized circuit.
    pub fn quantum_cost(&self) -> u32 {
        self.block.circuit().quantum_cost()
    }

    /// Generates `n` random bits. With `enabled = false` the generator
    /// degrades to constant zeros (the control input is 0).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R, n: usize, enabled: bool) -> Vec<bool> {
        let input = if enabled { 0b10 } else { 0b00 };
        (0..n)
            .map(|_| self.block.measure(rng, input) & 1 == 1)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvq_arith::Dyadic;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn synthesis_yields_cost_1() {
        let g = ControlledRng::synthesize().expect("synthesizes");
        assert_eq!(g.quantum_cost(), 1);
    }

    #[test]
    fn enabled_output_is_exactly_uniform() {
        let g = ControlledRng::synthesize().unwrap();
        let d = g.block().output_distribution(0b10);
        assert_eq!(d.prob_of(0b10), Dyadic::HALF);
        assert_eq!(d.prob_of(0b11), Dyadic::HALF);
    }

    #[test]
    fn disabled_output_is_deterministic() {
        let g = ControlledRng::synthesize().unwrap();
        let d = g.block().output_distribution(0b00);
        assert!(d.is_deterministic());
        assert_eq!(d.prob_of(0b00), Dyadic::ONE);
    }

    #[test]
    fn empirical_frequency_near_half() {
        let g = ControlledRng::synthesize().unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let bits = g.generate(&mut rng, 20_000, true);
        let ones = bits.iter().filter(|&&b| b).count();
        let f = ones as f64 / 20_000.0;
        assert!((f - 0.5).abs() < 0.02, "frequency {f}");
    }

    #[test]
    fn disabled_generates_zeros() {
        let g = ControlledRng::synthesize().unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        assert!(g.generate(&mut rng, 100, false).iter().all(|&b| !b));
    }
}
