use mvq_arith::Dyadic;
use mvq_core::Circuit;
use mvq_sim::{Distribution, StateVector};
use rand::Rng;

/// A quantum circuit followed by a measurement unit: a combinational block
/// with deterministic binary inputs and probabilistic binary outputs
/// (Section 4, Figure 3 without the feedback loop).
///
/// # Examples
///
/// ```
/// use mvq_automata::ProbabilisticCircuit;
/// use mvq_core::Circuit;
/// use mvq_logic::Gate;
///
/// // Raise A, then V on B controlled by A: B measures uniformly.
/// let pc = ProbabilisticCircuit::new(Circuit::new(2, vec![
///     Gate::not(0),
///     Gate::v(1, 0),
/// ]));
/// let d = pc.output_distribution(0b00);
/// assert_eq!(d.prob_of(0b10).to_f64(), 0.5);
/// assert_eq!(d.prob_of(0b11).to_f64(), 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct ProbabilisticCircuit {
    circuit: Circuit,
}

impl ProbabilisticCircuit {
    /// Wraps a circuit with a measurement unit.
    pub fn new(circuit: Circuit) -> Self {
        Self { circuit }
    }

    /// The underlying quantum circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The number of wires (inputs and measured outputs).
    pub fn wires(&self) -> usize {
        self.circuit.wires()
    }

    /// The exact output distribution for a binary input word.
    ///
    /// # Panics
    ///
    /// Panics if `input_bits >= 2^wires`.
    pub fn output_distribution(&self, input_bits: usize) -> Distribution {
        let mut sv = StateVector::basis(self.circuit.wires(), input_bits);
        sv.apply_cascade(self.circuit.gates());
        sv.distribution()
    }

    /// The exact probability that measuring after input `input_bits`
    /// yields `output_bits`.
    pub fn prob(&self, input_bits: usize, output_bits: usize) -> Dyadic {
        self.output_distribution(input_bits).prob_of(output_bits)
    }

    /// `true` iff the block is deterministic for every input
    /// (a permutative circuit).
    pub fn is_deterministic(&self) -> bool {
        (0..1usize << self.circuit.wires())
            .all(|bits| self.output_distribution(bits).is_deterministic())
    }

    /// Measures once: samples an output word for the given input.
    pub fn measure<R: Rng + ?Sized>(&self, rng: &mut R, input_bits: usize) -> usize {
        self.output_distribution(input_bits).sample(rng)
    }

    /// Samples `n` measurements and returns counts per output word.
    pub fn measure_counts<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        input_bits: usize,
        n: usize,
    ) -> Vec<usize> {
        self.output_distribution(input_bits).sample_counts(rng, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvq_logic::Gate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn coin_circuit() -> ProbabilisticCircuit {
        // NOT(A); V(B;A): always outputs A=1, B uniform.
        ProbabilisticCircuit::new(Circuit::new(2, vec![Gate::not(0), Gate::v(1, 0)]))
    }

    #[test]
    fn exact_probabilities() {
        let pc = coin_circuit();
        assert_eq!(pc.prob(0b00, 0b10), Dyadic::HALF);
        assert_eq!(pc.prob(0b00, 0b11), Dyadic::HALF);
        assert_eq!(pc.prob(0b00, 0b00), Dyadic::ZERO);
    }

    #[test]
    fn determinism_detection() {
        assert!(!coin_circuit().is_deterministic());
        let det = ProbabilisticCircuit::new(Circuit::new(2, vec![Gate::feynman(1, 0)]));
        assert!(det.is_deterministic());
    }

    #[test]
    fn sampling_matches_exact_distribution() {
        let pc = coin_circuit();
        let mut rng = StdRng::seed_from_u64(11);
        let counts = pc.measure_counts(&mut rng, 0b00, 10_000);
        assert_eq!(counts[0b00], 0);
        assert_eq!(counts[0b01], 0);
        let f = counts[0b10] as f64 / 10_000.0;
        assert!((f - 0.5).abs() < 0.03, "frequency {f}");
    }

    #[test]
    fn single_measure_is_in_support() {
        let pc = coin_circuit();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let out = pc.measure(&mut rng, 0b00);
            assert!(out == 0b10 || out == 0b11);
        }
    }
}
