use mvq_arith::Dyadic;
use rand::Rng;

use crate::ProbabilisticCircuit;

/// Figure 3: a quantum-realized probabilistic state machine.
///
/// The register is split into *state* wires (fed back through classical
/// memory after each measurement) and *input* wires (driven externally
/// each step). One automaton step loads `state ∥ input` into the quantum
/// circuit, measures all wires, keeps the measured state wires as the next
/// state, and reports the measured word as the step output.
///
/// Externally the machine behaves as "a machine with probabilistic …
/// behaviors: the outputs and next states are probabilistically generated
/// binary vectors" with exactly known dyadic probabilities.
///
/// # Examples
///
/// ```
/// use mvq_automata::QuantumAutomaton;
/// use mvq_core::Circuit;
/// use mvq_logic::Gate;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// // One state wire (A), one input wire (B): flip the state when the
/// // input is 1 (a deterministic T flip-flop).
/// let circuit = Circuit::new(2, vec![Gate::feynman(0, 1)]);
/// let mut fsm = QuantumAutomaton::new(circuit, 1).expect("1 state wire of 2");
/// let mut rng = StdRng::seed_from_u64(1);
/// fsm.step(&mut rng, 0b1);
/// assert_eq!(fsm.state(), 0b1);
/// fsm.step(&mut rng, 0b1);
/// assert_eq!(fsm.state(), 0b0);
/// ```
#[derive(Debug, Clone)]
pub struct QuantumAutomaton {
    block: ProbabilisticCircuit,
    state_wires: usize,
    state: usize,
}

impl QuantumAutomaton {
    /// Builds an automaton from a combinational quantum circuit and the
    /// number of leading wires to treat as state (the rest are inputs).
    /// The initial state is all zeros.
    ///
    /// Returns `None` if `state_wires` is 0 or exceeds the circuit width.
    pub fn new(circuit: mvq_core::Circuit, state_wires: usize) -> Option<Self> {
        if state_wires == 0 || state_wires > circuit.wires() {
            return None;
        }
        Some(Self {
            block: ProbabilisticCircuit::new(circuit),
            state_wires,
            state: 0,
        })
    }

    /// The number of state wires.
    pub fn state_wires(&self) -> usize {
        self.state_wires
    }

    /// The number of input wires.
    pub fn input_wires(&self) -> usize {
        self.block.wires() - self.state_wires
    }

    /// The current state bits.
    pub fn state(&self) -> usize {
        self.state
    }

    /// Resets to a specific state.
    ///
    /// # Panics
    ///
    /// Panics if `state >= 2^state_wires`.
    pub fn reset(&mut self, state: usize) {
        assert!(state < 1 << self.state_wires, "state out of range");
        self.state = state;
    }

    /// The exact probability of transitioning from `state` to
    /// `next_state` on `input` (marginalizing over the non-state output
    /// wires).
    pub fn transition_prob(&self, state: usize, input: usize, next_state: usize) -> Dyadic {
        let dist = self.block.output_distribution(self.compose(state, input));
        let shift = self.input_wires();
        dist.probs()
            .iter()
            .enumerate()
            .filter(|(word, _)| word >> shift == next_state)
            .map(|(_, &p)| p)
            .fold(Dyadic::ZERO, |acc, p| acc + p)
    }

    /// Performs one step: drives `input`, measures, feeds the state back.
    /// Returns the full measured output word (state wires high).
    ///
    /// # Panics
    ///
    /// Panics if `input >= 2^input_wires`.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R, input: usize) -> usize {
        let word = self.block.measure(rng, self.compose(self.state, input));
        self.state = word >> self.input_wires();
        word
    }

    /// Runs a whole input sequence, returning the measured words.
    pub fn run<R: Rng + ?Sized>(&mut self, rng: &mut R, inputs: &[usize]) -> Vec<usize> {
        inputs.iter().map(|&i| self.step(rng, i)).collect()
    }

    fn compose(&self, state: usize, input: usize) -> usize {
        assert!(input < 1 << self.input_wires(), "input out of range");
        assert!(state < 1 << self.state_wires, "state out of range");
        (state << self.input_wires()) | input
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvq_core::Circuit;
    use mvq_logic::Gate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// State wire A; input wire B; quantum coin on state when input = 1:
    /// half the time the state flips.
    fn coin_fsm() -> QuantumAutomaton {
        let circuit = Circuit::new(2, vec![Gate::v(0, 1)]);
        QuantumAutomaton::new(circuit, 1).expect("valid split")
    }

    #[test]
    fn construction_validates_split() {
        let c = Circuit::new(2, vec![Gate::feynman(0, 1)]);
        assert!(QuantumAutomaton::new(c.clone(), 0).is_none());
        assert!(QuantumAutomaton::new(c.clone(), 3).is_none());
        assert!(QuantumAutomaton::new(c, 2).is_some());
    }

    #[test]
    fn transition_probabilities_are_exact() {
        let fsm = coin_fsm();
        // Input 1: state flips with probability ½.
        assert_eq!(fsm.transition_prob(0, 1, 0), Dyadic::HALF);
        assert_eq!(fsm.transition_prob(0, 1, 1), Dyadic::HALF);
        // Input 0: state is preserved deterministically.
        assert_eq!(fsm.transition_prob(0, 0, 0), Dyadic::ONE);
        assert_eq!(fsm.transition_prob(1, 0, 1), Dyadic::ONE);
    }

    #[test]
    fn deterministic_input_keeps_state() {
        let mut fsm = coin_fsm();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            fsm.step(&mut rng, 0);
            assert_eq!(fsm.state(), 0);
        }
    }

    #[test]
    fn random_walk_visits_both_states() {
        let mut fsm = coin_fsm();
        let mut rng = StdRng::seed_from_u64(9);
        let mut visited = [false; 2];
        for _ in 0..100 {
            fsm.step(&mut rng, 1);
            visited[fsm.state()] = true;
        }
        assert!(visited[0] && visited[1]);
    }

    #[test]
    fn run_reports_words_and_reset_works() {
        let mut fsm = coin_fsm();
        let mut rng = StdRng::seed_from_u64(2);
        let words = fsm.run(&mut rng, &[1, 1, 1]);
        assert_eq!(words.len(), 3);
        fsm.reset(1);
        assert_eq!(fsm.state(), 1);
    }

    #[test]
    #[should_panic(expected = "input out of range")]
    fn oversized_input_rejected() {
        let mut fsm = coin_fsm();
        let mut rng = StdRng::seed_from_u64(2);
        let _ = fsm.step(&mut rng, 2);
    }
}
