use mvq_arith::Dyadic;
use mvq_core::Circuit;
use mvq_logic::Gate;
use rand::Rng;

use crate::QuantumAutomaton;

/// A two-state hidden Markov model realized by a quantum automaton —
/// the paper's closing Section 4 application ("this approach will enable
/// us to synthesize minimal quantum automata, Hidden Markov Models and
/// similar concepts").
///
/// The register has two wires: the hidden state `S` (wire A) and an
/// observation wire `O` (wire B). Each step:
///
/// 1. the hidden state is re-randomized by a controlled-V coin
///    (`V(S; O)` with the observation wire driven high), flipping with
///    exact probability ½;
/// 2. a Feynman gate imprints the new hidden state onto the observation
///    wire (`O = 1 ⊕ S'`), so each emitted bit is the complement of the
///    freshly sampled hidden state — a fully correlated readout whose
///    statistics expose the hidden chain.
///
/// Transition and emission probabilities are dyadic by construction and
/// exposed exactly.
///
/// # Examples
///
/// ```
/// use mvq_automata::QuantumHmm;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut hmm = QuantumHmm::new();
/// let mut rng = StdRng::seed_from_u64(3);
/// let observations = hmm.emit(&mut rng, 100);
/// assert_eq!(observations.len(), 100);
/// assert_eq!(hmm.transition_prob(0, 1).to_f64(), 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct QuantumHmm {
    automaton: QuantumAutomaton,
}

impl QuantumHmm {
    /// Builds the standard 2-state quantum HMM.
    pub fn new() -> Self {
        // Wires: S (state, fed back), O (observation/input wire, driven
        // with 1 every step so it acts as the coin enable).
        // Cascade: V(S; O) — coin-flip the hidden state; then F(O; S) —
        // imprint the (new) state onto the observation wire.
        let circuit = Circuit::new(2, vec![Gate::v(0, 1), Gate::feynman(1, 0)]);
        // lint: allow(panic) the 2-wire V/F cascade is a fixed valid split, checked by unit tests
        let automaton = QuantumAutomaton::new(circuit, 1).expect("valid split");
        Self { automaton }
    }

    /// The underlying automaton.
    pub fn automaton(&self) -> &QuantumAutomaton {
        &self.automaton
    }

    /// The current hidden state.
    pub fn hidden_state(&self) -> usize {
        self.automaton.state()
    }

    /// The exact hidden-state transition probability `P(next | current)`
    /// when the machine is driven (enable = 1).
    pub fn transition_prob(&self, current: usize, next: usize) -> Dyadic {
        self.automaton.transition_prob(current, 1, next)
    }

    /// Runs `n` steps and returns the observation bits.
    pub fn emit<R: Rng + ?Sized>(&mut self, rng: &mut R, n: usize) -> Vec<bool> {
        (0..n)
            .map(|_| self.automaton.step(rng, 1) & 1 == 1)
            .collect()
    }

    /// Resets the hidden state.
    ///
    /// # Panics
    ///
    /// Panics if `state > 1`.
    pub fn reset(&mut self, state: usize) {
        self.automaton.reset(state);
    }
}

impl Default for QuantumHmm {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn transition_matrix_is_half_half() {
        let hmm = QuantumHmm::new();
        for s in 0..2 {
            assert_eq!(hmm.transition_prob(s, 0), Dyadic::HALF);
            assert_eq!(hmm.transition_prob(s, 1), Dyadic::HALF);
        }
    }

    #[test]
    fn emissions_are_balanced_over_long_runs() {
        let mut hmm = QuantumHmm::new();
        let mut rng = StdRng::seed_from_u64(17);
        let obs = hmm.emit(&mut rng, 20_000);
        let ones = obs.iter().filter(|&&b| b).count() as f64 / 20_000.0;
        assert!((ones - 0.5).abs() < 0.02, "emission frequency {ones}");
    }

    #[test]
    fn hidden_state_mixes() {
        let mut hmm = QuantumHmm::new();
        let mut rng = StdRng::seed_from_u64(23);
        let mut visits = [0usize; 2];
        for _ in 0..2_000 {
            hmm.emit(&mut rng, 1);
            visits[hmm.hidden_state()] += 1;
        }
        // Stationary distribution is uniform.
        let f = visits[0] as f64 / 2_000.0;
        assert!((f - 0.5).abs() < 0.05, "stationary frequency {f}");
    }

    #[test]
    fn reset_controls_initial_state() {
        let mut hmm = QuantumHmm::new();
        hmm.reset(1);
        assert_eq!(hmm.hidden_state(), 1);
    }

    #[test]
    fn default_matches_new() {
        assert_eq!(
            QuantumHmm::default().hidden_state(),
            QuantumHmm::new().hidden_state()
        );
    }
}
