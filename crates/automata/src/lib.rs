//! Quantum-realized probabilistic state machines — Section 4 of the
//! reproduced paper.
//!
//! The paper observes that its synthesis method needs **no modification**
//! to produce probabilistic circuits: drop the constraint that outputs are
//! pure states, synthesize a binary-input / quaternary-output
//! specification ([`mvq_core::QuaternarySpec`]), and place a measurement
//! unit after the circuit. The result is a combinational block with
//! deterministic inputs and probabilistic binary outputs whose
//! probabilities are *exactly* known (dyadic rationals). Adding state
//! feedback around it (Figure 3) yields probabilistic finite state
//! machines and hidden-Markov-model-style generators; the motivating
//! application is the commercial quantum random number generator \[19\].
//!
//! * [`ProbabilisticCircuit`] — circuit + measurement: exact output
//!   distributions and sampling.
//! * [`QuantumAutomaton`] — Figure 3: the measured circuit with state
//!   feedback.
//! * [`ControlledRng`] — the controlled quantum random-bit generator,
//!   synthesized from a spec.
//! * [`QuantumHmm`] — a two-state hidden Markov model driven by quantum
//!   coin flips.
//!
//! # Examples
//!
//! ```
//! use mvq_automata::ControlledRng;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let generator = ControlledRng::synthesize().expect("cost-1 circuit");
//! // Enabled: uniformly random bits.
//! let bits = generator.generate(&mut rng, 16, true);
//! assert_eq!(bits.len(), 16);
//! // Disabled: constant zeros.
//! assert!(generator.generate(&mut rng, 16, false).iter().all(|&b| !b));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod automaton;
mod hmm;
mod probabilistic;
mod rng;

pub use automaton::QuantumAutomaton;
pub use hmm::QuantumHmm;
pub use probabilistic::ProbabilisticCircuit;
pub use rng::ControlledRng;
