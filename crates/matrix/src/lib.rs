//! Dense exact complex matrices for quantum gate algebra.
//!
//! Matrices over [`CDyadic`](mvq_arith::CDyadic) — the exact ring
//! ℤ[i, ½] that contains every entry of the gates used in the reproduced
//! paper (V, V⁺, CNOT, NOT). Because the scalar type is exact, unitarity
//! checks, the identities `V·V = NOT` and `V⁺·V = I`, and the comparison
//! of a synthesized cascade's unitary against a target permutation matrix
//! are all **equality** tests, not tolerance tests.
//!
//! # Examples
//!
//! ```
//! use mvq_matrix::CMatrix;
//!
//! let v = CMatrix::v_gate();
//! let not = CMatrix::not_gate();
//! assert_eq!(&v * &v, not);            // V is the square root of NOT
//! assert!(v.is_unitary());
//! assert_eq!(&v * &v.adjoint(), CMatrix::identity(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cmatrix;

pub use cmatrix::CMatrix;
