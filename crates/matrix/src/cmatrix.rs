use std::fmt;
use std::ops::{Add, Index, Mul, Sub};

use mvq_arith::CDyadic;

/// A dense matrix over the exact complex ring ℤ[i, ½].
///
/// Row-major storage. Sizes in this workspace are tiny (2×2 up to 8×8 for
/// three qubits), so no sparsity or blocking is attempted; exactness and
/// clarity win.
///
/// # Examples
///
/// ```
/// use mvq_matrix::CMatrix;
/// use mvq_arith::CDyadic;
///
/// let id = CMatrix::identity(4);
/// assert!(id.is_unitary());
/// assert_eq!(id[(2, 2)], CDyadic::ONE);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<CDyadic>,
}

impl CMatrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![CDyadic::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, CDyadic::ONE);
        }
        m
    }

    /// Builds a matrix from row-major entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, entries: Vec<CDyadic>) -> Self {
        assert_eq!(entries.len(), rows * cols, "entry count mismatch");
        Self {
            rows,
            cols,
            data: entries,
        }
    }

    /// The 2×2 NOT (Pauli-X) gate.
    pub fn not_gate() -> Self {
        Self::from_rows(
            2,
            2,
            vec![CDyadic::ZERO, CDyadic::ONE, CDyadic::ONE, CDyadic::ZERO],
        )
    }

    /// The 2×2 V gate — the square root of NOT used throughout the paper:
    /// `V = ½·[[1+i, 1−i], [1−i, 1+i]]`.
    pub fn v_gate() -> Self {
        let d = CDyadic::HALF_ONE_PLUS_I;
        let o = CDyadic::HALF_ONE_MINUS_I;
        Self::from_rows(2, 2, vec![d, o, o, d])
    }

    /// The 2×2 V⁺ gate, the Hermitian adjoint of [`CMatrix::v_gate`].
    pub fn v_dagger_gate() -> Self {
        Self::v_gate().adjoint()
    }

    /// The `n × n` permutation matrix of a 1-based image table:
    /// column `j` carries a 1 in row `images[j] − 1`, i.e. basis state `j`
    /// is mapped to basis state `images[j] − 1`.
    ///
    /// # Panics
    ///
    /// Panics if `images` is not a permutation of `1..=n`.
    pub fn permutation(images: &[usize]) -> Self {
        let n = images.len();
        let mut m = Self::zeros(n, n);
        let mut seen = vec![false; n];
        for (col, &img) in images.iter().enumerate() {
            assert!(img >= 1 && img <= n && !seen[img - 1], "not a permutation");
            seen[img - 1] = true;
            m.set(img - 1, col, CDyadic::ONE);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry accessor with bounds checking.
    pub fn get(&self, row: usize, col: usize) -> Option<&CDyadic> {
        if row < self.rows && col < self.cols {
            Some(&self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Sets an entry.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: CDyadic) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// The conjugate transpose (Hermitian adjoint) `U⁺`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mvq_matrix::CMatrix;
    /// let v = CMatrix::v_gate();
    /// assert_eq!(v.adjoint().adjoint(), v);
    /// ```
    pub fn adjoint(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.data[r * self.cols + c].conj());
            }
        }
        out
    }

    /// The transpose without conjugation.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.data[r * self.cols + c]);
            }
        }
        out
    }

    /// The Kronecker (tensor) product `self ⊗ rhs`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mvq_matrix::CMatrix;
    /// let i2 = CMatrix::identity(2);
    /// let x = CMatrix::not_gate();
    /// let ix = i2.kron(&x);
    /// assert_eq!(ix.rows(), 4);
    /// // I ⊗ X swaps |00⟩↔|01⟩ and |10⟩↔|11⟩.
    /// assert_eq!(ix, CMatrix::permutation(&[2, 1, 4, 3]));
    /// ```
    pub fn kron(&self, rhs: &Self) -> Self {
        let mut out = Self::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        for ar in 0..self.rows {
            for ac in 0..self.cols {
                let a = self.data[ar * self.cols + ac];
                if a.is_zero() {
                    continue;
                }
                for br in 0..rhs.rows {
                    for bc in 0..rhs.cols {
                        let b = rhs.data[br * rhs.cols + bc];
                        if !b.is_zero() {
                            out.set(ar * rhs.rows + br, ac * rhs.cols + bc, a * b);
                        }
                    }
                }
            }
        }
        out
    }

    /// `true` iff the matrix is square and `U·U⁺ = I` (exact test).
    pub fn is_unitary(&self) -> bool {
        self.rows == self.cols && self * &self.adjoint() == Self::identity(self.rows)
    }

    /// `true` iff the matrix is the identity.
    pub fn is_identity(&self) -> bool {
        self.rows == self.cols && *self == Self::identity(self.rows)
    }

    /// `true` iff the matrix is a 0/1 permutation matrix.
    #[allow(clippy::needless_range_loop)]
    pub fn is_permutation(&self) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let n = self.rows;
        let mut row_seen = vec![false; n];
        for c in 0..n {
            let mut ones = 0;
            for r in 0..n {
                let e = self.data[r * self.cols + c];
                if e == CDyadic::ONE {
                    if row_seen[r] {
                        return false;
                    }
                    row_seen[r] = true;
                    ones += 1;
                } else if !e.is_zero() {
                    return false;
                }
            }
            if ones != 1 {
                return false;
            }
        }
        true
    }

    /// If the matrix is a permutation matrix, returns its 1-based image
    /// table (`state j ↦ images[j]`).
    #[allow(clippy::needless_range_loop)]
    pub fn to_permutation_images(&self) -> Option<Vec<usize>> {
        if !self.is_permutation() {
            return None;
        }
        let n = self.rows;
        let mut images = vec![0usize; n];
        for c in 0..n {
            for r in 0..n {
                if self.data[r * self.cols + c] == CDyadic::ONE {
                    images[c] = r + 1;
                }
            }
        }
        Some(images)
    }

    /// Applies the matrix to a column vector of amplitudes.
    ///
    /// # Panics
    ///
    /// Panics if `vec.len() != self.cols()`.
    #[allow(clippy::needless_range_loop)]
    pub fn apply(&self, vec: &[CDyadic]) -> Vec<CDyadic> {
        assert_eq!(vec.len(), self.cols, "vector length mismatch");
        (0..self.rows)
            .map(|r| {
                let mut acc = CDyadic::ZERO;
                for c in 0..self.cols {
                    let e = self.data[r * self.cols + c];
                    if !e.is_zero() && !vec[c].is_zero() {
                        acc += e * vec[c];
                    }
                }
                acc
            })
            .collect()
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = CDyadic;

    fn index(&self, (row, col): (usize, usize)) -> &CDyadic {
        self.get(row, col).expect("index out of bounds")
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;

    /// Matrix product.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in matrix product");
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[r * self.cols + k];
                if a.is_zero() {
                    continue;
                }
                for c in 0..rhs.cols {
                    let b = rhs.data[k * rhs.cols + c];
                    if !b.is_zero() {
                        let cur = out.data[r * rhs.cols + c];
                        out.data[r * rhs.cols + c] = cur + a * b;
                    }
                }
            }
        }
        out
    }
}

impl Mul for CMatrix {
    type Output = CMatrix;

    fn mul(self, rhs: CMatrix) -> CMatrix {
        &self * &rhs
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;

    /// Entry-wise sum.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;

    /// Entry-wise difference.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a - b)
                .collect(),
        }
    }
}

impl fmt::Display for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column-aligned exact entries.
        let strings: Vec<String> = self.data.iter().map(|e| e.to_string()).collect();
        let width = strings.iter().map(|s| s.len()).max().unwrap_or(1);
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>width$}", strings[r * self.cols + c])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvq_arith::Dyadic;

    #[test]
    fn v_squares_to_not() {
        assert_eq!(&CMatrix::v_gate() * &CMatrix::v_gate(), CMatrix::not_gate());
    }

    #[test]
    fn v_dagger_squares_to_not() {
        let vd = CMatrix::v_dagger_gate();
        assert_eq!(&vd * &vd, CMatrix::not_gate());
    }

    #[test]
    fn v_times_v_dagger_is_identity() {
        let v = CMatrix::v_gate();
        let vd = CMatrix::v_dagger_gate();
        assert!((&v * &vd).is_identity());
        assert!((&vd * &v).is_identity());
    }

    #[test]
    fn gates_are_unitary() {
        assert!(CMatrix::v_gate().is_unitary());
        assert!(CMatrix::v_dagger_gate().is_unitary());
        assert!(CMatrix::not_gate().is_unitary());
        assert!(CMatrix::identity(8).is_unitary());
    }

    #[test]
    fn permutation_matrix_roundtrip() {
        let images = vec![3, 1, 2, 4];
        let m = CMatrix::permutation(&images);
        assert!(m.is_permutation());
        assert!(m.is_unitary());
        assert_eq!(m.to_permutation_images().unwrap(), images);
    }

    #[test]
    fn non_permutation_detected() {
        assert!(!CMatrix::v_gate().is_permutation());
        assert!(CMatrix::v_gate().to_permutation_images().is_none());
    }

    #[test]
    fn kron_dimensions_and_values() {
        let x = CMatrix::not_gate();
        let xx = x.kron(&x);
        assert_eq!(xx.rows(), 4);
        // X ⊗ X maps |00⟩→|11⟩ etc.
        assert_eq!(xx, CMatrix::permutation(&[4, 3, 2, 1]));
    }

    #[test]
    fn kron_with_identity_is_block_diagonal() {
        let v = CMatrix::v_gate();
        let iv = CMatrix::identity(2).kron(&v);
        assert_eq!(iv[(0, 0)], v[(0, 0)]);
        assert_eq!(iv[(2, 2)], v[(0, 0)]);
        assert_eq!(iv[(0, 2)], CDyadic::ZERO);
        assert!(iv.is_unitary());
    }

    #[test]
    fn apply_matches_multiplication() {
        let v = CMatrix::v_gate();
        let e0 = vec![CDyadic::ONE, CDyadic::ZERO];
        let out = v.apply(&e0);
        assert_eq!(out[0], CDyadic::HALF_ONE_PLUS_I);
        assert_eq!(out[1], CDyadic::HALF_ONE_MINUS_I);
        // Probabilities sum to one exactly.
        assert_eq!(out[0].norm_sqr() + out[1].norm_sqr(), Dyadic::ONE);
    }

    #[test]
    fn add_sub_roundtrip() {
        let v = CMatrix::v_gate();
        let z = &v - &v;
        assert_eq!(z, CMatrix::zeros(2, 2));
        assert_eq!(&z + &v, v);
    }

    #[test]
    fn adjoint_reverses_products() {
        let v = CMatrix::v_gate();
        let x = CMatrix::not_gate();
        assert_eq!((&v * &x).adjoint(), &x.adjoint() * &v.adjoint());
    }

    #[test]
    fn transpose_vs_adjoint() {
        let v = CMatrix::v_gate();
        // V is symmetric, so transpose == V but adjoint != V.
        assert_eq!(v.transpose(), v);
        assert_ne!(v.adjoint(), v);
    }

    #[test]
    fn display_is_nonempty() {
        let s = CMatrix::v_gate().to_string();
        assert!(s.contains("(1+1i)/2"));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn product_shape_mismatch_panics() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 3);
        let _ = &a * &b;
    }
}
