//! Property-based tests: exact matrix algebra over ℤ[i, ½].

use mvq_arith::CDyadic;
use mvq_matrix::CMatrix;
use proptest::prelude::*;

fn scalar() -> impl Strategy<Value = CDyadic> {
    (-8i64..=8, -8i64..=8, 0u32..=2).prop_map(|(re, im, e)| CDyadic::new(re, im, e))
}

fn matrix2() -> impl Strategy<Value = CMatrix> {
    prop::collection::vec(scalar(), 4).prop_map(|v| CMatrix::from_rows(2, 2, v))
}

fn perm_images(n: usize) -> impl Strategy<Value = Vec<usize>> {
    Just((1..=n).collect::<Vec<usize>>()).prop_shuffle()
}

proptest! {
    #[test]
    fn product_associates(a in matrix2(), b in matrix2(), c in matrix2()) {
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
    }

    #[test]
    fn adjoint_reverses_products(a in matrix2(), b in matrix2()) {
        prop_assert_eq!((&a * &b).adjoint(), &b.adjoint() * &a.adjoint());
    }

    #[test]
    fn adjoint_is_involutive(a in matrix2()) {
        prop_assert_eq!(a.adjoint().adjoint(), a);
    }

    #[test]
    fn addition_commutes(a in matrix2(), b in matrix2()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn distributivity(a in matrix2(), b in matrix2(), c in matrix2()) {
        let left = &a * &(&b + &c);
        let right = &(&a * &b) + &(&a * &c);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn kron_mixed_product_identity(
        a in matrix2(), b in matrix2(), c in matrix2(), d in matrix2()
    ) {
        // (A ⊗ B)(C ⊗ D) = (AC) ⊗ (BD).
        let left = &a.kron(&b) * &c.kron(&d);
        let right = (&a * &c).kron(&(&b * &d));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn kron_of_identities_is_identity(n in 1usize..=3, m in 1usize..=3) {
        prop_assert_eq!(
            CMatrix::identity(n).kron(&CMatrix::identity(m)),
            CMatrix::identity(n * m)
        );
    }

    #[test]
    fn permutation_matrices_compose_contravariantly(
        p in perm_images(6), q in perm_images(6)
    ) {
        // Column convention: P maps basis j ↦ p[j]. Applying p then q is
        // the matrix product Q·P.
        let mp = CMatrix::permutation(&p);
        let mq = CMatrix::permutation(&q);
        let composed: Vec<usize> = (0..6).map(|j| q[p[j] - 1]).collect();
        prop_assert_eq!(&mq * &mp, CMatrix::permutation(&composed));
    }

    #[test]
    fn permutation_roundtrip(p in perm_images(8)) {
        let m = CMatrix::permutation(&p);
        prop_assert!(m.is_permutation());
        prop_assert!(m.is_unitary());
        prop_assert_eq!(m.to_permutation_images().expect("is a permutation"), p);
    }

    #[test]
    fn apply_is_matrix_vector_product(a in matrix2(), x in scalar(), y in scalar()) {
        let out = a.apply(&[x, y]);
        prop_assert_eq!(out[0], a[(0, 0)] * x + a[(0, 1)] * y);
        prop_assert_eq!(out[1], a[(1, 0)] * x + a[(1, 1)] * y);
    }

    #[test]
    fn transpose_of_transpose(a in matrix2()) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }
}
