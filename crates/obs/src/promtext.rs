//! Minimal parser for the Prometheus text exposition format produced by
//! [`crate::registry::Registry::render_prometheus`].
//!
//! Used by `serve_load`'s `--slo` gates (which judge the server from its
//! *own* `/metrics` scrape rather than client-side timing) and by the
//! integration tests that assert `/metrics` and `/stats` agree. It
//! parses the subset this workspace emits: un-labelled counter/gauge
//! samples and histogram `_bucket{le="…"}`/`_sum`/`_count` series.

use std::collections::BTreeMap;

/// One parsed histogram series.
#[derive(Debug, Clone, Default)]
pub struct ScrapedHistogram {
    /// `(upper_bound, cumulative_count)` per bucket in scrape order;
    /// the `+Inf` bucket is represented as `u64::MAX`.
    pub buckets: Vec<(u64, u64)>,
    /// Value of the `_count` sample.
    pub count: u64,
    /// Value of the `_sum` sample.
    pub sum: u64,
}

impl ScrapedHistogram {
    /// Upper-bound estimate of the `q`-th quantile using the
    /// nearest-rank definition over the cumulative buckets (the same
    /// derivation as `HistogramSnapshot::quantile`). Returns 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        for &(upper, cumulative) in &self.buckets {
            if cumulative >= rank {
                return upper;
            }
        }
        u64::MAX
    }
}

/// A parsed `/metrics` scrape.
#[derive(Debug, Clone, Default)]
pub struct Scrape {
    /// Counter samples by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge samples by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram series by base name.
    pub histograms: BTreeMap<String, ScrapedHistogram>,
}

/// Parses a Prometheus text scrape. Unknown or malformed lines are
/// skipped rather than fatal — a scrape is diagnostics, not a protocol.
pub fn parse_scrape(text: &str) -> Scrape {
    let mut scrape = Scrape::default();
    // name -> declared type, from `# TYPE` comments.
    let mut types: BTreeMap<&str, &str> = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            if let (Some(name), Some(kind)) = (parts.next(), parts.next()) {
                types.insert(name, kind);
            }
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((series, value)) = line.rsplit_once(' ') else {
            continue;
        };
        if let Some((name, label)) = series.split_once('{') {
            // Only histogram buckets carry labels in our exposition.
            let Some(base) = name.strip_suffix("_bucket") else {
                continue;
            };
            let Some(le) = label
                .strip_prefix("le=\"")
                .and_then(|rest| rest.strip_suffix("\"}"))
            else {
                continue;
            };
            let upper = if le == "+Inf" {
                u64::MAX
            } else {
                match le.parse() {
                    Ok(v) => v,
                    Err(_) => continue,
                }
            };
            let Ok(cumulative) = value.parse() else {
                continue;
            };
            scrape
                .histograms
                .entry(base.to_string())
                .or_default()
                .buckets
                .push((upper, cumulative));
        } else if let Some(base) = series
            .strip_suffix("_sum")
            .filter(|base| types.get(base) == Some(&"histogram"))
        {
            if let Ok(sum) = value.parse() {
                scrape.histograms.entry(base.to_string()).or_default().sum = sum;
            }
        } else if let Some(base) = series
            .strip_suffix("_count")
            .filter(|base| types.get(base) == Some(&"histogram"))
        {
            if let Ok(count) = value.parse() {
                scrape.histograms.entry(base.to_string()).or_default().count = count;
            }
        } else {
            match types.get(series) {
                Some(&"counter") => {
                    if let Ok(v) = value.parse() {
                        scrape.counters.insert(series.to_string(), v);
                    }
                }
                Some(&"gauge") => {
                    if let Ok(v) = value.parse() {
                        scrape.gauges.insert(series.to_string(), v);
                    }
                }
                _ => {}
            }
        }
    }
    scrape
}
