//! Structured request tracing: deterministic trace ids, a levelled
//! line-oriented log with a pluggable sink, and a bounded ring of the
//! slowest requests.
//!
//! Trace ids carry no ambient randomness — they are derived from a
//! worker id plus per-connection and per-request counters, so
//! `mvq_lint`'s determinism rule holds and a trace can be replayed
//! against a log by id alone.

use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// How much the trace log emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Nothing (the default).
    Off = 0,
    /// One structured line per request.
    Info = 1,
    /// Info plus verbose internal events.
    Debug = 2,
}

impl LogLevel {
    /// Parses `off` / `info` / `debug` (case-insensitive).
    pub fn parse(s: &str) -> Option<LogLevel> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(LogLevel::Off),
            "info" | "1" => Some(LogLevel::Info),
            "debug" | "2" => Some(LogLevel::Debug),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> LogLevel {
        match v {
            0 => LogLevel::Off,
            1 => LogLevel::Info,
            _ => LogLevel::Debug,
        }
    }
}

/// Deterministic per-request identifier: worker id, connection serial,
/// request serial within the connection. Displays as `w3-c12-r1`.
/// Worker 0 is reserved for the acceptor thread (overload sheds are
/// written before a worker is involved).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceId {
    /// Worker index (0 = acceptor).
    pub worker: u32,
    /// Connection serial, assigned at accept time.
    pub conn: u64,
    /// Request serial within the connection (keep-alive), from 1.
    pub req: u64,
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}-c{}-r{}", self.worker, self.conn, self.req)
    }
}

/// A levelled, line-oriented structured log. The level check is a single
/// relaxed atomic load, so a disabled log costs nothing on the request
/// path; emission locks the sink (default: stderr).
pub struct TraceLog {
    level: AtomicU8,
    sink: Mutex<Box<dyn Write + Send>>,
}

impl Default for TraceLog {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceLog {
    /// A log at [`LogLevel::Off`] writing to stderr.
    pub fn new() -> Self {
        Self {
            level: AtomicU8::new(LogLevel::Off as u8),
            sink: Mutex::new(Box::new(std::io::stderr())),
        }
    }

    /// Current level.
    pub fn level(&self) -> LogLevel {
        LogLevel::from_u8(self.level.load(Ordering::Relaxed))
    }

    /// Changes the level.
    pub fn set_level(&self, level: LogLevel) {
        self.level.store(level as u8, Ordering::Relaxed);
    }

    /// Whether a line at `level` would be emitted.
    #[inline]
    pub fn enabled(&self, level: LogLevel) -> bool {
        level as u8 <= self.level.load(Ordering::Relaxed) && level != LogLevel::Off
    }

    /// Replaces the output sink (tests install an in-memory buffer).
    pub fn set_sink(&self, sink: Box<dyn Write + Send>) {
        *self.sink.lock().expect("trace sink poisoned") = sink;
    }

    /// Writes `line` (a complete JSON object, no trailing newline) if
    /// `level` is enabled. Write errors are swallowed: tracing must
    /// never take a request down.
    pub fn emit(&self, level: LogLevel, line: &str) {
        if !self.enabled(level) {
            return;
        }
        // lint: allow(panic) sink lock holders only call write_all, which cannot panic
        let mut sink = self.sink.lock().expect("trace sink poisoned");
        let _ = sink.write_all(line.as_bytes());
        let _ = sink.write_all(b"\n");
        let _ = sink.flush();
    }
}

/// One retained slow-request record.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    /// Total request latency in microseconds.
    pub total_us: u64,
    /// The request's full trace line (JSON object).
    pub line: String,
}

/// Bounded collection of the N slowest requests seen so far, kept
/// sorted slowest-first. Served at `GET /debug/slow`.
pub struct SlowRing {
    cap: usize,
    entries: Mutex<Vec<SlowEntry>>,
}

impl SlowRing {
    /// A ring retaining at most `cap` entries.
    pub fn new(cap: usize) -> Self {
        Self {
            cap,
            entries: Mutex::new(Vec::with_capacity(cap)),
        }
    }

    /// Offers one request; retained only if it ranks among the slowest.
    pub fn record(&self, total_us: u64, line: &str) {
        if self.cap == 0 {
            return;
        }
        // lint: allow(panic) ring lock holders only do Vec ops on pre-checked indices
        let mut entries = self.entries.lock().expect("slow ring poisoned");
        if entries.len() == self.cap && entries.last().is_some_and(|e| e.total_us >= total_us) {
            return;
        }
        let at = entries.partition_point(|e| e.total_us >= total_us);
        entries.insert(
            at,
            SlowEntry {
                total_us,
                line: line.to_string(),
            },
        );
        entries.truncate(self.cap);
    }

    /// The retained entries, slowest first.
    pub fn snapshot(&self) -> Vec<SlowEntry> {
        // lint: allow(panic) ring lock holders only do Vec ops on pre-checked indices
        self.entries.lock().expect("slow ring poisoned").clone()
    }
}
