//! Search-core profiling hooks.
//!
//! The search engine cannot read the clock — `mvq_lint`'s determinism
//! rule bans `Instant` from the core modules so replays stay
//! byte-identical. Instead the engine announces *events* through the
//! [`Probe`] trait (level started/finished, bucket sharded, bidi split
//! chosen, snapshot section written) and the probe implementation on the
//! other side of the trait boundary does the timing. [`RegistryProbe`]
//! is that implementation: it timestamps paired events with thread-local
//! start cells and feeds the registry's lock-free metrics.
//!
//! This file is *increment-path* code like [`crate::metrics`]: the
//! `obs` lint rule bars locks and heap allocation here, because probe
//! callbacks run inside the engine's hottest loops. Wiring that needs to
//! allocate (building a [`RegistryProbe`] from a registry) takes the
//! pre-registered handles as arguments instead of creating them.

use std::cell::Cell;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use crate::metrics::{Counter, Gauge, Histogram};

/// Engine-side observability events. Every method has a no-op default,
/// so an engine without a probe installed pays only an `Option` check.
pub trait Probe: Send + Sync {
    /// A cost level is about to be expanded.
    fn level_started(&self, _cost: u32) {}
    /// A cost level finished expanding: `nodes` new canonical words
    /// were produced and the pending frontier now holds `frontier`
    /// words.
    fn level_finished(&self, _cost: u32, _nodes: u64, _frontier: u64) {}
    /// A parallel bucket expansion staged `total` pushes across
    /// `shards` shards; the fullest shard received `max_staged` and the
    /// emptiest `min_staged`.
    fn bucket_sharded(&self, _min_staged: u64, _max_staged: u64, _total: u64, _shards: u64) {}
    /// The bidirectional planner split a cost bound `cb` into forward
    /// and backward halves.
    fn bidi_split(&self, _forward_cb: u32, _backward_cb: u32, _cb: u32) {}
    /// A snapshot section (save or load side) is starting.
    fn snapshot_section_started(&self, _section: &'static str) {}
    /// A snapshot section finished, having carried `bytes` bytes.
    fn snapshot_section_finished(&self, _section: &'static str, _bytes: u64) {}
}

/// Cloneable optional probe slot stored on the engine. `Debug` is
/// implemented by hand (trait objects have none) so the engine can keep
/// deriving `Debug`.
#[derive(Clone, Default)]
pub struct ProbeHandle(Option<Arc<dyn Probe>>);

impl fmt::Debug for ProbeHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.is_some() {
            "ProbeHandle(set)"
        } else {
            "ProbeHandle(none)"
        })
    }
}

impl ProbeHandle {
    /// The empty (no-op) slot.
    pub fn none() -> Self {
        Self(None)
    }

    /// A slot carrying `probe`.
    pub fn new(probe: Arc<dyn Probe>) -> Self {
        Self(Some(probe))
    }

    /// Whether a probe is installed.
    pub fn is_set(&self) -> bool {
        self.0.is_some()
    }

    /// Runs `f` against the probe if one is installed. Inlined to a
    /// single branch when the slot is empty.
    #[inline]
    pub fn on(&self, f: impl FnOnce(&dyn Probe)) {
        if let Some(probe) = &self.0 {
            f(probe.as_ref());
        }
    }
}

thread_local! {
    static LEVEL_START: Cell<Option<Instant>> = const { Cell::new(None) };
    static SECTION_START: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// The metric handles a [`RegistryProbe`] records into. Built by
/// [`Registry::probe_metrics`](crate::Registry::probe_metrics)
/// (scrape-path code in `registry.rs`) and handed in whole so this
/// file never touches the registry lock.
pub struct ProbeMetrics {
    /// Wall time per expanded level (µs).
    pub level_expand_us: Arc<Histogram>,
    /// Total canonical words produced by expansions.
    pub level_nodes_total: Arc<Counter>,
    /// Number of levels expanded.
    pub levels_expanded_total: Arc<Counter>,
    /// Pending frontier size after the last expanded level.
    pub frontier_words: Arc<Gauge>,
    /// Staging imbalance of the last parallel bucket: how far the
    /// fullest shard sat above the mean, in percent.
    pub shard_imbalance_last_pct: Arc<Gauge>,
    /// Parallel bucket expansions observed.
    pub sharded_buckets_total: Arc<Counter>,
    /// Bidirectional split decisions taken.
    pub bidi_splits_total: Arc<Counter>,
    /// Forward cost bound of the last bidi split.
    pub bidi_forward_cb: Arc<Gauge>,
    /// Backward cost bound of the last bidi split.
    pub bidi_backward_cb: Arc<Gauge>,
    /// Wall time per snapshot section, save or load side (µs).
    pub snapshot_section_us: Arc<Histogram>,
    /// Bytes carried per snapshot section.
    pub snapshot_section_bytes: Arc<Histogram>,
}

/// [`Probe`] implementation that times paired events and records into
/// lock-free registry metrics.
pub struct RegistryProbe {
    metrics: ProbeMetrics,
}

impl RegistryProbe {
    /// Wraps pre-registered metric handles.
    pub fn new(metrics: ProbeMetrics) -> Self {
        Self { metrics }
    }
}

fn elapsed_us(start: Option<Instant>) -> u64 {
    match start {
        Some(t) => {
            let us = t.elapsed().as_micros();
            if us > u64::MAX as u128 {
                u64::MAX
            } else {
                us as u64
            }
        }
        None => 0,
    }
}

impl Probe for RegistryProbe {
    fn level_started(&self, _cost: u32) {
        // lint: allow(determinism) outbound-only timing: feeds latency metrics, never search state
        LEVEL_START.with(|c| c.set(Some(Instant::now())));
    }

    fn level_finished(&self, _cost: u32, nodes: u64, frontier: u64) {
        let us = elapsed_us(LEVEL_START.with(|c| c.take()));
        self.metrics.level_expand_us.record(us);
        self.metrics.level_nodes_total.add(nodes);
        self.metrics.levels_expanded_total.inc();
        self.metrics
            .frontier_words
            .set(frontier.min(i64::MAX as u64) as i64);
    }

    fn bucket_sharded(&self, _min_staged: u64, max_staged: u64, total: u64, shards: u64) {
        self.metrics.sharded_buckets_total.inc();
        if shards > 0 && total > 0 {
            let mean = total / shards;
            let pct = max_staged
                .saturating_mul(100)
                .checked_div(mean)
                .map_or(0, |ratio| ratio.saturating_sub(100));
            self.metrics
                .shard_imbalance_last_pct
                .set(pct.min(i64::MAX as u64) as i64);
        }
    }

    fn bidi_split(&self, forward_cb: u32, backward_cb: u32, _cb: u32) {
        self.metrics.bidi_splits_total.inc();
        self.metrics.bidi_forward_cb.set(i64::from(forward_cb));
        self.metrics.bidi_backward_cb.set(i64::from(backward_cb));
    }

    fn snapshot_section_started(&self, _section: &'static str) {
        // lint: allow(determinism) outbound-only timing: feeds latency metrics, never search state
        SECTION_START.with(|c| c.set(Some(Instant::now())));
    }

    fn snapshot_section_finished(&self, _section: &'static str, bytes: u64) {
        let us = elapsed_us(SECTION_START.with(|c| c.take()));
        self.metrics.snapshot_section_us.record(us);
        self.metrics.snapshot_section_bytes.record(bytes);
    }
}
