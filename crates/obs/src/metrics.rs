//! Lock-free metric primitives: the *increment path*.
//!
//! Everything in this module is callable from the hottest loops in the
//! search core and the serve request path, so the rules are strict and
//! machine-checked by `mvq_lint`'s `obs` rule: no locks, no heap
//! allocation, no blocking — only atomics with `Relaxed` ordering.
//! Aggregation, naming, and rendering live in [`crate::registry`], which
//! is scrape-path code and may lock and allocate freely.
//!
//! The [`Histogram`] uses fixed log2 buckets: bucket 0 holds the value 0
//! and bucket `b` (1 ≤ b < [`BUCKETS`]−1) holds values in
//! `[2^(b-1), 2^b - 1]`; the last bucket is unbounded. For microsecond
//! latencies the penultimate bucket tops out above 2^30 µs (≈ 18
//! minutes), far past any request this stack serves. `count` and `sum`
//! are exact; quantiles derived from the buckets are exact to within one
//! power-of-two bracket, which the scrape-side derivation reports as a
//! `(lower, upper)` bound pair.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Number of log2 buckets in a [`Histogram`].
pub const BUCKETS: usize = 32;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (last-write-wins).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge starting at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicI64::new(0),
        }
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket log2 histogram with exact count and sum.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }

    /// The bucket index holding `value`: 0 for 0, otherwise
    /// `floor(log2(value)) + 1` clamped to the last bucket.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        let bits = (u64::BITS - value.leading_zeros()) as usize;
        if bits < BUCKETS {
            bits
        } else {
            BUCKETS - 1
        }
    }

    /// Inclusive lower bound of bucket `index`.
    #[inline]
    pub fn bucket_lower_bound(index: usize) -> u64 {
        if index == 0 {
            0
        } else {
            1u64 << (index - 1)
        }
    }

    /// Inclusive upper bound of bucket `index` (`u64::MAX` for the last).
    #[inline]
    pub fn bucket_upper_bound(index: usize) -> u64 {
        if index + 1 >= BUCKETS {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the buckets, count, and sum. Individual
    /// loads are `Relaxed`, so a snapshot taken concurrently with
    /// recording may be mid-update by a few observations; once writers
    /// quiesce it is exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        let mut i = 0;
        while i < BUCKETS {
            buckets[i] = self.buckets[i].load(Ordering::Relaxed);
            i += 1;
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Plain-data copy of a [`Histogram`], used on the scrape path.
#[derive(Debug, Clone, Copy)]
pub struct HistogramSnapshot {
    /// Total number of observations.
    pub count: u64,
    /// Exact sum of all observed values.
    pub sum: u64,
    /// Per-bucket observation counts (not cumulative).
    pub buckets: [u64; BUCKETS],
}

impl HistogramSnapshot {
    /// Mean of all observations, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The `(lower, upper)` bounds of the bucket containing the `q`-th
    /// quantile observation, using the nearest-rank definition
    /// `rank = ceil(q · count)` (clamped to `[1, count]`). The exact
    /// sample value lies within these bounds. Returns `(0, 0)` when
    /// empty.
    pub fn quantile_bounds(&self, q: f64) -> (u64, u64) {
        if self.count == 0 {
            return (0, 0);
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        let mut i = 0;
        while i < BUCKETS {
            cumulative += self.buckets[i];
            if cumulative >= rank {
                return (
                    Histogram::bucket_lower_bound(i),
                    Histogram::bucket_upper_bound(i),
                );
            }
            i += 1;
        }
        // Unreachable when count equals the bucket total; be defensive
        // against a torn concurrent snapshot.
        (0, u64::MAX)
    }

    /// Conservative (upper-bound) estimate of the `q`-th quantile.
    pub fn quantile(&self, q: f64) -> u64 {
        self.quantile_bounds(q).1
    }
}
