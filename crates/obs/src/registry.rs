//! Metric registration and rendering: the *scrape path*.
//!
//! A [`Registry`] owns the name → metric table and renders it in
//! Prometheus text exposition format. Registration and rendering take a
//! mutex and allocate — that is fine, they run at startup and on
//! `GET /metrics` scrapes. The handles they return ([`Counter`],
//! [`Gauge`], [`Histogram`] behind `Arc`) are the lock-free increment
//! path from [`crate::metrics`].
//!
//! Counters can also be *callback-backed* ([`Registry::counter_fn`]):
//! the registry stores a closure that reads an existing atomic owned by
//! someone else (e.g. the serve host's per-host counters). This is how
//! `GET /metrics` and the `/stats` JSON are kept identical by
//! construction — both read the same atomics at scrape time instead of
//! maintaining parallel counts that could drift.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS};
use crate::probe::ProbeMetrics;

type CounterCallback = Box<dyn Fn() -> u64 + Send + Sync>;

enum Source {
    Counter(Arc<Counter>),
    CounterFn(CounterCallback),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    name: &'static str,
    help: &'static str,
    source: Source,
}

/// Checks a metric name against the conventions the `mvq_lint` `obs`
/// rule enforces statically: `snake_case` (lowercase ASCII, digits,
/// underscores, starting with a letter) and — for counters and
/// histograms — a unit suffix of `_us`, `_bytes`, or `_total`.
pub fn valid_metric_name(name: &str, needs_unit_suffix: bool) -> bool {
    let snake = !name.is_empty()
        && name.starts_with(|c: char| c.is_ascii_lowercase())
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
    let suffixed = !needs_unit_suffix
        || ["_us", "_bytes", "_total"]
            .iter()
            .any(|s| name.ends_with(s));
    snake && suffixed
}

/// A named collection of metrics, rendered on demand.
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            entries: Mutex::new(Vec::new()),
        }
    }

    fn insert(&self, name: &'static str, help: &'static str, source: Source) {
        let needs_suffix = !matches!(source, Source::Gauge(_));
        assert!(
            valid_metric_name(name, needs_suffix),
            "metric name `{name}` violates naming rules (snake_case; counters and \
             histograms need a `_us`/`_bytes`/`_total` suffix)"
        );
        // lint: allow(panic) registration happens at startup, before any panicking writer can exist
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        assert!(
            entries.iter().all(|e| e.name != name),
            "metric name `{name}` registered twice"
        );
        entries.push(Entry { name, help, source });
    }

    /// Registers and returns a new [`Counter`].
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        let counter = Arc::new(Counter::new());
        self.insert(name, help, Source::Counter(Arc::clone(&counter)));
        counter
    }

    /// Registers a callback-backed counter whose value is read from `f`
    /// at scrape time (for counters whose atomic lives elsewhere).
    pub fn counter_fn(
        &self,
        name: &'static str,
        help: &'static str,
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.insert(name, help, Source::CounterFn(Box::new(f)));
    }

    /// Registers and returns a new [`Gauge`].
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        let gauge = Arc::new(Gauge::new());
        self.insert(name, help, Source::Gauge(Arc::clone(&gauge)));
        gauge
    }

    /// Registers and returns a new [`Histogram`].
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Arc<Histogram> {
        let histogram = Arc::new(Histogram::new());
        self.insert(name, help, Source::Histogram(Arc::clone(&histogram)));
        histogram
    }

    /// Current value of every counter (direct and callback-backed),
    /// in registration order.
    pub fn counter_values(&self) -> Vec<(&'static str, u64)> {
        // lint: allow(panic) entry lock holders never panic: reads and atomic loads only
        let entries = self.entries.lock().expect("metrics registry poisoned");
        entries
            .iter()
            .filter_map(|e| match &e.source {
                Source::Counter(c) => Some((e.name, c.get())),
                Source::CounterFn(f) => Some((e.name, f())),
                _ => None,
            })
            .collect()
    }

    /// Current value of every gauge, in registration order.
    pub fn gauge_values(&self) -> Vec<(&'static str, i64)> {
        // lint: allow(panic) entry lock holders never panic: reads and atomic loads only
        let entries = self.entries.lock().expect("metrics registry poisoned");
        entries
            .iter()
            .filter_map(|e| match &e.source {
                Source::Gauge(g) => Some((e.name, g.get())),
                _ => None,
            })
            .collect()
    }

    /// Snapshot of every histogram, in registration order.
    pub fn histogram_snapshots(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        // lint: allow(panic) entry lock holders never panic: reads and atomic loads only
        let entries = self.entries.lock().expect("metrics registry poisoned");
        entries
            .iter()
            .filter_map(|e| match &e.source {
                Source::Histogram(h) => Some((e.name, h.snapshot())),
                _ => None,
            })
            .collect()
    }

    /// Registers the search-probe metric family and returns the handle
    /// bundle a [`crate::probe::RegistryProbe`] records into.
    pub fn probe_metrics(&self) -> ProbeMetrics {
        ProbeMetrics {
            level_expand_us: self.histogram(
                "level_expand_us",
                "Wall time per expanded search level (microseconds)",
            ),
            level_nodes_total: self.counter(
                "level_nodes_total",
                "Canonical words produced by level expansions",
            ),
            levels_expanded_total: self.counter("levels_expanded_total", "Search levels expanded"),
            frontier_words: self.gauge(
                "frontier_words",
                "Pending frontier size after the last expanded level",
            ),
            shard_imbalance_last_pct: self.gauge(
                "shard_imbalance_last_pct",
                "Fullest shard's staging excess over the mean, percent (last bucket)",
            ),
            sharded_buckets_total: self
                .counter("sharded_buckets_total", "Parallel bucket expansions"),
            bidi_splits_total: self.counter("bidi_splits_total", "Bidirectional split decisions"),
            bidi_forward_cb: self.gauge(
                "bidi_forward_cb",
                "Forward cost bound chosen by the last bidi split",
            ),
            bidi_backward_cb: self.gauge(
                "bidi_backward_cb",
                "Backward cost bound chosen by the last bidi split",
            ),
            snapshot_section_us: self.histogram(
                "snapshot_section_us",
                "Wall time per snapshot section, save or load (microseconds)",
            ),
            snapshot_section_bytes: self.histogram(
                "snapshot_section_bytes",
                "Bytes carried per snapshot section",
            ),
        }
    }

    /// Renders every metric in Prometheus text exposition format
    /// (version 0.0.4). Histogram buckets use cumulative counts with
    /// inclusive `le` upper bounds, ending in `+Inf`.
    pub fn render_prometheus(&self) -> String {
        // lint: allow(panic) entry lock holders never panic: reads and atomic loads only
        let entries = self.entries.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for e in entries.iter() {
            let _ = writeln!(out, "# HELP {} {}", e.name, e.help);
            match &e.source {
                Source::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {} counter", e.name);
                    let _ = writeln!(out, "{} {}", e.name, c.get());
                }
                Source::CounterFn(f) => {
                    let _ = writeln!(out, "# TYPE {} counter", e.name);
                    let _ = writeln!(out, "{} {}", e.name, f());
                }
                Source::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {} gauge", e.name);
                    let _ = writeln!(out, "{} {}", e.name, g.get());
                }
                Source::Histogram(h) => {
                    let snap = h.snapshot();
                    let _ = writeln!(out, "# TYPE {} histogram", e.name);
                    let mut cumulative = 0u64;
                    for (i, &n) in snap.buckets.iter().enumerate() {
                        cumulative += n;
                        // Skip interior empty buckets to keep the scrape
                        // small; always emit the first populated run and
                        // the +Inf terminator below.
                        if n == 0 && cumulative == 0 {
                            continue;
                        }
                        if i + 1 < BUCKETS {
                            let _ = writeln!(
                                out,
                                "{}_bucket{{le=\"{}\"}} {}",
                                e.name,
                                Histogram::bucket_upper_bound(i),
                                cumulative
                            );
                        }
                    }
                    let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", e.name, snap.count);
                    let _ = writeln!(out, "{}_sum {}", e.name, snap.sum);
                    let _ = writeln!(out, "{}_count {}", e.name, snap.count);
                }
            }
        }
        out
    }
}
