//! `mvq_obs` — hand-rolled observability for the synthesis stack.
//!
//! Offline and dependency-free (no tokio, no `tracing`), consistent
//! with the workspace's shims policy. Four pieces:
//!
//! - [`metrics`]: lock-free [`Counter`] / [`Gauge`] / log2 [`Histogram`]
//!   primitives — the increment path, machine-checked (by `mvq_lint`'s
//!   `obs` rule) to never lock or allocate.
//! - [`registry`]: named registration and Prometheus text rendering —
//!   the scrape path behind `GET /metrics`, including callback-backed
//!   counters that read atomics owned elsewhere so `/metrics` and
//!   `/stats` can never disagree.
//! - [`trace`]: deterministic [`TraceId`]s, the levelled [`TraceLog`]
//!   emitting one structured JSON line per request, and the [`SlowRing`]
//!   behind `GET /debug/slow`.
//! - [`probe`]: the [`Probe`] trait the search engine announces events
//!   through (it may not read the clock itself — determinism), plus
//!   [`RegistryProbe`] which does the timing and feeds the registry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod probe;
pub mod promtext;
pub mod registry;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS};
pub use probe::{Probe, ProbeHandle, ProbeMetrics, RegistryProbe};
pub use promtext::{parse_scrape, Scrape, ScrapedHistogram};
pub use registry::{valid_metric_name, Registry};
pub use trace::{LogLevel, SlowEntry, SlowRing, TraceId, TraceLog};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_partition_the_domain() {
        // Buckets must tile [0, u64::MAX] without gaps or overlaps.
        assert_eq!(Histogram::bucket_lower_bound(0), 0);
        assert_eq!(Histogram::bucket_upper_bound(0), 0);
        for i in 1..BUCKETS {
            assert_eq!(
                Histogram::bucket_lower_bound(i),
                Histogram::bucket_upper_bound(i - 1) + 1
            );
        }
        assert_eq!(Histogram::bucket_upper_bound(BUCKETS - 1), u64::MAX);
        // Every value's bucket brackets the value.
        for v in [0, 1, 2, 3, 7, 8, 100, 4096, 1 << 40, u64::MAX] {
            let i = Histogram::bucket_index(v);
            assert!(Histogram::bucket_lower_bound(i) <= v);
            assert!(v <= Histogram::bucket_upper_bound(i));
        }
    }

    #[test]
    fn histogram_count_and_sum_are_exact() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 17, 300, 70_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 6);
        assert_eq!(snap.sum, 70_323);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 6);
        assert_eq!(snap.mean(), 70_323 / 6);
    }

    #[test]
    fn quantile_bounds_bracket_the_exact_sample() {
        let values = [3u64, 9, 12, 15, 200, 201, 202, 90_000, 90_001, 4];
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let snap = h.snapshot();
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let (lo, hi) = snap.quantile_bounds(q);
            assert!(
                lo <= exact && exact <= hi,
                "q={q}: {exact} not in [{lo}, {hi}]"
            );
            assert_eq!(snap.quantile(q), hi);
        }
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.quantile_bounds(0.99), (0, 0));
        assert_eq!(snap.mean(), 0);
    }

    #[test]
    fn metric_name_validation() {
        assert!(valid_metric_name("cache_hits_total", true));
        assert!(valid_metric_name("request_us", true));
        assert!(valid_metric_name("snapshot_section_bytes", true));
        assert!(valid_metric_name("frontier_words", false));
        assert!(
            !valid_metric_name("cache_hits", true),
            "missing unit suffix"
        );
        assert!(
            !valid_metric_name("CacheHits_total", true),
            "not snake_case"
        );
        assert!(
            !valid_metric_name("_total", true),
            "must start with a letter"
        );
        assert!(!valid_metric_name("", false));
    }

    #[test]
    #[should_panic(expected = "violates naming rules")]
    fn registry_rejects_unsuffixed_counter() {
        Registry::new().counter("bad_name", "no unit suffix");
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn registry_rejects_duplicates() {
        let r = Registry::new();
        r.counter("dup_total", "first");
        r.counter("dup_total", "second");
    }

    #[test]
    fn prometheus_render_round_trips_through_parser() {
        let r = Registry::new();
        let c = r.counter("events_total", "Events");
        c.add(7);
        r.counter_fn("callback_total", "Callback-backed", || 42);
        let g = r.gauge("frontier_words", "Frontier");
        g.set(-3);
        let h = r.histogram("latency_us", "Latency");
        for v in [1u64, 2, 3, 1000, 100_000] {
            h.record(v);
        }
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE events_total counter"));
        assert!(text.contains("events_total 7"));
        assert!(text.contains("callback_total 42"));
        assert!(text.contains("frontier_words -3"));
        assert!(text.contains("latency_us_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("latency_us_count 5"));

        let scrape = parse_scrape(&text);
        assert_eq!(scrape.counters["events_total"], 7);
        assert_eq!(scrape.counters["callback_total"], 42);
        assert_eq!(scrape.gauges["frontier_words"], -3);
        let hist = &scrape.histograms["latency_us"];
        assert_eq!(hist.count, 5);
        assert_eq!(hist.sum, 101_006);
        // Scraped quantile must agree with the snapshot-side derivation.
        let snap = h.snapshot();
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(hist.quantile(q), snap.quantile(q));
        }
    }

    #[test]
    fn trace_id_is_deterministic_text() {
        let id = TraceId {
            worker: 3,
            conn: 12,
            req: 1,
        };
        assert_eq!(id.to_string(), "w3-c12-r1");
    }

    /// `Write` sink shared with the test so emitted lines are visible.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn trace_log_respects_level_switch() {
        let log = TraceLog::new();
        let buf = SharedBuf::default();
        log.set_sink(Box::new(buf.clone()));
        log.emit(LogLevel::Info, "{\"dropped\":true}");
        assert!(buf.0.lock().unwrap().is_empty(), "Off drops everything");
        log.set_level(LogLevel::Info);
        log.emit(LogLevel::Info, "{\"kept\":1}");
        log.emit(LogLevel::Debug, "{\"dropped\":2}");
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text, "{\"kept\":1}\n");
        assert_eq!(LogLevel::parse("DEBUG"), Some(LogLevel::Debug));
        assert_eq!(LogLevel::parse("bogus"), None);
    }

    #[test]
    fn slow_ring_keeps_the_slowest_sorted() {
        let ring = SlowRing::new(3);
        for (us, line) in [(5, "a"), (50, "b"), (20, "c"), (1, "d"), (99, "e")] {
            ring.record(us, line);
        }
        let snap = ring.snapshot();
        let got: Vec<(u64, &str)> = snap.iter().map(|e| (e.total_us, e.line.as_str())).collect();
        assert_eq!(got, [(99, "e"), (50, "b"), (20, "c")]);
    }
}
