//! Server-side observability: the metrics registry, structured request
//! tracing, and the search-probe wiring.
//!
//! One [`ServeObs`] lives behind each [`crate::Server`]. It owns the
//! lock-free metrics (`mvq_obs`), the levelled trace log (one JSON line
//! per request at `info`), the slowest-requests ring served at
//! `GET /debug/slow`, and the [`RegistryProbe`] every hosted engine
//! reports into. The host counters exposed at `GET /metrics` are
//! callback-backed reads of the same atomics the `/stats` JSON renders,
//! so the two endpoints can never drift apart.

use std::fmt;
use std::sync::Arc;

use mvq_obs::{
    Counter, Histogram, LogLevel, ProbeHandle, Registry, RegistryProbe, SlowRing, TraceId, TraceLog,
};
use serde::{Content, Serialize};

use crate::host::{HostRegistry, HostStats};
use crate::json::render;

/// How many of the slowest requests `GET /debug/slow` retains.
const SLOW_RING_CAP: usize = 32;

/// One host counter registration: metric name, help text, and the
/// [`HostStats`] field summed across hosts at scrape time.
type HostCounterSpec = (&'static str, &'static str, fn(&HostStats) -> u64);

/// The server's observability state (see the module docs).
pub struct ServeObs {
    registry: Registry,
    trace: TraceLog,
    slow: SlowRing,
    probe: ProbeHandle,
    pub(crate) request_us: Arc<Histogram>,
    pub(crate) synthesize_us: Arc<Histogram>,
    pub(crate) census_us: Arc<Histogram>,
    pub(crate) queue_wait_us: Arc<Histogram>,
    pub(crate) engine_us: Arc<Histogram>,
    pub(crate) http_requests_total: Arc<Counter>,
    pub(crate) sheds_total: Arc<Counter>,
}

impl fmt::Debug for ServeObs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServeObs").finish_non_exhaustive()
    }
}

impl ServeObs {
    /// A fresh observability bundle with the serve metric family and
    /// the search-probe metric family registered.
    pub(crate) fn new() -> Arc<Self> {
        let registry = Registry::new();
        let probe = ProbeHandle::new(Arc::new(RegistryProbe::new(registry.probe_metrics())));
        let request_us = registry.histogram(
            "request_us",
            "End-to-end request latency, read to response written (microseconds)",
        );
        let synthesize_us =
            registry.histogram("synthesize_us", "POST /synthesize latency (microseconds)");
        let census_us = registry.histogram("census_us", "POST /census latency (microseconds)");
        let queue_wait_us = registry.histogram(
            "queue_wait_us",
            "Accept-to-worker queue wait per connection (microseconds)",
        );
        let engine_us = registry.histogram(
            "engine_us",
            "Time spent inside the engine host per request (microseconds)",
        );
        let http_requests_total = registry.counter(
            "http_requests_total",
            "HTTP responses written, including error replies and overload sheds",
        );
        let sheds_total = registry.counter(
            "sheds_total",
            "Connections shed at the accept loop because the worker queue was full",
        );
        Arc::new(Self {
            registry,
            trace: TraceLog::new(),
            slow: SlowRing::new(SLOW_RING_CAP),
            probe,
            request_us,
            synthesize_us,
            census_us,
            queue_wait_us,
            engine_us,
            http_requests_total,
            sheds_total,
        })
    }

    /// The metrics registry (rendered at `GET /metrics`).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The structured trace log (level and sink are runtime-settable).
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// The slowest-requests ring served at `GET /debug/slow`.
    pub fn slow(&self) -> &SlowRing {
        &self.slow
    }

    /// The probe handle hosted engines report into.
    pub fn probe(&self) -> ProbeHandle {
        self.probe.clone()
    }

    /// Registers callback-backed counters over `hosts`' per-host
    /// atomics, summed across hosts at scrape time. Reading the live
    /// atomics (rather than mirroring them) is what keeps `/metrics`
    /// and `/stats` identical by construction.
    pub(crate) fn register_host_counters(&self, hosts: &Arc<HostRegistry>) {
        fn sum(hosts: &HostRegistry, field: fn(&HostStats) -> u64) -> u64 {
            hosts
                .stats()
                .map(|all| all.iter().map(field).sum())
                .unwrap_or(0)
        }
        let fields: [HostCounterSpec; 9] = [
            (
                "synthesize_requests_total",
                "POST /synthesize requests admitted, all hosts",
                |s| s.synthesize_requests,
            ),
            (
                "census_requests_total",
                "POST /census requests admitted, all hosts",
                |s| s.census_requests,
            ),
            (
                "cache_hits_total",
                "Queries answered purely from the cached levels, all hosts",
                |s| s.cache_hits,
            ),
            (
                "cache_misses_total",
                "Queries that needed at least one expansion, all hosts",
                |s| s.cache_misses,
            ),
            (
                "expansions_total",
                "Write-side level expansions performed, all hosts",
                |s| s.expansions,
            ),
            (
                "single_flight_waits_total",
                "Requests that waited on another request's expansion, all hosts",
                |s| s.single_flight_waits,
            ),
            (
                "rejected_requests_total",
                "Requests rejected by cost-bound admission, all hosts",
                |s| s.rejected,
            ),
            (
                "rebuilds_total",
                "Poisoned engines quarantined and rebuilt, all hosts",
                |s| s.rebuilds,
            ),
            (
                "deadline_timeouts_total",
                "Requests shed because their deadline passed mid-wait, all hosts",
                |s| s.deadline_timeouts,
            ),
        ];
        for (name, help, field) in fields {
            let hosts = Arc::clone(hosts);
            self.registry
                .counter_fn(name, help, move || sum(&hosts, field));
        }
    }

    /// The registry as a JSON object for the `/stats` merge:
    /// `{"counters":{…},"gauges":{…},"histograms":{name:{count,sum,p50,p90,p99}}}`.
    /// Metric names are static `snake_case`, so no JSON escaping is
    /// needed.
    pub(crate) fn render_stats_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from(r#"{"counters":{"#);
        for (i, (name, value)) in self.registry.counter_values().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, r#""{name}":{value}"#);
        }
        out.push_str(r#"},"gauges":{"#);
        for (i, (name, value)) in self.registry.gauge_values().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, r#""{name}":{value}"#);
        }
        out.push_str(r#"},"histograms":{"#);
        for (i, (name, snap)) in self.registry.histogram_snapshots().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                r#""{name}":{{"count":{},"sum":{},"p50":{},"p90":{},"p99":{}}}"#,
                snap.count,
                snap.sum,
                snap.quantile(0.5),
                snap.quantile(0.9),
                snap.quantile(0.99),
            );
        }
        out.push_str("}}");
        out
    }

    /// The single per-request completion point: counts the response,
    /// records the latency histograms, offers the line to the slow
    /// ring, and emits it at `info`. Called exactly once per request —
    /// including parse failures, overload sheds, and panicked handlers.
    pub(crate) fn finish_request(&self, fields: &TraceFields<'_>) {
        self.http_requests_total.inc();
        self.request_us.record(fields.total_us);
        match fields.path {
            "/synthesize" => self.synthesize_us.record(fields.total_us),
            "/census" => self.census_us.record(fields.total_us),
            _ => {}
        }
        if let Some(us) = fields.queue_us {
            self.queue_wait_us.record(us);
        }
        if let Some(us) = fields.engine_us {
            self.engine_us.record(us);
        }
        let line = render(fields);
        self.slow.record(fields.total_us, &line);
        self.trace.emit(LogLevel::Info, &line);
    }
}

/// Everything one request's trace line carries. Fields that do not
/// apply to an endpoint render as JSON `null`, so every line has the
/// same schema (documented in the README's Observability section).
pub(crate) struct TraceFields<'a> {
    /// Deterministic request id (`w3-c12-r1`).
    pub id: TraceId,
    /// Request method (`-` when the request never parsed).
    pub method: &'a str,
    /// Request path (`-` when the request never parsed).
    pub path: &'a str,
    /// Response status code.
    pub status: u16,
    /// `ok` / `invalid` / `timeout` / `error` / `shed`.
    pub outcome: &'static str,
    /// The synthesize target, verbatim from the request.
    pub target: Option<&'a str>,
    /// Register width the request ran on.
    pub wires: Option<usize>,
    /// The serving strategy actually used (`auto` resolves).
    pub strategy: Option<&'static str>,
    /// Whether the cached levels answered without expansion.
    pub cache: Option<bool>,
    /// Expansions this request performed itself.
    pub expansions: Option<u64>,
    /// Accept-queue wait; only a connection's first request carries it.
    pub queue_us: Option<u64>,
    /// Time inside the engine host.
    pub engine_us: Option<u64>,
    /// End-to-end request latency.
    pub total_us: u64,
}

impl Serialize for TraceFields<'_> {
    fn serialize(&self) -> Content {
        fn text(v: &str) -> Content {
            Content::Str(v.to_string())
        }
        fn num(v: Option<u64>) -> Content {
            v.map_or(Content::Null, Content::U64)
        }
        Content::Map(vec![
            ("trace".to_string(), text(&self.id.to_string())),
            ("method".to_string(), text(self.method)),
            ("path".to_string(), text(self.path)),
            ("status".to_string(), Content::U64(self.status.into())),
            ("outcome".to_string(), text(self.outcome)),
            (
                "target".to_string(),
                self.target.map_or(Content::Null, text),
            ),
            ("wires".to_string(), num(self.wires.map(|w| w as u64))),
            (
                "strategy".to_string(),
                self.strategy.map_or(Content::Null, text),
            ),
            (
                "cache".to_string(),
                self.cache
                    .map_or(Content::Null, |hit| text(if hit { "hit" } else { "miss" })),
            ),
            ("expansions".to_string(), num(self.expansions)),
            ("queue_us".to_string(), num(self.queue_us)),
            ("engine_us".to_string(), num(self.engine_us)),
            ("total_us".to_string(), Content::U64(self.total_us)),
        ])
    }
}
