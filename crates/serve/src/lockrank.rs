//! Debug-build lock-order witnesses for the serve-side locks.
//!
//! Every lock in this crate carries a [`Rank`], and a per-thread stack
//! records the ranks currently held. Under `cfg(debug_assertions)` each
//! acquisition checks that its rank is **strictly greater** than the
//! rank on top of the stack — acquiring downward (or re-acquiring the
//! same rank) panics immediately with both lock names, turning a
//! would-be deadlock interleaving into a deterministic test failure on
//! *any* thread schedule that merely nests the locks wrongly, whether
//! or not a second thread was racing.
//!
//! The rank map (low acquires first):
//!
//! | rank | lock                                     |
//! |------|------------------------------------------|
//! | 10   | `HostRegistry::hosts` (registry tables)  |
//! | 15   | `EngineHost::recovery` (rebuild serializer) |
//! | 20   | `EngineHost::engine` (the `RwLock`)      |
//! | 30   | `EngineHost::flight` (single-flight)     |
//!
//! In release builds the wrappers compile to `#[repr(transparent)]`
//! pass-throughs over the `std::sync` primitives: no thread-local, no
//! stack, no branch — the witnesses cost nothing where the paper's
//! throughput numbers are measured.
//!
//! [`RankedCondvar::wait`] releases its mutex for the duration of the
//! wait, so the witness pops the rank before blocking and re-checks the
//! ordering when the lock is re-acquired.

use std::sync::{Condvar, LockResult, Mutex, MutexGuard, RwLock};

#[cfg(debug_assertions)]
use std::sync::PoisonError;

/// A position in the global acquisition order, plus a name for the
/// panic message.
///
/// Release builds discard the rank at lock construction, leaving both
/// fields unread there.
#[derive(Debug, Clone, Copy)]
#[cfg_attr(not(debug_assertions), allow(dead_code))]
pub(crate) struct Rank {
    /// Acquisition order: a thread may only acquire strictly upward.
    pub order: u32,
    /// The lock's name as printed in inversion panics.
    pub name: &'static str,
}

/// `HostRegistry::hosts` — the registry's model tables.
pub(crate) const REGISTRY_RANK: Rank = Rank {
    order: 10,
    name: "registry.hosts",
};

/// `EngineHost::recovery` — serializes poisoned-engine rebuilds and
/// guards the last-good snapshot bytes. Sits between the registry and
/// the engine so a heal may run both from `stats()` (under the registry
/// lock) and from request paths, then acquire the engine lock upward.
pub(crate) const RECOVERY_RANK: Rank = Rank {
    order: 15,
    name: "host.recovery",
};

/// `EngineHost::engine` — the shared engine's readers-writer lock.
pub(crate) const ENGINE_RANK: Rank = Rank {
    order: 20,
    name: "host.engine",
};

/// `EngineHost::flight` — the single-flight bookkeeping mutex (and its
/// condvar).
pub(crate) const FLIGHT_RANK: Rank = Rank {
    order: 30,
    name: "host.flight",
};

#[cfg(debug_assertions)]
mod stack {
    //! The per-thread held-rank stack (debug builds only).

    use super::Rank;
    use std::cell::RefCell;

    thread_local! {
        static HELD: RefCell<Vec<Rank>> = const { RefCell::new(Vec::new()) };
    }

    /// Records an acquisition, panicking on a rank inversion. Called
    /// *before* blocking on the lock so the witness fires even on
    /// schedules where the deadlock would actually bite.
    pub(super) fn push(rank: Rank) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(top) = held.last() {
                if top.order >= rank.order {
                    // lint: allow(panic) the witness's whole job is to panic on inversion
                    panic!(
                        "lock-order inversion: acquiring `{}` (rank {}) while holding \
                         `{}` (rank {}); locks must be acquired in ascending rank",
                        rank.name, rank.order, top.name, top.order
                    );
                }
            }
            held.push(rank);
        });
    }

    /// Records a release. Guards usually drop LIFO, but nothing forces
    /// that, so the *last* held entry of this rank is removed.
    pub(super) fn pop(rank: Rank) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            match held.iter().rposition(|h| h.order == rank.order) {
                Some(at) => {
                    held.remove(at);
                }
                // lint: allow(panic) witness bookkeeping bug — fail loudly in debug builds
                None => panic!(
                    "lock-rank witness: releasing `{}` which is not held",
                    rank.name
                ),
            }
        });
    }
}

// ---------------------------------------------------------------------
// Debug builds: witnessing wrappers.
// ---------------------------------------------------------------------

/// A [`Mutex`] that participates in the acquisition-order witness.
#[cfg(debug_assertions)]
#[derive(Debug)]
pub(crate) struct RankedMutex<T> {
    rank: Rank,
    inner: Mutex<T>,
}

#[cfg(debug_assertions)]
impl<T> RankedMutex<T> {
    pub(crate) fn new(rank: Rank, value: T) -> Self {
        Self {
            rank,
            inner: Mutex::new(value),
        }
    }

    pub(crate) fn lock(&self) -> LockResult<RankedMutexGuard<'_, T>> {
        stack::push(self.rank);
        wrap(self.inner.lock(), |guard| RankedMutexGuard {
            rank: self.rank,
            guard: Some(guard),
        })
    }

    pub(crate) fn is_poisoned(&self) -> bool {
        self.inner.is_poisoned()
    }

    pub(crate) fn clear_poison(&self) {
        self.inner.clear_poison();
    }
}

/// The guard of a [`RankedMutex`]; pops the rank when dropped.
#[cfg(debug_assertions)]
#[derive(Debug)]
pub(crate) struct RankedMutexGuard<'a, T> {
    rank: Rank,
    /// `None` only transiently, inside [`RankedCondvar::wait`], after
    /// the std guard has been handed to the condvar.
    guard: Option<MutexGuard<'a, T>>,
}

#[cfg(debug_assertions)]
impl<T> Drop for RankedMutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.guard.is_some() {
            stack::pop(self.rank);
        }
    }
}

#[cfg(debug_assertions)]
impl<T> std::ops::Deref for RankedMutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard.as_ref().unwrap_or_else(|| {
            // lint: allow(panic) unreachable: the slot is only empty inside Condvar::wait
            unreachable!("ranked guard used after its inner guard was taken")
        })
    }
}

#[cfg(debug_assertions)]
impl<T> std::ops::DerefMut for RankedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().unwrap_or_else(|| {
            // lint: allow(panic) unreachable: the slot is only empty inside Condvar::wait
            unreachable!("ranked guard used after its inner guard was taken")
        })
    }
}

/// A [`RwLock`] that participates in the acquisition-order witness.
/// Both the read and the write side push the same rank: a reader
/// nesting another lock obeys the same global order as a writer.
#[cfg(debug_assertions)]
#[derive(Debug)]
pub(crate) struct RankedRwLock<T> {
    rank: Rank,
    inner: RwLock<T>,
}

#[cfg(debug_assertions)]
impl<T> RankedRwLock<T> {
    pub(crate) fn new(rank: Rank, value: T) -> Self {
        Self {
            rank,
            inner: RwLock::new(value),
        }
    }

    pub(crate) fn read(&self) -> LockResult<RankedReadGuard<'_, T>> {
        stack::push(self.rank);
        wrap(self.inner.read(), |guard| RankedReadGuard {
            rank: self.rank,
            guard,
        })
    }

    pub(crate) fn write(&self) -> LockResult<RankedWriteGuard<'_, T>> {
        stack::push(self.rank);
        wrap(self.inner.write(), |guard| RankedWriteGuard {
            rank: self.rank,
            guard,
        })
    }

    pub(crate) fn is_poisoned(&self) -> bool {
        self.inner.is_poisoned()
    }

    pub(crate) fn clear_poison(&self) {
        self.inner.clear_poison();
    }
}

/// The shared guard of a [`RankedRwLock`].
#[cfg(debug_assertions)]
#[derive(Debug)]
pub(crate) struct RankedReadGuard<'a, T> {
    rank: Rank,
    guard: std::sync::RwLockReadGuard<'a, T>,
}

#[cfg(debug_assertions)]
impl<T> Drop for RankedReadGuard<'_, T> {
    fn drop(&mut self) {
        stack::pop(self.rank);
    }
}

#[cfg(debug_assertions)]
impl<T> std::ops::Deref for RankedReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

/// The exclusive guard of a [`RankedRwLock`].
#[cfg(debug_assertions)]
#[derive(Debug)]
pub(crate) struct RankedWriteGuard<'a, T> {
    rank: Rank,
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

#[cfg(debug_assertions)]
impl<T> Drop for RankedWriteGuard<'_, T> {
    fn drop(&mut self) {
        stack::pop(self.rank);
    }
}

#[cfg(debug_assertions)]
impl<T> std::ops::Deref for RankedWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

#[cfg(debug_assertions)]
impl<T> std::ops::DerefMut for RankedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// A [`Condvar`] paired with [`RankedMutex`]: the wait releases the
/// mutex, so the rank is popped for the duration of the block and the
/// re-acquisition is re-checked against whatever the thread holds then.
#[cfg(debug_assertions)]
#[derive(Debug)]
pub(crate) struct RankedCondvar {
    inner: Condvar,
}

#[cfg(debug_assertions)]
impl RankedCondvar {
    pub(crate) fn new() -> Self {
        Self {
            inner: Condvar::new(),
        }
    }

    // Host code waits with a deadline these days; the untimed variant
    // stays as the reference implementation the tests pin down.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn wait<'a, T>(
        &self,
        mut guard: RankedMutexGuard<'a, T>,
    ) -> LockResult<RankedMutexGuard<'a, T>> {
        let rank = guard.rank;
        let inner = guard.guard.take().unwrap_or_else(|| {
            // lint: allow(panic) unreachable: every live guard owns its inner guard
            unreachable!("ranked guard lost its inner guard before the wait")
        });
        // The mutex is released while blocked: not held, so not ranked.
        stack::pop(rank);
        drop(guard); // empty slot: the Drop impl skips the pop
        let result = self.inner.wait(inner);
        // Re-acquired — re-run the inversion check before resuming.
        stack::push(rank);
        wrap(result, |guard| RankedMutexGuard {
            rank,
            guard: Some(guard),
        })
    }

    /// [`Condvar::wait_timeout`] with the same rank bookkeeping as
    /// [`Self::wait`]: popped while blocked, re-checked on wake.
    pub(crate) fn wait_timeout<'a, T>(
        &self,
        mut guard: RankedMutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> LockResult<(RankedMutexGuard<'a, T>, std::sync::WaitTimeoutResult)> {
        let rank = guard.rank;
        let inner = guard.guard.take().unwrap_or_else(|| {
            // lint: allow(panic) unreachable: every live guard owns its inner guard
            unreachable!("ranked guard lost its inner guard before the wait")
        });
        // The mutex is released while blocked: not held, so not ranked.
        stack::pop(rank);
        drop(guard); // empty slot: the Drop impl skips the pop
        let result = self.inner.wait_timeout(inner, dur);
        // Re-acquired — re-run the inversion check before resuming.
        stack::push(rank);
        match result {
            Ok((guard, timed_out)) => Ok((
                RankedMutexGuard {
                    rank,
                    guard: Some(guard),
                },
                timed_out,
            )),
            Err(poisoned) => {
                let (guard, timed_out) = poisoned.into_inner();
                Err(PoisonError::new((
                    RankedMutexGuard {
                        rank,
                        guard: Some(guard),
                    },
                    timed_out,
                )))
            }
        }
    }

    pub(crate) fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// The guard types host code names in helper signatures: the ranked
/// wrappers in debug builds, the raw `std::sync` guards in release.
#[cfg(debug_assertions)]
pub(crate) type ReadGuard<'a, T> = RankedReadGuard<'a, T>;
/// See [`ReadGuard`].
#[cfg(debug_assertions)]
pub(crate) type WriteGuard<'a, T> = RankedWriteGuard<'a, T>;
/// See [`ReadGuard`].
#[cfg(debug_assertions)]
pub(crate) type LockGuard<'a, T> = RankedMutexGuard<'a, T>;

/// Maps a `LockResult` through a guard constructor, preserving
/// poisoning.
#[cfg(debug_assertions)]
fn wrap<G, R>(result: LockResult<G>, make: impl FnOnce(G) -> R) -> LockResult<R> {
    match result {
        Ok(guard) => Ok(make(guard)),
        Err(poisoned) => Err(PoisonError::new(make(poisoned.into_inner()))),
    }
}

// ---------------------------------------------------------------------
// Release builds: transparent pass-throughs, zero overhead.
// ---------------------------------------------------------------------

/// Release builds: a plain [`Mutex`]; the rank is discarded at
/// construction and every call forwards directly.
#[cfg(not(debug_assertions))]
#[derive(Debug)]
#[repr(transparent)]
pub(crate) struct RankedMutex<T> {
    inner: Mutex<T>,
}

#[cfg(not(debug_assertions))]
impl<T> RankedMutex<T> {
    #[inline]
    pub(crate) fn new(_rank: Rank, value: T) -> Self {
        Self {
            inner: Mutex::new(value),
        }
    }

    #[inline]
    pub(crate) fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        self.inner.lock()
    }

    #[inline]
    pub(crate) fn is_poisoned(&self) -> bool {
        self.inner.is_poisoned()
    }

    #[inline]
    pub(crate) fn clear_poison(&self) {
        self.inner.clear_poison();
    }
}

/// Release builds: a plain [`RwLock`].
#[cfg(not(debug_assertions))]
#[derive(Debug)]
#[repr(transparent)]
pub(crate) struct RankedRwLock<T> {
    inner: RwLock<T>,
}

#[cfg(not(debug_assertions))]
impl<T> RankedRwLock<T> {
    #[inline]
    pub(crate) fn new(_rank: Rank, value: T) -> Self {
        Self {
            inner: RwLock::new(value),
        }
    }

    #[inline]
    pub(crate) fn read(&self) -> LockResult<std::sync::RwLockReadGuard<'_, T>> {
        self.inner.read()
    }

    #[inline]
    pub(crate) fn write(&self) -> LockResult<std::sync::RwLockWriteGuard<'_, T>> {
        self.inner.write()
    }

    #[inline]
    pub(crate) fn is_poisoned(&self) -> bool {
        self.inner.is_poisoned()
    }

    #[inline]
    pub(crate) fn clear_poison(&self) {
        self.inner.clear_poison();
    }
}

/// Release builds: a plain [`Condvar`].
#[cfg(not(debug_assertions))]
#[derive(Debug)]
#[repr(transparent)]
pub(crate) struct RankedCondvar {
    inner: Condvar,
}

#[cfg(not(debug_assertions))]
impl RankedCondvar {
    #[inline]
    pub(crate) fn new() -> Self {
        Self {
            inner: Condvar::new(),
        }
    }

    // See the debug-side note: kept as the reference the tests pin down.
    #[cfg_attr(not(test), allow(dead_code))]
    #[inline]
    pub(crate) fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        self.inner.wait(guard)
    }

    #[inline]
    pub(crate) fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> LockResult<(MutexGuard<'a, T>, std::sync::WaitTimeoutResult)> {
        self.inner.wait_timeout(guard, dur)
    }

    #[inline]
    pub(crate) fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Release builds: the raw `std::sync` guard types (see the debug-side
/// aliases of the same names).
#[cfg(not(debug_assertions))]
pub(crate) type ReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// See [`ReadGuard`].
#[cfg(not(debug_assertions))]
pub(crate) type WriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;
/// See [`ReadGuard`].
#[cfg(not(debug_assertions))]
pub(crate) type LockGuard<'a, T> = MutexGuard<'a, T>;

#[cfg(all(test, debug_assertions))]
mod tests {
    use super::*;

    #[test]
    fn ascending_acquisition_is_silent() {
        let low = RankedMutex::new(REGISTRY_RANK, 1);
        let high = RankedMutex::new(FLIGHT_RANK, 2);
        let a = low.lock().unwrap();
        let b = high.lock().unwrap();
        assert_eq!(*a + *b, 3);
        drop(b);
        drop(a);
        // Released cleanly: the same order is reusable.
        let _a = low.lock().unwrap();
        let _b = high.lock().unwrap();
    }

    #[test]
    #[should_panic(expected = "lock-order inversion")]
    fn descending_acquisition_panics() {
        let low = RankedMutex::new(REGISTRY_RANK, 1);
        let high = RankedRwLock::new(ENGINE_RANK, 2);
        let _b = high.read().unwrap();
        let _a = low.lock().unwrap(); // 10 after 20: inversion
    }

    #[test]
    #[should_panic(expected = "lock-order inversion")]
    fn same_rank_reacquisition_panics() {
        let a = RankedMutex::new(FLIGHT_RANK, 1);
        let b = RankedMutex::new(FLIGHT_RANK, 2);
        let _first = a.lock().unwrap();
        let _second = b.lock().unwrap(); // equal ranks: no defined order
    }

    #[test]
    fn out_of_order_release_is_tolerated() {
        let low = RankedMutex::new(REGISTRY_RANK, 1);
        let high = RankedMutex::new(FLIGHT_RANK, 2);
        let a = low.lock().unwrap();
        let b = high.lock().unwrap();
        drop(a); // released below the top of the stack
        drop(b);
        let _again = low.lock().unwrap();
    }

    #[test]
    fn condvar_wait_timeout_pops_and_repushes_the_rank() {
        use std::time::Duration;

        let lock = RankedMutex::new(FLIGHT_RANK, ());
        let cv = RankedCondvar::new();
        let guard = lock.lock().unwrap();
        let (guard, timed_out) = cv.wait_timeout(guard, Duration::from_millis(5)).unwrap();
        assert!(timed_out.timed_out());
        // The rank survived the timed-out wait: dropping and
        // re-acquiring must still be legal.
        drop(guard);
        let _again = lock.lock().unwrap();
    }

    #[test]
    fn condvar_wait_pops_and_repushes_the_rank() {
        use std::sync::Arc;
        use std::time::Duration;

        let pair = Arc::new((RankedMutex::new(FLIGHT_RANK, false), RankedCondvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (lock, cv) = (&pair.0, &pair.1);
                let mut ready = lock.lock().unwrap();
                while !*ready {
                    ready = cv.wait(ready).unwrap();
                }
                // The rank survived the wait cycle: an ascending
                // acquisition after waking must still be legal...
                drop(ready);
                let _again = lock.lock().unwrap();
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        *pair.0.lock().unwrap() = true;
        pair.1.notify_all();
        waiter.join().unwrap();
    }
}
