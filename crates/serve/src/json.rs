//! The service's JSON request/response schema.
//!
//! Requests implement the vendored `serde` shim's [`Deserialize`] by
//! hand (rather than via derive) so optional fields get defaults and
//! error messages name the offending field; responses implement
//! [`Serialize`] into the shim's `Content` tree and render through
//! `serde_json`. See the README's "Serving & snapshots" section for the
//! wire schema.

use mvq_core::{CostModel, Synthesis};
use serde::{field, Content, Deserialize, Error, Serialize};

use crate::host::{CensusReply, HostStats};

/// A cost-model override: `{"v": 1, "v_dagger": 1, "feynman": 1}`.
#[derive(Debug, Clone, Copy)]
pub struct ModelSpec {
    /// Controlled-V cost.
    pub v: u32,
    /// Controlled-V⁺ cost.
    pub v_dagger: u32,
    /// Feynman (CNOT) cost.
    pub feynman: u32,
}

impl ModelSpec {
    /// The [`CostModel`] this spec names.
    ///
    /// # Errors
    ///
    /// A message naming the zero weight (the search needs positive
    /// 2-qubit costs).
    pub fn to_model(self) -> Result<CostModel, String> {
        if self.v == 0 || self.v_dagger == 0 || self.feynman == 0 {
            return Err("cost-model weights must be positive".to_string());
        }
        Ok(CostModel::weighted(self.v, self.v_dagger, self.feynman))
    }
}

impl<'de> Deserialize<'de> for ModelSpec {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        let entries = content
            .as_map()
            .ok_or_else(|| Error::custom("`model` must be an object"))?;
        Ok(Self {
            v: u32::deserialize(field(entries, "v")?)?,
            v_dagger: u32::deserialize(field(entries, "v_dagger")?)?,
            feynman: u32::deserialize(field(entries, "feynman")?)?,
        })
    }
}

/// An optional field from a serialized map (`None` when absent or JSON
/// `null`).
fn optional<'de, T: Deserialize<'de>>(
    entries: &[(String, Content)],
    key: &str,
) -> Result<Option<T>, Error> {
    match entries.iter().find(|(name, _)| name == key) {
        None => Ok(None),
        Some((_, Content::Null)) => Ok(None),
        Some((_, value)) => T::deserialize(value).map(Some),
    }
}

/// `POST /synthesize` body.
#[derive(Debug, Clone)]
pub struct SynthesizeRequest {
    /// The target reversible function, in cycle notation over the
    /// `2^wires` binary patterns (e.g. `"(5,7,6,8)"`).
    pub target: String,
    /// Cost bound (defaults to the host's admission limit).
    pub cb: Option<u32>,
    /// Cost-model override (defaults to unit costs).
    pub model: Option<ModelSpec>,
    /// Register size (defaults to the paper's 3; 4 routes to a wide
    /// engine host).
    pub wires: Option<usize>,
    /// Serving strategy: `"uni"`, `"bidi"`, or `"auto"` (the default —
    /// the planner serves warm-frontier targets from the cache and
    /// routes deeper ones through the bidirectional path). Validated
    /// against [`crate::ServeStrategy`] by the server.
    pub strategy: Option<String>,
    /// The longest this request may block behind the single-flight
    /// expansion, in milliseconds, before it sheds with a 503 +
    /// `Retry-After`. Capped by the server's configured maximum, which
    /// also serves as the default when the field is absent.
    pub deadline_ms: Option<u64>,
}

impl<'de> Deserialize<'de> for SynthesizeRequest {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        let entries = content
            .as_map()
            .ok_or_else(|| Error::custom("request body must be a JSON object"))?;
        Ok(Self {
            target: String::deserialize(field(entries, "target")?)?,
            cb: optional(entries, "cb")?,
            model: optional(entries, "model")?,
            wires: optional(entries, "wires")?,
            strategy: optional(entries, "strategy")?,
            deadline_ms: optional(entries, "deadline_ms")?,
        })
    }
}

/// `POST /census` body.
#[derive(Debug, Clone)]
pub struct CensusRequest {
    /// Highest cost level to report (defaults to the paper's 6 on 3
    /// wires; 4 on 4 wires, where the frontier grows ~11× per level).
    pub cb: Option<u32>,
    /// Cost-model override (defaults to unit costs).
    pub model: Option<ModelSpec>,
    /// Register size (defaults to the paper's 3; 4 routes to a wide
    /// engine host).
    pub wires: Option<usize>,
}

impl<'de> Deserialize<'de> for CensusRequest {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        let entries = content
            .as_map()
            .ok_or_else(|| Error::custom("request body must be a JSON object"))?;
        Ok(Self {
            cb: optional(entries, "cb")?,
            model: optional(entries, "model")?,
            wires: optional(entries, "wires")?,
        })
    }
}

fn obj(entries: Vec<(&str, Content)>) -> Content {
    Content::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn uints(values: &[usize]) -> Content {
    Content::Seq(values.iter().map(|&v| Content::U64(v as u64)).collect())
}

/// `POST /synthesize` reply.
#[derive(Debug, Clone)]
pub struct SynthesizeReply {
    /// The bound the query ran with.
    pub cb: u32,
    /// The result, if the target is expressible within the bound.
    pub synthesis: Option<Synthesis>,
}

impl Serialize for SynthesizeReply {
    fn serialize(&self) -> Content {
        match &self.synthesis {
            None => obj(vec![
                ("found", Content::Bool(false)),
                ("cb", Content::U64(self.cb.into())),
            ]),
            Some(syn) => obj(vec![
                ("found", Content::Bool(true)),
                ("cb", Content::U64(self.cb.into())),
                ("cost", Content::U64(syn.cost.into())),
                ("circuit", Content::Str(syn.circuit.to_string())),
                (
                    "not_layer",
                    Content::Seq(
                        syn.not_layer
                            .iter()
                            .map(|g| Content::Str(g.to_string()))
                            .collect(),
                    ),
                ),
                (
                    "implementation_count",
                    Content::U64(syn.implementation_count as u64),
                ),
            ]),
        }
    }
}

impl Serialize for CensusReply {
    fn serialize(&self) -> Content {
        obj(vec![
            ("cb", Content::U64(self.cb.into())),
            ("g_counts", uints(&self.g_counts)),
            ("b_counts", uints(&self.b_counts)),
            ("classes_found", Content::U64(self.classes_found as u64)),
            ("a_size", Content::U64(self.a_size as u64)),
        ])
    }
}

impl Serialize for HostStats {
    fn serialize(&self) -> Content {
        obj(vec![
            (
                "model",
                obj(vec![
                    ("v", Content::U64(self.model.0.into())),
                    ("v_dagger", Content::U64(self.model.1.into())),
                    ("feynman", Content::U64(self.model.2.into())),
                ]),
            ),
            ("wires", Content::U64(self.wires as u64)),
            (
                "synthesize_requests",
                Content::U64(self.synthesize_requests),
            ),
            ("census_requests", Content::U64(self.census_requests)),
            ("cache_hits", Content::U64(self.cache_hits)),
            ("cache_misses", Content::U64(self.cache_misses)),
            ("expansions", Content::U64(self.expansions)),
            (
                "single_flight_waits",
                Content::U64(self.single_flight_waits),
            ),
            ("rejected", Content::U64(self.rejected)),
            ("rebuilds", Content::U64(self.rebuilds)),
            ("deadline_timeouts", Content::U64(self.deadline_timeouts)),
            (
                "completed",
                self.completed
                    .map_or(Content::Null, |c| Content::U64(c.into())),
            ),
            ("classes_found", Content::U64(self.classes_found as u64)),
            ("a_size", Content::U64(self.a_size as u64)),
            ("threads", Content::U64(self.threads as u64)),
        ])
    }
}

/// Renders any [`Serialize`] value to a JSON string (infallible for the
/// integer/string trees this module builds).
///
/// If serialization ever does fail (it cannot for the trees this module
/// builds — no non-finite floats), the reply degrades to a hand-built
/// error object rather than panicking the worker thread.
pub fn render<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value)
        .unwrap_or_else(|_| r#"{"error":"internal: reply serialization failed"}"#.to_string())
}

struct ErrorReply<'a>(&'a str);

impl Serialize for ErrorReply<'_> {
    fn serialize(&self) -> Content {
        obj(vec![("error", Content::Str(self.0.to_string()))])
    }
}

/// `{"error": detail}`.
pub fn error_body(detail: &str) -> String {
    render(&ErrorReply(detail))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesize_request_parses_with_defaults() {
        let req: SynthesizeRequest = serde_json::from_str(r#"{"target": "(5,7,6,8)"}"#).unwrap();
        assert_eq!(req.target, "(5,7,6,8)");
        assert!(req.cb.is_none());
        assert!(req.model.is_none());
        assert!(req.wires.is_none());
        assert!(req.strategy.is_none());
        assert!(req.deadline_ms.is_none());
    }

    #[test]
    fn synthesize_request_parses_the_deadline_field() {
        let req: SynthesizeRequest =
            serde_json::from_str(r#"{"target": "(7,8)", "deadline_ms": 250}"#).unwrap();
        assert_eq!(req.deadline_ms, Some(250));
        // JSON null means "use the server default", like an absent field.
        let req: SynthesizeRequest =
            serde_json::from_str(r#"{"target": "(7,8)", "deadline_ms": null}"#).unwrap();
        assert!(req.deadline_ms.is_none());
    }

    #[test]
    fn synthesize_request_parses_the_strategy_field() {
        let req: SynthesizeRequest =
            serde_json::from_str(r#"{"target": "(7,8)", "strategy": "bidi"}"#).unwrap();
        assert_eq!(req.strategy.as_deref(), Some("bidi"));
        // JSON null means "use the default", like an absent field.
        let req: SynthesizeRequest =
            serde_json::from_str(r#"{"target": "(7,8)", "strategy": null}"#).unwrap();
        assert!(req.strategy.is_none());
    }

    #[test]
    fn requests_parse_the_wires_field() {
        let req: SynthesizeRequest =
            serde_json::from_str(r#"{"target": "(15,16)", "wires": 4}"#).unwrap();
        assert_eq!(req.wires, Some(4));
        let req: CensusRequest = serde_json::from_str(r#"{"cb": 2, "wires": 4}"#).unwrap();
        assert_eq!(req.wires, Some(4));
    }

    #[test]
    fn synthesize_request_parses_full_form() {
        let req: SynthesizeRequest = serde_json::from_str(
            r#"{"target": "(7,8)", "cb": 6, "model": {"v": 2, "v_dagger": 2, "feynman": 1}}"#,
        )
        .unwrap();
        assert_eq!(req.cb, Some(6));
        let model = req.model.unwrap().to_model().unwrap();
        assert_eq!(model.weights(), (2, 2, 1));
    }

    #[test]
    fn malformed_requests_name_the_problem() {
        let err = serde_json::from_str::<SynthesizeRequest>(r#"{"cb": 3}"#).unwrap_err();
        assert!(err.to_string().contains("target"), "{err}");
        let err = serde_json::from_str::<SynthesizeRequest>("[1,2]").unwrap_err();
        assert!(err.to_string().contains("object"), "{err}");
        let err =
            serde_json::from_str::<SynthesizeRequest>(r#"{"target": "(7,8)", "model": {"v": 1}}"#)
                .unwrap_err();
        assert!(err.to_string().contains("v_dagger"), "{err}");
    }

    #[test]
    fn zero_weight_model_is_rejected() {
        let spec = ModelSpec {
            v: 0,
            v_dagger: 1,
            feynman: 1,
        };
        assert!(spec.to_model().is_err());
    }

    #[test]
    fn census_reply_renders_counts() {
        let reply = CensusReply {
            cb: 2,
            g_counts: vec![1, 6, 24],
            b_counts: vec![1, 18, 162],
            classes_found: 31,
            a_size: 181,
        };
        let json = render(&reply);
        assert!(json.contains("\"g_counts\":[1,6,24]"), "{json}");
        assert!(json.contains("\"classes_found\":31"), "{json}");
    }

    #[test]
    fn not_found_reply_has_no_cost() {
        let json = render(&SynthesizeReply {
            cb: 4,
            synthesis: None,
        });
        assert_eq!(json, r#"{"found":false,"cb":4}"#);
    }
}
