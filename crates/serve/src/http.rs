//! A minimal HTTP/1.1 implementation over `std::io` — just enough for
//! the service's JSON endpoints (the build environment is offline, so
//! the transport is hand-rolled on the standard library, matching the
//! `shims/` policy).
//!
//! Supported: request-line + header parsing with size limits,
//! `Content-Length` bodies, sequential keep-alive, and canned JSON
//! responses. Not supported (and not needed): chunked encoding,
//! pipelining, TLS.

use std::io::{self, BufRead, Read, Write};

/// Longest accepted request line or header line, in bytes.
const MAX_LINE: u64 = 8 * 1024;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 64;
/// Largest accepted request body, in bytes.
const MAX_BODY: usize = 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The method, uppercased by the client (`GET`, `POST`, …).
    pub method: String,
    /// The request target, e.g. `/synthesize`.
    pub path: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of header `name` (lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default unless the client sends `Connection: close`).
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

fn bad_request(detail: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail.into())
}

/// An oversized declared body — mapped to `413 Payload Too Large` by the
/// transport (distinct from the 400s `InvalidData` produces).
fn payload_too_large(detail: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::FileTooLarge, detail.into())
}

/// Strictly validates a `Content-Length` value **before any body
/// allocation or read**: ASCII digits only (no sign, no whitespace, no
/// empty value — `usize::parse` would accept a leading `+`), and within
/// [`MAX_BODY`].
///
/// # Errors
///
/// `InvalidData` (→ 400) for malformed values, `FileTooLarge` (→ 413)
/// for well-formed lengths over the cap.
fn parse_content_length(value: &str) -> io::Result<usize> {
    if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
        return Err(bad_request(format!("bad content-length `{value}`")));
    }
    match value.parse::<usize>() {
        Ok(n) if n <= MAX_BODY => Ok(n),
        // Over the cap or too many digits to represent: either way the
        // declared body is oversized.
        _ => Err(payload_too_large(format!(
            "declared body `{value}` exceeds {MAX_BODY} bytes"
        ))),
    }
}

/// Reads one `\n`-terminated line with a hard length cap, stripping the
/// line ending. `Ok(None)` means clean EOF before any byte.
fn read_line(reader: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut line = Vec::new();
    let taken = reader.take(MAX_LINE).read_until(b'\n', &mut line)?;
    if taken == 0 {
        return Ok(None);
    }
    if line.last() != Some(&b'\n') {
        return Err(bad_request(format!("line exceeds {MAX_LINE} bytes")));
    }
    while matches!(line.last(), Some(b'\n' | b'\r')) {
        line.pop();
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| bad_request("line is not UTF-8"))
}

/// Reads and parses one request. `Ok(None)` means the client closed the
/// connection cleanly between requests.
///
/// # Errors
///
/// `InvalidData` on malformed framing (oversized lines, bad
/// `Content-Length`, too many headers) and any underlying I/O error.
pub fn read_request(reader: &mut impl BufRead) -> io::Result<Option<Request>> {
    let Some(request_line) = read_line(reader)? else {
        return Ok(None);
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(bad_request(format!(
            "malformed request line `{request_line}`"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad_request(format!("unsupported protocol `{version}`")));
    }
    let mut headers = Vec::new();
    loop {
        let line =
            read_line(reader)?.ok_or_else(|| bad_request("connection closed mid-headers"))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(bad_request(format!("more than {MAX_HEADERS} headers")));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad_request(format!("malformed header `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    // Chunked (or any) transfer coding is unsupported; silently
    // treating such a request as body-less would leave the chunked
    // body on the keep-alive socket to be parsed as the next request —
    // the classic desync/smuggling vector. RFC 9112 §6.1: reject.
    if headers.iter().any(|(n, _)| n == "transfer-encoding") {
        return Err(bad_request("transfer-encoding is not supported"));
    }
    let mut lengths = headers.iter().filter(|(n, _)| n == "content-length");
    let content_length = match (lengths.next(), lengths.next()) {
        (None, _) => 0,
        (Some((_, v)), None) => parse_content_length(v)?,
        // Duplicate Content-Length headers are a smuggling vector;
        // reject rather than pick one.
        (Some(_), Some(_)) => return Err(bad_request("multiple content-length headers")),
    };
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body,
    }))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a JSON response with the standard framing headers (one
/// `write_all` call, so small responses leave in a single TCP segment).
///
/// # Errors
///
/// Any underlying I/O error.
pub fn write_response(
    writer: &mut impl Write,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    write_response_with(writer, status, body, keep_alive, &[])
}

/// [`write_response`] with extra headers (e.g. `Retry-After` on a 503),
/// still framed into a single `write_all`.
///
/// # Errors
///
/// Any underlying I/O error.
pub fn write_response_with(
    writer: &mut impl Write,
    status: u16,
    body: &str,
    keep_alive: bool,
    extra_headers: &[(&str, &str)],
) -> io::Result<()> {
    write_response_typed(
        writer,
        status,
        "application/json",
        body,
        keep_alive,
        extra_headers,
    )
}

/// [`write_response_with`] with an explicit `Content-Type` (the
/// `/metrics` endpoint answers in Prometheus text format, everything
/// else is JSON), still framed into a single `write_all`.
///
/// # Errors
///
/// Any underlying I/O error.
pub fn write_response_typed(
    writer: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
    extra_headers: &[(&str, &str)],
) -> io::Result<()> {
    let mut extra = String::new();
    for (name, value) in extra_headers {
        extra.push_str(name);
        extra.push_str(": ");
        extra.push_str(value);
        extra.push_str("\r\n");
    }
    let response = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n{extra}\r\n{body}",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    writer.write_all(response.as_bytes())?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(text: &str) -> io::Result<Option<Request>> {
        read_request(&mut BufReader::new(text.as_bytes()))
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert!(req.keep_alive());
    }

    #[test]
    fn parses_post_with_body_and_close() {
        let req = parse(
            "POST /synthesize HTTP/1.1\r\nContent-Length: 4\r\nConnection: close\r\n\r\n{\"\"}",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.body, b"{\"\"}");
        assert!(!req.keep_alive());
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(parse("nonsense\r\n\r\n").is_err());
        assert!(parse("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n").is_err());
        assert!(parse("GET / HTTP/1.1\r\nContent-Length: potato\r\n\r\n").is_err());
        assert!(parse("GET / SPDY/99\r\n\r\n").is_err());
        // Truncated body.
        assert!(parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").is_err());
    }

    #[test]
    fn content_length_is_validated_strictly() {
        // `usize::parse` would accept the signed forms; the parser must
        // not (surrounding whitespace is already stripped as header OWS).
        for bad in ["+4", "-4", "0x10", "4.0", "4,4", ""] {
            let err = parse(&format!(
                "POST / HTTP/1.1\r\nContent-Length: {bad}\r\n\r\n{{}}{{}}"
            ))
            .unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "`{bad}`: {err}");
        }
        // Plain digits still work.
        let req = parse("POST / HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"{}");
        // Leading zeros are digits — tolerated.
        let req = parse("POST / HTTP/1.1\r\nContent-Length: 02\r\n\r\n{}")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"{}");
    }

    #[test]
    fn oversized_content_length_is_rejected_before_any_read() {
        // Over the cap, a usize-overflowing digit string, and an
        // absurdly long digit string: all fail with the 413 kind before
        // the parser attempts a body allocation or read (there is no
        // body here to read).
        for huge in [
            (MAX_BODY + 1).to_string(),
            u128::MAX.to_string(),
            "9".repeat(100),
        ] {
            let err = parse(&format!(
                "POST / HTTP/1.1\r\nContent-Length: {huge}\r\n\r\n"
            ))
            .unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::FileTooLarge, "`{huge}`: {err}");
        }
        // Exactly at the cap the framing is accepted (the body itself is
        // then read — truncated here, so an UnexpectedEof I/O error).
        let err = parse(&format!(
            "POST / HTTP/1.1\r\nContent-Length: {MAX_BODY}\r\n\r\n"
        ))
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn transfer_encoding_is_rejected() {
        // A chunked body must not be left on the socket to desync the
        // next keep-alive request.
        let err =
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n")
                .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("transfer-encoding"), "{err}");
    }

    #[test]
    fn duplicate_content_length_is_rejected() {
        let err = parse("POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\n{}")
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("multiple"), "{err}");
    }

    #[test]
    fn two_requests_on_one_connection() {
        let text = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(text.as_bytes());
        assert_eq!(read_request(&mut reader).unwrap().unwrap().path, "/a");
        assert_eq!(read_request(&mut reader).unwrap().unwrap().path, "/b");
        assert!(read_request(&mut reader).unwrap().is_none());
    }

    #[test]
    fn response_framing_is_parseable() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn extra_headers_land_before_the_blank_line() {
        let mut out = Vec::new();
        write_response_with(&mut out, 503, "{}", false, &[("Retry-After", "1")]).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
        // The header block still terminates with exactly one blank line.
        assert_eq!(text.matches("\r\n\r\n").count(), 1, "{text}");
    }
}
