//! A minimal HTTP/1.1 implementation over `std::io` — just enough for
//! the service's JSON endpoints (the build environment is offline, so
//! the transport is hand-rolled on the standard library, matching the
//! `shims/` policy).
//!
//! Supported: request-line + header parsing with size limits,
//! `Content-Length` bodies, sequential keep-alive, and canned JSON
//! responses. Not supported (and not needed): chunked encoding,
//! pipelining, TLS.

use std::io::{self, BufRead, Read, Write};

/// Longest accepted request line or header line, in bytes.
const MAX_LINE: u64 = 8 * 1024;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 64;
/// Largest accepted request body, in bytes.
const MAX_BODY: usize = 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The method, uppercased by the client (`GET`, `POST`, …).
    pub method: String,
    /// The request target, e.g. `/synthesize`.
    pub path: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of header `name` (lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default unless the client sends `Connection: close`).
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

fn bad_request(detail: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail.into())
}

/// Reads one `\n`-terminated line with a hard length cap, stripping the
/// line ending. `Ok(None)` means clean EOF before any byte.
fn read_line(reader: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut line = Vec::new();
    let taken = reader.take(MAX_LINE).read_until(b'\n', &mut line)?;
    if taken == 0 {
        return Ok(None);
    }
    if line.last() != Some(&b'\n') {
        return Err(bad_request(format!("line exceeds {MAX_LINE} bytes")));
    }
    while matches!(line.last(), Some(b'\n' | b'\r')) {
        line.pop();
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| bad_request("line is not UTF-8"))
}

/// Reads and parses one request. `Ok(None)` means the client closed the
/// connection cleanly between requests.
///
/// # Errors
///
/// `InvalidData` on malformed framing (oversized lines, bad
/// `Content-Length`, too many headers) and any underlying I/O error.
pub fn read_request(reader: &mut impl BufRead) -> io::Result<Option<Request>> {
    let Some(request_line) = read_line(reader)? else {
        return Ok(None);
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(bad_request(format!(
            "malformed request line `{request_line}`"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad_request(format!("unsupported protocol `{version}`")));
    }
    let mut headers = Vec::new();
    loop {
        let line =
            read_line(reader)?.ok_or_else(|| bad_request("connection closed mid-headers"))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(bad_request(format!("more than {MAX_HEADERS} headers")));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad_request(format!("malformed header `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| bad_request(format!("bad content-length `{v}`")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(bad_request(format!("body exceeds {MAX_BODY} bytes")));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body,
    }))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a JSON response with the standard framing headers (one
/// `write_all` call, so small responses leave in a single TCP segment).
///
/// # Errors
///
/// Any underlying I/O error.
pub fn write_response(
    writer: &mut impl Write,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let response = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{body}",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    writer.write_all(response.as_bytes())?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(text: &str) -> io::Result<Option<Request>> {
        read_request(&mut BufReader::new(text.as_bytes()))
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert!(req.keep_alive());
    }

    #[test]
    fn parses_post_with_body_and_close() {
        let req = parse(
            "POST /synthesize HTTP/1.1\r\nContent-Length: 4\r\nConnection: close\r\n\r\n{\"\"}",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.body, b"{\"\"}");
        assert!(!req.keep_alive());
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(parse("nonsense\r\n\r\n").is_err());
        assert!(parse("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n").is_err());
        assert!(parse("GET / HTTP/1.1\r\nContent-Length: potato\r\n\r\n").is_err());
        assert!(parse("GET / SPDY/99\r\n\r\n").is_err());
        // Truncated body.
        assert!(parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").is_err());
    }

    #[test]
    fn two_requests_on_one_connection() {
        let text = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(text.as_bytes());
        assert_eq!(read_request(&mut reader).unwrap().unwrap().path, "/a");
        assert_eq!(read_request(&mut reader).unwrap().unwrap().path, "/b");
        assert!(read_request(&mut reader).unwrap().is_none());
    }

    #[test]
    fn response_framing_is_parseable() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }
}
