//! The transport layer: a threaded TCP accept loop routing the JSON
//! endpoints onto a [`HostRegistry`].
//!
//! ```text
//! /synthesize ── POST ─┐
//! /census ────── POST ─┤                  ┌─ EngineHost (unit costs)
//! /healthz ───── GET ──┼─► HostRegistry ──┼─ EngineHost (weighted …)
//! /stats ─────── GET ──┤                  └─ …
//! /metrics ───── GET ──┤
//! /debug/slow ── GET ──┤
//! /shutdown ──── POST ─┘
//! ```
//!
//! Connections are handed to a fixed worker pool over a channel;
//! each worker speaks sequential keep-alive HTTP/1.1. Shutdown (via
//! [`ServerHandle::shutdown`] or `POST /shutdown`) flips a flag and
//! nudges the blocking accept loop awake with a loopback connection, so
//! in-flight responses complete and the listener closes cleanly.
//!
//! Every request — including parse failures, panicked handlers, and
//! connections shed at the accept loop — finishes through
//! [`ServeObs::finish_request`], so it lands in the latency histograms
//! and emits exactly one structured trace line. Request ids are
//! deterministic ([`TraceId`]: worker index, connection serial, request
//! serial), never random, so replayed loads produce identical ids.

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use mvq_core::{CostModel, SearchWidth};
use mvq_obs::TraceId;

use crate::host::{EngineHost, HostError, HostRegistry, ServeStrategy};
use crate::http::{read_request, write_response, write_response_typed, Request};
use crate::json::{error_body, render, CensusRequest, SynthesizeReply, SynthesizeRequest};
use crate::obs::{ServeObs, TraceFields};

/// Per-connection read timeout: a stalled client cannot pin a worker.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Accept-queue depth per worker: connections beyond
/// `workers × QUEUE_DEPTH_PER_WORKER` are shed with an immediate 503 +
/// `Retry-After` instead of queueing unboundedly behind a slow flight.
const QUEUE_DEPTH_PER_WORKER: usize = 64;

/// Default cost bound for 4-wire requests that omit `cb` (both
/// endpoints): the wide frontier grows ~11× per unit-cost level, so the
/// 3-wire-calibrated admission limit is not a safe implicit default.
const WIDE_DEFAULT_CB: u32 = 4;

/// The `Content-Type` Prometheus scrapers expect from `/metrics`.
const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Recovers the guard of the worker-queue mutex. That mutex only guards
/// `Receiver::recv` and no code path can panic while holding it, so
/// poisoning is unreachable; centralising the recovery keeps the panic
/// to a single annotated site instead of scattering `expect` calls.
fn lock_intact<T>(lock: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // lint: allow(panic) queue mutex cannot be poisoned: recv() does not panic
    lock.lock().expect("worker queue intact")
}

/// Saturating microseconds (a request cannot plausibly span `u64::MAX`
/// µs, but the conversion from `u128` must not panic in serve code).
fn us(elapsed: Duration) -> u64 {
    u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX)
}

/// A bound, not-yet-running service.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    registry: Arc<HostRegistry>,
    shutdown: Arc<AtomicBool>,
    started: Instant,
    obs: Arc<ServeObs>,
}

/// A remote control for a running [`Server`] (cloneable across
/// threads).
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful shutdown: the accept loop stops taking
    /// connections, in-flight requests finish, workers drain and join.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Nudge the blocking accept awake.
        let _ = TcpStream::connect(wake_addr(self.addr));
    }
}

/// An address a local client can actually connect to in order to wake
/// the accept loop: wildcard binds (`0.0.0.0` / `::`) are not routable
/// as destinations everywhere, so substitute the matching loopback.
fn wake_addr(mut addr: SocketAddr) -> SocketAddr {
    if addr.ip().is_unspecified() {
        addr.set_ip(match addr {
            SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
            SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
        });
    }
    addr
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7878`; port 0 picks a free port)
    /// over `registry`. This also installs the server's search probe on
    /// the registry, so engines created before *and* after the bind
    /// report their per-level timings into the server's metrics.
    ///
    /// # Errors
    ///
    /// Any socket-level bind failure.
    pub fn bind(addr: impl ToSocketAddrs, registry: Arc<HostRegistry>) -> io::Result<Self> {
        let obs = ServeObs::new();
        obs.register_host_counters(&registry);
        registry.set_probe(obs.probe());
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            registry,
            shutdown: Arc::new(AtomicBool::new(false)),
            started: Instant::now(),
            obs,
        })
    }

    /// The server's observability state: the metrics registry behind
    /// `GET /metrics`, the trace log, and the slow-request ring. Clone
    /// the `Arc` before [`Server::run`] to read metrics or install a
    /// trace sink from outside.
    pub fn obs(&self) -> Arc<ServeObs> {
        Arc::clone(&self.obs)
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Any socket-level failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A shutdown handle for this server.
    ///
    /// # Errors
    ///
    /// Any socket-level failure resolving the local address.
    pub fn handle(&self) -> io::Result<ServerHandle> {
        Ok(ServerHandle {
            addr: self.listener.local_addr()?,
            shutdown: Arc::clone(&self.shutdown),
        })
    }

    /// Serves until shutdown, dispatching connections to `workers`
    /// handler threads. Blocks the calling thread.
    ///
    /// # Errors
    ///
    /// Only fatal listener errors; per-connection failures are dropped.
    pub fn run(self, workers: usize) -> io::Result<()> {
        let workers = workers.max(1);
        let ctx = Arc::new(Ctx {
            registry: self.registry,
            obs: self.obs,
            shutdown: Arc::clone(&self.shutdown),
            started: self.started,
            addr: self.listener.local_addr()?,
        });
        let (sender, receiver) = mpsc::sync_channel::<Conn>(workers * QUEUE_DEPTH_PER_WORKER);
        let receiver = Arc::new(Mutex::new(receiver));
        std::thread::scope(|scope| {
            // Worker ids start at 1; id 0 is the acceptor (its trace
            // lines are the overload sheds).
            for worker in 1..=workers {
                let worker = u32::try_from(worker).unwrap_or(u32::MAX);
                let receiver = Arc::clone(&receiver);
                let ctx = Arc::clone(&ctx);
                scope.spawn(move || loop {
                    let Ok(conn) = lock_intact(&receiver).recv() else {
                        return; // sender dropped: shutdown
                    };
                    // A handler that panics through the transport layer
                    // must not take the worker thread (and its queue
                    // slot) down with it; the poisoned host heals on the
                    // next request it sees.
                    let _ =
                        catch_unwind(AssertUnwindSafe(|| handle_connection(conn, worker, &ctx)));
                });
            }
            let mut next_conn = 0u64;
            for stream in self.listener.incoming() {
                if self.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(stream) => {
                        next_conn += 1;
                        let conn = Conn {
                            stream,
                            id: next_conn,
                            enqueued: Instant::now(),
                        };
                        match sender.try_send(conn) {
                            Ok(()) => {}
                            Err(mpsc::TrySendError::Full(conn)) => shed_overload(conn, &ctx),
                            Err(mpsc::TrySendError::Disconnected(_)) => break,
                        }
                    }
                    Err(err) if err.kind() == io::ErrorKind::ConnectionAborted => {}
                    Err(_) => {}
                }
            }
            drop(sender); // workers drain the queue and exit
        });
        Ok(())
    }
}

/// An accepted connection in flight to a worker, stamped for queue-wait
/// attribution and trace-id assignment.
struct Conn {
    stream: TcpStream,
    /// Connection serial from the accept loop (the `c` in `w3-c12-r1`).
    id: u64,
    /// When the acceptor queued it (queue wait = dequeue − enqueue).
    enqueued: Instant,
}

struct Ctx {
    registry: Arc<HostRegistry>,
    obs: Arc<ServeObs>,
    shutdown: Arc<AtomicBool>,
    started: Instant,
    addr: SocketAddr,
}

/// Per-request facts the handlers report up to the transport layer for
/// the trace line. `None` renders as JSON `null`.
#[derive(Default)]
struct RequestMeta {
    target: Option<String>,
    wires: Option<usize>,
    strategy: Option<&'static str>,
    cache: Option<bool>,
    expansions: Option<u64>,
    engine_us: Option<u64>,
    /// Overrides the status-derived outcome (e.g. a 503 can be a
    /// deadline `timeout` or a panic `error`).
    outcome: Option<&'static str>,
}

/// The outcome class a status code implies when no handler said
/// otherwise.
fn outcome_for(status: u16) -> &'static str {
    match status {
        200..=299 => "ok",
        500 => "error",
        503 => "shed",
        _ => "invalid",
    }
}

/// Sheds a connection the worker queue has no room for: an immediate
/// best-effort 503 + `Retry-After` on the accept thread, without ever
/// reading the request (a slow client must not stall accepts).
fn shed_overload(conn: Conn, ctx: &Ctx) {
    ctx.obs.sheds_total.inc();
    let mut stream = conn.stream;
    let _ = stream.set_nodelay(true);
    let _ = write_response_typed(
        &mut stream,
        503,
        "application/json",
        &error_body("server overloaded: accept queue full; retry shortly"),
        false,
        &[("Retry-After", "1")],
    );
    let elapsed = us(conn.enqueued.elapsed());
    ctx.obs.finish_request(&TraceFields {
        id: TraceId {
            worker: 0,
            conn: conn.id,
            req: 0,
        },
        method: "-",
        path: "-",
        status: 503,
        outcome: "shed",
        target: None,
        wires: None,
        strategy: None,
        cache: None,
        expansions: None,
        queue_us: Some(elapsed),
        engine_us: None,
        total_us: elapsed,
    });
}

fn handle_connection(conn: Conn, worker: u32, ctx: &Ctx) -> io::Result<()> {
    let Conn {
        stream,
        id: conn_id,
        enqueued,
    } = conn;
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    // Responses are single-write and request/response strictly alternate;
    // Nagle + delayed ACK would add ~40 ms per round-trip for nothing.
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    // Only the connection's first request carries the accept-queue wait;
    // later keep-alive requests never sat in that queue.
    let mut queue_us = Some(us(enqueued.elapsed()));
    let mut serial = 0u64;
    loop {
        serial += 1;
        let id = TraceId {
            worker,
            conn: conn_id,
            req: serial,
        };
        let request = match read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return Ok(()), // client closed cleanly
            Err(err) if err.kind() == io::ErrorKind::InvalidData => {
                let result = write_response(&mut writer, 400, &error_body(&err.to_string()), false);
                finish_unparsed(ctx, id, 400, queue_us.take());
                result?;
                return Ok(());
            }
            Err(err) if err.kind() == io::ErrorKind::FileTooLarge => {
                let result = write_response(&mut writer, 413, &error_body(&err.to_string()), false);
                finish_unparsed(ctx, id, 413, queue_us.take());
                result?;
                return Ok(());
            }
            Err(err) => return Err(err),
        };
        let started = Instant::now();
        let keep_alive = request.keep_alive() && !ctx.shutdown.load(Ordering::SeqCst);
        let mut meta = RequestMeta::default();
        // Contain handler panics (e.g. an engine panicking mid-expansion)
        // to this request: the client still gets a response, the
        // connection and worker survive, and the poisoned host rebuilds
        // itself when the next request touches it.
        let routed = catch_unwind(AssertUnwindSafe(|| route(&request, ctx, &mut meta)));
        let (status, body, shutdown_after) = routed.unwrap_or_else(|_| {
            meta.outcome = Some("error");
            (
                503,
                error_body("request handler panicked; the host is rebuilding, retry shortly"),
                false,
            )
        });
        let retry: &[(&str, &str)] = if status == 503 {
            &[("Retry-After", "1")]
        } else {
            &[]
        };
        let content_type = if status == 200 && request.path == "/metrics" {
            PROMETHEUS_CONTENT_TYPE
        } else {
            "application/json"
        };
        let write_result = write_response_typed(
            &mut writer,
            status,
            content_type,
            &body,
            keep_alive && !shutdown_after,
            retry,
        );
        ctx.obs.finish_request(&TraceFields {
            id,
            method: &request.method,
            path: &request.path,
            status,
            outcome: meta.outcome.unwrap_or_else(|| outcome_for(status)),
            target: meta.target.as_deref(),
            wires: meta.wires,
            strategy: meta.strategy,
            cache: meta.cache,
            expansions: meta.expansions,
            queue_us: queue_us.take(),
            engine_us: meta.engine_us,
            total_us: us(started.elapsed()),
        });
        write_result?;
        if shutdown_after {
            ctx.shutdown.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(wake_addr(ctx.addr)); // wake the accept loop
            return Ok(());
        }
        if !keep_alive {
            return Ok(());
        }
    }
}

/// Traces a request that never parsed (bad framing / oversized body):
/// method and path are unknown, so the line carries `-` placeholders.
fn finish_unparsed(ctx: &Ctx, id: TraceId, status: u16, queue_us: Option<u64>) {
    ctx.obs.finish_request(&TraceFields {
        id,
        method: "-",
        path: "-",
        status,
        outcome: "invalid",
        target: None,
        wires: None,
        strategy: None,
        cache: None,
        expansions: None,
        queue_us,
        engine_us: None,
        total_us: 0,
    });
}

/// Dispatches one request. Returns `(status, body, shutdown_after)`.
fn route(request: &Request, ctx: &Ctx, meta: &mut RequestMeta) -> (u16, String, bool) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => (
            200,
            format!(
                r#"{{"status":"ok","uptime_ms":{}}}"#,
                ctx.started.elapsed().as_millis()
            ),
            false,
        ),
        ("GET", "/metrics") => (200, ctx.obs.registry().render_prometheus(), false),
        ("GET", "/debug/slow") => {
            let lines: Vec<String> = ctx
                .obs
                .slow()
                .snapshot()
                .into_iter()
                .map(|entry| entry.line)
                .collect();
            (
                200,
                format!(r#"{{"slowest":[{}]}}"#, lines.join(",")),
                false,
            )
        }
        ("GET", "/stats") => match ctx.registry.stats() {
            Ok(all) => {
                let hosts: Vec<String> = all.iter().map(render).collect();
                (
                    200,
                    format!(
                        r#"{{"uptime_ms":{},"models":{},"sheds":{},"hosts":[{}],"metrics":{}}}"#,
                        ctx.started.elapsed().as_millis(),
                        hosts.len(),
                        ctx.obs.sheds_total.get(),
                        hosts.join(","),
                        ctx.obs.render_stats_json(),
                    ),
                    false,
                )
            }
            Err(err) => host_error(&err, meta),
        },
        ("POST", "/synthesize") => synthesize(request, ctx, meta),
        ("POST", "/census") => census(request, ctx, meta),
        ("POST", "/shutdown") => (200, r#"{"status":"shutting down"}"#.to_string(), true),
        ("GET" | "POST", _) => (404, error_body("no such endpoint"), false),
        _ => (405, error_body("method not allowed"), false),
    }
}

fn host_error(err: &HostError, meta: &mut RequestMeta) -> (u16, String, bool) {
    let (status, outcome) = match err {
        HostError::CostBoundExceeded { .. } => (400, "invalid"),
        HostError::TooManyModels { .. } => (429, "invalid"),
        HostError::Poisoned | HostError::Engine(_) => (500, "error"),
        // A deadline shed is load, not failure: 503 so clients retry.
        HostError::DeadlineExceeded { .. } => (503, "timeout"),
    };
    meta.outcome = Some(outcome);
    (status, error_body(&err.to_string()), false)
}

fn resolve_model(spec: Option<crate::json::ModelSpec>) -> Result<CostModel, String> {
    spec.map_or(Ok(CostModel::unit()), crate::json::ModelSpec::to_model)
}

/// Validates the request's wire count; `Err` is the ready 400 reply.
fn validate_wires(wires: Option<usize>) -> Result<usize, (u16, String, bool)> {
    let wires = wires.unwrap_or(3);
    if (3..=4).contains(&wires) {
        Ok(wires)
    } else {
        Err((
            400,
            error_body(&format!(
                "unsupported wires {wires} (the service hosts 3 or 4)"
            )),
            false,
        ))
    }
}

/// Runs the synthesize body against a host of either width (the
/// target is parsed by the caller, before any host is created). A
/// request without an explicit `cb` gets `default_cb` capped to the
/// host's admission limit — an implicit bound must never be rejected
/// by admission.
fn synthesize_on<W: SearchWidth>(
    host: Result<Arc<EngineHost<W>>, HostError>,
    target: &mvq_perm::Perm,
    cb: Option<u32>,
    default_cb: u32,
    strategy: ServeStrategy,
    deadline_ms: Option<u64>,
    meta: &mut RequestMeta,
) -> (u16, String, bool) {
    let host = match host {
        Ok(host) => host,
        Err(err) => return host_error(&err, meta),
    };
    let cb = cb.unwrap_or_else(|| default_cb.min(host.cost_bound_limit()));
    let engine_started = Instant::now();
    let result = host.synthesize_traced(target, cb, strategy, deadline_ms);
    meta.engine_us = Some(us(engine_started.elapsed()));
    match result {
        Ok((synthesis, trace)) => {
            meta.strategy = Some(trace.resolved.as_str());
            meta.cache = Some(trace.cache_hit);
            meta.expansions = Some(trace.expansions);
            (200, render(&SynthesizeReply { cb, synthesis }), false)
        }
        Err(err) => host_error(&err, meta),
    }
}

fn synthesize(request: &Request, ctx: &Ctx, meta: &mut RequestMeta) -> (u16, String, bool) {
    let body = String::from_utf8_lossy(&request.body);
    let parsed: SynthesizeRequest = match serde_json::from_str(&body) {
        Ok(parsed) => parsed,
        Err(err) => return (400, error_body(&err.to_string()), false),
    };
    meta.target = Some(parsed.target.clone());
    let model = match resolve_model(parsed.model) {
        Ok(model) => model,
        Err(detail) => return (400, error_body(&detail), false),
    };
    let wires = match validate_wires(parsed.wires) {
        Ok(wires) => wires,
        Err(reply) => return reply,
    };
    meta.wires = Some(wires);
    let strategy = match parsed.strategy.as_deref().map(str::parse) {
        None => ServeStrategy::Auto,
        Some(Ok(strategy)) => strategy,
        Some(Err(detail)) => return (400, error_body(&detail), false),
    };
    // The requested strategy; `synthesize_on` overwrites this with the
    // resolved one (`auto` → `uni`/`bidi`) once the host reports it.
    meta.strategy = Some(strategy.as_str());
    // Validate the target before resolving a host: a malformed request
    // must not cost a model-cap slot on a cold registry.
    let target = match mvq_core::known::parse_target_on(&parsed.target, 1 << wires) {
        Ok(target) => target,
        Err(detail) => return (400, error_body(&detail), false),
    };
    if wires == 4 {
        // The admission limit is calibrated to 3-wire growth (the
        // paper's bound of 7); the 4-wire frontier grows ~11× per
        // level, so an *implicit* bound stays shallow — clients must
        // ask for deep wide expansions explicitly.
        synthesize_on(
            ctx.registry.wide_host_for(model),
            &target,
            parsed.cb,
            WIDE_DEFAULT_CB,
            strategy,
            parsed.deadline_ms,
            meta,
        )
    } else {
        synthesize_on(
            ctx.registry.host_for(model),
            &target,
            parsed.cb,
            u32::MAX,
            strategy,
            parsed.deadline_ms,
            meta,
        )
    }
}

/// Runs the census body against a host of either width.
fn census_on<W: SearchWidth>(
    host: Result<Arc<EngineHost<W>>, HostError>,
    parsed: &CensusRequest,
    default_cb: u32,
    meta: &mut RequestMeta,
) -> (u16, String, bool) {
    let host = match host {
        Ok(host) => host,
        Err(err) => return host_error(&err, meta),
    };
    // An explicit bound goes through admission like /synthesize (over
    // the limit → 400); only the default is capped by the limit.
    let cb = parsed
        .cb
        .unwrap_or_else(|| default_cb.min(host.cost_bound_limit()));
    let engine_started = Instant::now();
    let result = host.census_traced(cb);
    meta.engine_us = Some(us(engine_started.elapsed()));
    match result {
        Ok((reply, trace)) => {
            meta.strategy = Some(trace.resolved.as_str());
            meta.cache = Some(trace.cache_hit);
            meta.expansions = Some(trace.expansions);
            (200, render(&reply), false)
        }
        Err(err) => host_error(&err, meta),
    }
}

fn census(request: &Request, ctx: &Ctx, meta: &mut RequestMeta) -> (u16, String, bool) {
    let body = String::from_utf8_lossy(&request.body);
    let body = if body.trim().is_empty() {
        "{}".into()
    } else {
        body
    };
    let parsed: CensusRequest = match serde_json::from_str(&body) {
        Ok(parsed) => parsed,
        Err(err) => return (400, error_body(&err.to_string()), false),
    };
    let model = match resolve_model(parsed.model) {
        Ok(model) => model,
        Err(detail) => return (400, error_body(&detail), false),
    };
    match validate_wires(parsed.wires) {
        Ok(wires) => {
            meta.wires = Some(wires);
            if wires == 4 {
                census_on(
                    ctx.registry.wide_host_for(model),
                    &parsed,
                    WIDE_DEFAULT_CB,
                    meta,
                )
            } else {
                census_on(ctx.registry.host_for(model), &parsed, 6, meta)
            }
        }
        Err(reply) => reply,
    }
}
