//! The engine host: one warm [`SynthesisEngine`] shared by many
//! concurrent queries.
//!
//! Reads scale, writes funnel. Queries answered by the cached levels
//! (the overwhelming majority on a warm engine) take the `RwLock` read
//! side and run concurrently through
//! [`SynthesisEngine::synthesize_cached`]. Cache misses — targets whose
//! class lives in a level not yet expanded — go through a **single
//! flight**: of all the requests needing deeper levels, exactly one
//! acquires the write lock and expands **one level**, while the rest
//! wait on a condvar; everyone re-runs their read when the level lands,
//! so a shallow target never pays for depth only its bound (not its
//! cost) asked for, and repeated misses cost one climb, not one per
//! request.
//!
//! Deep targets can skip the climb altogether: the bidirectional
//! serving strategy ([`ServeStrategy::Bidi`], picked automatically by
//! [`ServeStrategy::Auto`] for targets past the warm frontier) pins the
//! forward depth to the warm cache and meets a per-query backward
//! frontier on the read side.
//!
//! Admission control keeps the flight short: every query carries a cost
//! bound, and bounds above the host's limit are rejected up front, so a
//! single deep query cannot park the writer (and with it every other
//! miss) on a multi-second expansion.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use crate::lockrank::{
    LockGuard, RankedCondvar, RankedMutex, RankedRwLock, ReadGuard, WriteGuard, ENGINE_RANK,
    FLIGHT_RANK, RECOVERY_RANK, REGISTRY_RANK,
};
use mvq_core::{
    CachedBidirectional, CachedSynthesis, CostModel, EngineError, Narrow, ProbeHandle,
    SearchEngine, SearchWidth, Synthesis, SynthesisEngine, Wide, WideSynthesisEngine,
};
use mvq_perm::Perm;

/// How a host answers a `/synthesize` query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeStrategy {
    /// Serve from the shared forward levels, expanding them (one level
    /// at a time, single-flight) up to the target's cost on a miss.
    Uni,
    /// Meet in the middle: pin the forward depth to whatever the cache
    /// already holds and run a per-query backward frontier entirely on
    /// the read side — deep targets never deepen the shared levels.
    Bidi,
    /// The planner default: targets the warm frontier already resolves
    /// are served as plain cache hits; anything past it (estimated
    /// depth exceeds the expanded levels) switches to the
    /// bidirectional path instead of paying for deeper forward levels.
    #[default]
    Auto,
}

impl std::str::FromStr for ServeStrategy {
    type Err = String;

    /// Accepts `uni`/`unidirectional`, `bidi`/`bidirectional`, and
    /// `auto` (case-insensitive).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "unidirectional" | "uni" => Ok(Self::Uni),
            "bidirectional" | "bidi" => Ok(Self::Bidi),
            "auto" => Ok(Self::Auto),
            other => Err(format!(
                "unknown strategy `{other}` (expected `uni`, `bidi`, or `auto`)"
            )),
        }
    }
}

impl ServeStrategy {
    /// The canonical lowercase name (`uni` / `bidi` / `auto`).
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Uni => "uni",
            Self::Bidi => "bidi",
            Self::Auto => "auto",
        }
    }
}

impl fmt::Display for ServeStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Per-request serving facts, reported by the `*_traced` methods for
/// the transport layer's structured trace line.
#[derive(Debug, Clone, Copy)]
pub struct ServeTrace {
    /// Whether the cached levels answered without any expansion round.
    pub cache_hit: bool,
    /// Level expansions this request performed *itself* (waiting on
    /// another request's in-flight expansion does not count).
    pub expansions: u64,
    /// The strategy the request was actually served with
    /// ([`ServeStrategy::Auto`] resolves to `Uni` on a warm cache hit
    /// and `Bidi` past the warm frontier).
    pub resolved: ServeStrategy,
}

/// Tuning knobs for an [`EngineHost`] / [`HostRegistry`].
#[derive(Debug, Clone, Copy)]
pub struct HostConfig {
    /// Admission limit: queries with a cost bound above this are
    /// rejected instead of expanding the shared engine arbitrarily deep.
    pub max_cost_bound: u32,
    /// Engine expansion threads (0 = resolve like
    /// [`mvq_core::resolve_threads`]).
    pub threads: usize,
    /// Most cost models a registry will host concurrently.
    pub max_models: usize,
    /// The server-side cap on a request's `deadline_ms`: the longest a
    /// request may block behind the single-flight expansion before it
    /// sheds with a 503. Requests without a deadline get this default.
    pub max_deadline_ms: u64,
}

impl Default for HostConfig {
    fn default() -> Self {
        Self {
            // The paper's bound: every 3-wire reversible function is
            // expressible within quantum cost 7.
            max_cost_bound: 7,
            threads: 0,
            max_models: 8,
            max_deadline_ms: 30_000,
        }
    }
}

/// Why a request was not served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostError {
    /// The query's cost bound exceeds the admission limit.
    CostBoundExceeded {
        /// The bound the query asked for.
        requested: u32,
        /// The host's admission limit.
        limit: u32,
    },
    /// The registry already hosts its maximum number of cost models.
    TooManyModels {
        /// The configured model limit.
        limit: usize,
    },
    /// A previous request panicked while holding the engine lock.
    Poisoned,
    /// A cold engine could not be built for the requested configuration
    /// (e.g. a library over the width's packed limits) — surfaced as a
    /// JSON error instead of a worker panic.
    Engine(String),
    /// The request's (capped) deadline passed while it waited behind
    /// the single-flight expansion — shed with 503 + `Retry-After`
    /// rather than pinning a worker behind a deep miss.
    DeadlineExceeded {
        /// The effective budget the request ran under, in milliseconds.
        deadline_ms: u64,
    },
}

impl fmt::Display for HostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::CostBoundExceeded { requested, limit } => write!(
                f,
                "cost bound {requested} exceeds the admission limit {limit}"
            ),
            Self::TooManyModels { limit } => {
                write!(f, "already hosting the maximum of {limit} cost models")
            }
            Self::Poisoned => write!(f, "engine lock poisoned by an earlier panic"),
            Self::Engine(detail) => write!(f, "engine construction failed: {detail}"),
            Self::DeadlineExceeded { deadline_ms } => write!(
                f,
                "deadline of {deadline_ms} ms passed while waiting for the shared expansion; \
                 retry shortly"
            ),
        }
    }
}

impl std::error::Error for HostError {}

impl<T> From<std::sync::PoisonError<T>> for HostError {
    fn from(_: std::sync::PoisonError<T>) -> Self {
        Self::Poisoned
    }
}

impl From<EngineError> for HostError {
    fn from(err: EngineError) -> Self {
        Self::Engine(err.to_string())
    }
}

/// Shared bookkeeping for the single-flight expansion path.
#[derive(Debug)]
struct Flight {
    /// A writer is currently expanding.
    expanding: bool,
    /// Last known completed level (mirrors the engine, readable without
    /// touching the engine lock).
    completed: Option<u32>,
    /// The search space ran out below a requested bound — no further
    /// expansion can help.
    exhausted: bool,
}

/// Service counters (all monotonic).
#[derive(Debug, Default)]
struct Counters {
    synthesize_requests: AtomicU64,
    census_requests: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    expansions: AtomicU64,
    single_flight_waits: AtomicU64,
    rejected: AtomicU64,
    rebuilds: AtomicU64,
    deadline_timeouts: AtomicU64,
}

/// A point-in-time view of one host's counters and engine state.
#[derive(Debug, Clone)]
pub struct HostStats {
    /// The host's cost model weights `(V, V⁺, Feynman)`.
    pub model: (u32, u32, u32),
    /// The wire count of the host's library (3 or 4).
    pub wires: usize,
    /// `/synthesize` requests admitted.
    pub synthesize_requests: u64,
    /// `/census` requests admitted.
    pub census_requests: u64,
    /// Queries answered purely from the cached levels.
    pub cache_hits: u64,
    /// Queries that needed at least one expansion.
    pub cache_misses: u64,
    /// Write-side level expansions actually performed (one per landed
    /// level, plus bidirectional preparation's level-0 expansions).
    pub expansions: u64,
    /// Times a request waited on another request's in-flight expansion
    /// instead of expanding itself.
    pub single_flight_waits: u64,
    /// Requests rejected by cost-bound admission.
    pub rejected: u64,
    /// Times a poisoned engine was quarantined and rebuilt from its
    /// last-good state instead of failing every later request.
    pub rebuilds: u64,
    /// Requests shed (503) because their deadline passed while waiting
    /// behind the single-flight expansion.
    pub deadline_timeouts: u64,
    /// Highest fully expanded level.
    pub completed: Option<u32>,
    /// Distinct reversible classes discovered.
    pub classes_found: usize,
    /// Distinct circuit-permutations discovered (`|A|`).
    pub a_size: usize,
    /// Engine expansion threads.
    pub threads: usize,
}

/// The census counts a service query returns (a read-only slice of the
/// warm engine's tables).
#[derive(Debug, Clone)]
pub struct CensusReply {
    /// The bound the query asked for.
    pub cb: u32,
    /// `|G[k]|` for `k = 0..=cb` (shorter if the space exhausted early).
    pub g_counts: Vec<usize>,
    /// `|B[k]|`, parallel to `g_counts`.
    pub b_counts: Vec<usize>,
    /// Total classes discovered by the shared engine so far.
    pub classes_found: usize,
    /// Total circuit-permutations discovered so far.
    pub a_size: usize,
}

/// One warm engine behind a readers-writer cache manager with
/// single-flight expansion (see the module docs), generic over the
/// engine's [`SearchWidth`] (narrow hosts serve 2–3 wires, wide hosts
/// 4).
#[derive(Debug)]
pub struct EngineHost<W: SearchWidth = Narrow> {
    engine: RankedRwLock<SearchEngine<W>>,
    flight: RankedMutex<Flight>,
    landed: RankedCondvar,
    recovery: RankedMutex<Recovery>,
    limit: u32,
    max_deadline_ms: u64,
    counters: Counters,
}

/// Everything a poisoned host needs to rebuild itself: the last-good
/// engine state captured at construction (serialized snapshot bytes)
/// plus the cold-rebuild parameters. Guarded by its own rank-15 mutex
/// so concurrent victims of one poisoning serialize on a single rebuild.
#[derive(Debug)]
struct Recovery {
    /// Serialized construction-time engine state (for a host that
    /// started cold these are the bytes of a cold engine, so the rebuild
    /// *is* a cold start); `None` when the engine's library cannot be
    /// snapshotted (non-standard), in which case the host cannot
    /// self-heal and stays failed.
    last_good: Option<Vec<u8>>,
    threads: usize,
    /// Observability probe to re-install on rebuilt engines: an engine
    /// reloaded from snapshot bytes carries no probe of its own.
    probe: ProbeHandle,
}

/// Clears the `expanding` flag even if the expansion panicked, so
/// waiters are never stranded on the condvar.
struct FlightReset<'a, W: SearchWidth>(&'a EngineHost<W>);

impl<W: SearchWidth> Drop for FlightReset<'_, W> {
    fn drop(&mut self) {
        if let Ok(mut flight) = self.0.flight.lock() {
            flight.expanding = false;
        }
        self.0.landed.notify_all();
    }
}

impl<W: SearchWidth> EngineHost<W> {
    /// Hosts `engine`, rejecting queries whose cost bound exceeds
    /// `max_cost_bound`. Requests run under the default 30-second
    /// deadline cap; see [`Self::with_limits`].
    ///
    /// A snapshot-loaded engine's deferred frontier is materialized here,
    /// up front, so no query pays the merge cost mid-flight.
    pub fn new(engine: SearchEngine<W>, max_cost_bound: u32) -> Self {
        Self::with_limits(
            engine,
            max_cost_bound,
            HostConfig::default().max_deadline_ms,
        )
    }

    /// [`Self::new`] with an explicit deadline cap: no request waits
    /// longer than `max_deadline_ms` behind the single-flight expansion
    /// (a request's own `deadline_ms` can only shorten it).
    ///
    /// Construction also captures the engine's state as the host's
    /// last-good rebuild source: if a later request panics while holding
    /// the engine lock, the next request quarantines the poisoned engine
    /// and rebuilds from these bytes instead of failing forever.
    pub fn with_limits(
        mut engine: SearchEngine<W>,
        max_cost_bound: u32,
        max_deadline_ms: u64,
    ) -> Self {
        engine.ensure_frontier();
        let recovery = Recovery {
            last_good: engine.snapshot_to_bytes().ok(),
            threads: engine.threads(),
            probe: engine.probe().clone(),
        };
        let flight = Flight {
            expanding: false,
            completed: engine.completed_cost(),
            exhausted: false,
        };
        Self {
            engine: RankedRwLock::new(ENGINE_RANK, engine),
            flight: RankedMutex::new(FLIGHT_RANK, flight),
            landed: RankedCondvar::new(),
            recovery: RankedMutex::new(RECOVERY_RANK, recovery),
            limit: max_cost_bound,
            max_deadline_ms,
            counters: Counters::default(),
        }
    }

    /// The admission limit.
    pub fn cost_bound_limit(&self) -> u32 {
        self.limit
    }

    /// Installs `probe` on the hosted engine, and remembers it so any
    /// engine a future [`Self::heal`] rebuilds carries it too.
    ///
    /// # Errors
    ///
    /// The usual poison-path errors when the engine cannot be locked
    /// and cannot heal; the probe is still remembered for the rebuild.
    pub fn set_probe(&self, probe: ProbeHandle) -> Result<(), HostError> {
        {
            let mut recovery = match self.recovery.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            recovery.probe = probe.clone();
        }
        let mut engine = self.engine_write()?;
        engine.set_probe(probe);
        Ok(())
    }

    /// Acquires the engine read lock, healing a poisoned engine first
    /// (see [`Self::heal`]) instead of failing the request.
    fn engine_read(&self) -> Result<ReadGuard<'_, SearchEngine<W>>, HostError> {
        if let Ok(guard) = self.engine.read() {
            return Ok(guard);
        }
        self.heal()?;
        self.engine.read().map_err(HostError::from)
    }

    /// Write-side counterpart of [`Self::engine_read`].
    fn engine_write(&self) -> Result<WriteGuard<'_, SearchEngine<W>>, HostError> {
        if let Ok(guard) = self.engine.write() {
            return Ok(guard);
        }
        self.heal()?;
        self.engine.write().map_err(HostError::from)
    }

    /// Acquires the single-flight mutex, healing on poison like
    /// [`Self::engine_read`].
    fn flight_lock(&self) -> Result<LockGuard<'_, Flight>, HostError> {
        if let Ok(guard) = self.flight.lock() {
            return Ok(guard);
        }
        self.heal()?;
        self.flight.lock().map_err(HostError::from)
    }

    /// Quarantines a poisoned host and rebuilds it: the engine is
    /// replaced by one reloaded from the last-good snapshot bytes
    /// captured at construction (cold-built if the host started cold),
    /// the flight state is reset, poison is cleared, and waiters are
    /// woken. Concurrent victims serialize on the recovery lock — the
    /// first rebuilds, the rest see an already-healed engine and return.
    ///
    /// # Errors
    ///
    /// [`HostError::Engine`] when no rebuild source exists (the engine's
    /// library could not be snapshotted) or the rebuild itself fails; the
    /// host stays quarantined and the next request retries.
    fn heal(&self) -> Result<(), HostError> {
        let recovery = match self.recovery.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if !self.engine.is_poisoned() && !self.flight.is_poisoned() {
            // Another victim healed while we waited on the recovery lock.
            return Ok(());
        }
        let mut engine = match &recovery.last_good {
            Some(bytes) => SearchEngine::<W>::load_snapshot_from_bytes(bytes, recovery.threads)
                .map_err(|err| {
                    HostError::Engine(format!("host rebuild from last-good state failed: {err}"))
                })?,
            None => {
                return Err(HostError::Engine(
                    "poisoned host has no last-good state to rebuild from \
                     (non-standard library)"
                        .to_string(),
                ))
            }
        };
        engine.ensure_frontier();
        engine.set_probe(recovery.probe.clone());
        let completed = engine.completed_cost();
        {
            // Swap through the poisoned guard, then clear: readers keep
            // seeing the poison (and queue up behind the recovery lock)
            // until the replacement engine is fully in place.
            let mut slot = match self.engine.write() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            *slot = engine;
        }
        self.engine.clear_poison();
        {
            let mut flight = match self.flight.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            flight.expanding = false;
            flight.completed = completed;
            flight.exhausted = false;
        }
        self.flight.clear_poison();
        self.landed.notify_all();
        self.counters.rebuilds.fetch_add(1, Ordering::Relaxed);
        drop(recovery);
        Ok(())
    }

    /// The effective time budget for a request: its own `deadline_ms`
    /// capped by the host's `max_deadline_ms` (absent means the cap).
    fn budget_ms(&self, deadline_ms: Option<u64>) -> u64 {
        deadline_ms.map_or(self.max_deadline_ms, |d| d.min(self.max_deadline_ms))
    }

    /// Minimal-cost synthesis of `target` within `cb`, served from the
    /// shared cache when possible.
    ///
    /// The result is bit-identical to a serial
    /// [`SynthesisEngine::synthesize`] call on a private engine — costs,
    /// witness counts, and circuits — for any number of concurrent
    /// callers.
    ///
    /// # Errors
    ///
    /// [`HostError::CostBoundExceeded`] when `cb` exceeds the admission
    /// limit; [`HostError::Poisoned`] after a panicked writer.
    pub fn synthesize(&self, target: &Perm, cb: u32) -> Result<Option<Synthesis>, HostError> {
        self.synthesize_with_strategy(target, cb, ServeStrategy::Uni)
    }

    /// [`Self::synthesize`] with an explicit serving strategy (see
    /// [`ServeStrategy`]); costs and witness counts are identical across
    /// strategies — only where the search work lands differs.
    ///
    /// # Errors
    ///
    /// Same as [`Self::synthesize`].
    pub fn synthesize_with_strategy(
        &self,
        target: &Perm,
        cb: u32,
        strategy: ServeStrategy,
    ) -> Result<Option<Synthesis>, HostError> {
        self.synthesize_with_options(target, cb, strategy, None)
    }

    /// [`Self::synthesize_with_strategy`] with a per-request deadline:
    /// once `deadline_ms` (capped by the host's `max_deadline_ms`)
    /// passes while the request waits behind the single-flight
    /// expansion, it sheds with [`HostError::DeadlineExceeded`] instead
    /// of pinning a worker.
    ///
    /// # Errors
    ///
    /// Same as [`Self::synthesize`], plus
    /// [`HostError::DeadlineExceeded`].
    pub fn synthesize_with_options(
        &self,
        target: &Perm,
        cb: u32,
        strategy: ServeStrategy,
        deadline_ms: Option<u64>,
    ) -> Result<Option<Synthesis>, HostError> {
        self.synthesize_traced(target, cb, strategy, deadline_ms)
            .map(|(synthesis, _)| synthesis)
    }

    /// [`Self::synthesize_with_options`] that also reports per-request
    /// serving facts ([`ServeTrace`]) for the transport's trace line.
    ///
    /// # Errors
    ///
    /// Same as [`Self::synthesize_with_options`].
    pub fn synthesize_traced(
        &self,
        target: &Perm,
        cb: u32,
        strategy: ServeStrategy,
        deadline_ms: Option<u64>,
    ) -> Result<(Option<Synthesis>, ServeTrace), HostError> {
        self.admit(cb)?;
        mvq_fault::point!("serve.read");
        self.counters
            .synthesize_requests
            .fetch_add(1, Ordering::Relaxed);
        let budget_ms = self.budget_ms(deadline_ms);
        let deadline = Instant::now() + Duration::from_millis(budget_ms);
        match strategy {
            ServeStrategy::Uni => self.serve_uni(target, cb, deadline, budget_ms),
            ServeStrategy::Bidi => self.serve_bidi(target, cb, false),
            ServeStrategy::Auto => {
                // Planner: one read-side peek at the warm frontier. A
                // resolved answer is a plain cache hit; a target whose
                // estimated depth exceeds the expanded levels goes
                // bidirectional rather than deepening the shared cache.
                {
                    let engine = self.engine_read()?;
                    if let CachedSynthesis::Resolved(result) = engine.synthesize_cached(target, cb)
                    {
                        self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                        return Ok((
                            result,
                            ServeTrace {
                                cache_hit: true,
                                expansions: 0,
                                resolved: ServeStrategy::Uni,
                            },
                        ));
                    }
                }
                self.serve_bidi(target, cb, true)
            }
        }
    }

    fn serve_uni(
        &self,
        target: &Perm,
        cb: u32,
        deadline: Instant,
        budget_ms: u64,
    ) -> Result<(Option<Synthesis>, ServeTrace), HostError> {
        let mut missed = false;
        let mut expansions = 0u64;
        loop {
            {
                let engine = self.engine_read()?;
                if let CachedSynthesis::Resolved(result) = engine.synthesize_cached(target, cb) {
                    let outcome = if missed {
                        &self.counters.cache_misses
                    } else {
                        &self.counters.cache_hits
                    };
                    outcome.fetch_add(1, Ordering::Relaxed);
                    return Ok((
                        result,
                        ServeTrace {
                            cache_hit: !missed,
                            expansions,
                            resolved: ServeStrategy::Uni,
                        },
                    ));
                }
            }
            missed = true;
            expansions += self.expand_shared(cb, deadline, budget_ms)?;
        }
    }

    /// The bidirectional read path: the backward frontier is per-query,
    /// so everything past one-time shared preparation (forward level 0
    /// plus the cached levels' join indexes) runs under the read lock.
    fn serve_bidi(
        &self,
        target: &Perm,
        cb: u32,
        mut missed: bool,
    ) -> Result<(Option<Synthesis>, ServeTrace), HostError> {
        let mut expansions = 0u64;
        loop {
            {
                let engine = self.engine_read()?;
                if let CachedBidirectional::Resolved(result) =
                    engine.synthesize_bidirectional_cached(target, cb)
                {
                    let outcome = if missed {
                        &self.counters.cache_misses
                    } else {
                        &self.counters.cache_hits
                    };
                    outcome.fetch_add(1, Ordering::Relaxed);
                    return Ok((
                        result,
                        ServeTrace {
                            cache_hit: !missed,
                            expansions,
                            resolved: ServeStrategy::Bidi,
                        },
                    ));
                }
            }
            missed = true;
            expansions += self.prepare_bidi(cb)?;
        }
    }

    /// Builds the bidirectional path's shared state (idempotent, so
    /// concurrent misses just serialize on the write lock and all but
    /// the first no-op). Counts and returns any forward expansion it
    /// performs.
    fn prepare_bidi(&self, cb: u32) -> Result<u64, HostError> {
        let (expanded, completed) = {
            let mut engine = self.engine_write()?;
            let expanded = engine.prepare_bidirectional(cb);
            (expanded, engine.completed_cost())
        };
        if expanded > 0 {
            self.counters
                .expansions
                .fetch_add(expanded as u64, Ordering::Relaxed);
            let mut flight = self.flight_lock()?;
            flight.completed = completed;
        }
        Ok(expanded as u64)
    }

    /// The census counts up to `cb`, expanding (single-flight) only if
    /// the cached levels do not reach that far yet.
    ///
    /// # Errors
    ///
    /// Same as [`Self::synthesize`].
    pub fn census(&self, cb: u32) -> Result<CensusReply, HostError> {
        self.census_traced(cb).map(|(reply, _)| reply)
    }

    /// [`Self::census`] that also reports per-request serving facts
    /// ([`ServeTrace`]) for the transport's trace line.
    ///
    /// # Errors
    ///
    /// Same as [`Self::census`].
    pub fn census_traced(&self, cb: u32) -> Result<(CensusReply, ServeTrace), HostError> {
        self.admit(cb)?;
        self.counters
            .census_requests
            .fetch_add(1, Ordering::Relaxed);
        let budget_ms = self.max_deadline_ms;
        let deadline = Instant::now() + Duration::from_millis(budget_ms);
        let mut missed = false;
        let mut expansions = 0u64;
        loop {
            let ready = {
                let flight = self.flight_lock()?;
                flight.exhausted || flight.completed.is_some_and(|c| c >= cb)
            };
            if ready {
                let engine = self.engine_read()?;
                let levels = engine.g_counts().len().min(cb as usize + 1);
                let outcome = if missed {
                    &self.counters.cache_misses
                } else {
                    &self.counters.cache_hits
                };
                outcome.fetch_add(1, Ordering::Relaxed);
                return Ok((
                    CensusReply {
                        cb,
                        g_counts: engine.g_counts()[..levels].to_vec(),
                        b_counts: engine.b_counts()[..levels].to_vec(),
                        classes_found: engine.classes_found(),
                        a_size: engine.a_size(),
                    },
                    ServeTrace {
                        cache_hit: !missed,
                        expansions,
                        resolved: ServeStrategy::Uni,
                    },
                ));
            }
            missed = true;
            expansions += self.expand_shared(cb, deadline, budget_ms)?;
        }
    }

    /// A point-in-time stats snapshot.
    ///
    /// # Errors
    ///
    /// [`HostError::Poisoned`] after a panicked writer.
    pub fn stats(&self) -> Result<HostStats, HostError> {
        let engine = self.engine_read()?;
        let c = &self.counters;
        Ok(HostStats {
            model: engine.cost_model().weights(),
            wires: engine.library().domain().wires(),
            synthesize_requests: c.synthesize_requests.load(Ordering::Relaxed),
            census_requests: c.census_requests.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            cache_misses: c.cache_misses.load(Ordering::Relaxed),
            expansions: c.expansions.load(Ordering::Relaxed),
            single_flight_waits: c.single_flight_waits.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            rebuilds: c.rebuilds.load(Ordering::Relaxed),
            deadline_timeouts: c.deadline_timeouts.load(Ordering::Relaxed),
            completed: engine.completed_cost(),
            classes_found: engine.classes_found(),
            a_size: engine.a_size(),
            threads: engine.threads(),
        })
    }

    fn admit(&self, cb: u32) -> Result<(), HostError> {
        if cb > self.limit {
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(HostError::CostBoundExceeded {
                requested: cb,
                limit: self.limit,
            });
        }
        Ok(())
    }

    /// The single-flight expansion path: advance the engine **one level
    /// per call** toward `cb` (or until the space is exhausted), with at
    /// most one expander across all concurrent callers.
    ///
    /// Expanding level-by-level — instead of one monolithic
    /// `expand_to_cost(cb)` — matters twice over: the caller's read loop
    /// re-checks its query between levels, so a cost-2 target asked with
    /// a deep bound stops expanding the moment level 2 lands instead of
    /// riding the bound to level `cb`; and the write lock is released
    /// between levels, so concurrent reads interleave with a long climb.
    ///
    /// Returns the number of expansions this call performed itself (1
    /// when it won the flight, 0 when it waited or nothing was needed),
    /// so callers can attribute work to requests in their trace lines.
    fn expand_shared(&self, cb: u32, deadline: Instant, budget_ms: u64) -> Result<u64, HostError> {
        let shed = |host: &Self| {
            host.counters
                .deadline_timeouts
                .fetch_add(1, Ordering::Relaxed);
            Err(HostError::DeadlineExceeded {
                deadline_ms: budget_ms,
            })
        };
        let mut flight = self.flight_lock()?;
        if flight.exhausted || flight.completed.is_some_and(|c| c >= cb) {
            return Ok(0);
        }
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return shed(self);
        }
        if flight.expanding {
            self.counters
                .single_flight_waits
                .fetch_add(1, Ordering::Relaxed);
            let (flight, timeout) = self.landed.wait_timeout(flight, remaining)?;
            if timeout.timed_out() && flight.expanding {
                // Still behind the same (or a newer) expansion with no
                // budget left: shed instead of pinning the worker.
                drop(flight);
                return shed(self);
            }
            // A level landed (or the expander bailed); let the caller
            // re-run its read before asking for more depth.
            return Ok(0);
        }
        flight.expanding = true;
        drop(flight);
        let reset = FlightReset(self);
        let (completed, exhausted) = {
            let mut engine = self.engine_write()?;
            mvq_fault::point!("serve.write");
            let advanced = engine.expand_one_level();
            (engine.completed_cost(), !advanced)
        };
        self.counters.expansions.fetch_add(1, Ordering::Relaxed);
        {
            let mut flight = self.flight_lock()?;
            flight.completed = completed;
            flight.exhausted = exhausted;
        }
        drop(reset); // clears `expanding`, wakes waiters
        Ok(1)
    }
}

/// The two per-width host tables behind one lock (one lock order, no
/// cross-width deadlock; the model cap spans both).
#[derive(Debug, Default)]
struct HostTables {
    narrow: HashMap<CostModel, Arc<EngineHost<Narrow>>>,
    wide: HashMap<CostModel, Arc<EngineHost<Wide>>>,
}

impl HostTables {
    fn total(&self) -> usize {
        self.narrow.len() + self.wide.len()
    }
}

/// One [`EngineHost`] per `(width, cost model)`, created on demand
/// (bounded by [`HostConfig::max_models`] across both widths).
#[derive(Debug)]
pub struct HostRegistry {
    config: HostConfig,
    hosts: RankedMutex<HostTables>,
    /// The observability probe every hosted engine reports into, set
    /// once by the transport layer at bind time; hosts created later
    /// inherit it at construction.
    probe: OnceLock<ProbeHandle>,
}

impl HostRegistry {
    /// An empty registry; hosts are created lazily by
    /// [`Self::host_for`] / [`Self::wide_host_for`].
    pub fn new(config: HostConfig) -> Self {
        Self {
            config,
            hosts: RankedMutex::new(REGISTRY_RANK, HostTables::default()),
            probe: OnceLock::new(),
        }
    }

    /// The registry's configuration.
    pub fn config(&self) -> &HostConfig {
        &self.config
    }

    /// The probe newly created hosts should carry (none until
    /// [`Self::set_probe`]).
    fn probe(&self) -> ProbeHandle {
        self.probe.get().cloned().unwrap_or_default()
    }

    /// Installs `probe` on every current host's engine and on every
    /// host created afterwards. The first probe installed wins — one
    /// server owns a registry's metrics — and installation on existing
    /// hosts is best-effort: a host that cannot be locked right now
    /// simply stays unprobed until its next heal.
    pub fn set_probe(&self, probe: ProbeHandle) {
        let _ = self.probe.set(probe);
        let probe = self.probe();
        if !probe.is_set() {
            return;
        }
        let Ok(hosts) = self.hosts.lock() else {
            return;
        };
        for host in hosts.narrow.values() {
            let _ = host.set_probe(probe.clone());
        }
        for host in hosts.wide.values() {
            let _ = host.set_probe(probe.clone());
        }
    }

    /// Best-effort probe installation on a freshly created host.
    fn probe_new_host<W: SearchWidth>(&self, host: &EngineHost<W>) {
        let probe = self.probe();
        if probe.is_set() {
            let _ = host.set_probe(probe);
        }
    }

    /// Installs a pre-warmed 3-wire engine (e.g. loaded from a snapshot)
    /// as the host for its own cost model, replacing any existing host.
    ///
    /// # Errors
    ///
    /// [`HostError::Engine`] if the engine is not a 3-wire engine (the
    /// narrow table serves `wires = 3` traffic, and a smaller register
    /// would panic target reduction mid-request);
    /// [`HostError::Poisoned`] if the registry lock is poisoned.
    pub fn install(&self, engine: SynthesisEngine) -> Result<Arc<EngineHost>, HostError> {
        let wires = engine.library().domain().wires();
        if wires != 3 {
            return Err(HostError::Engine(format!(
                "the service hosts 3-wire engines in its narrow table, got {wires} wires"
            )));
        }
        // Read the model before the engine moves into the host: taking
        // `host.engine.read()` (rank 20) before `hosts.lock()` (rank 10)
        // here would invert the acquisition order that `stats()` uses.
        let model = *engine.cost_model();
        let host = Arc::new(EngineHost::with_limits(
            engine,
            self.config.max_cost_bound,
            self.config.max_deadline_ms,
        ));
        self.probe_new_host(&host);
        self.hosts.lock()?.narrow.insert(model, Arc::clone(&host));
        Ok(host)
    }

    /// [`Self::install`] for a pre-warmed 4-wire (wide) engine.
    ///
    /// # Errors
    ///
    /// [`HostError::Engine`] if the engine's library is not 4-wire;
    /// [`HostError::Poisoned`] if the registry lock is poisoned.
    pub fn install_wide(
        &self,
        engine: WideSynthesisEngine,
    ) -> Result<Arc<EngineHost<Wide>>, HostError> {
        let wires = engine.library().domain().wires();
        if wires != 4 {
            return Err(HostError::Engine(format!(
                "the service hosts 4-wire engines in its wide table, got {wires} wires"
            )));
        }
        // Same rank discipline as `install`: model first, lock second.
        let model = *engine.cost_model();
        let host = Arc::new(EngineHost::with_limits(
            engine,
            self.config.max_cost_bound,
            self.config.max_deadline_ms,
        ));
        self.probe_new_host(&host);
        self.hosts.lock()?.wide.insert(model, Arc::clone(&host));
        Ok(host)
    }

    fn threads(&self) -> usize {
        mvq_core::resolve_threads((self.config.threads > 0).then_some(self.config.threads))
    }

    /// The 3-wire host for `model`, creating a cold engine if this is
    /// the model's first request.
    ///
    /// # Errors
    ///
    /// [`HostError::TooManyModels`] past the configured limit;
    /// [`HostError::Engine`] if the cold engine cannot be built;
    /// [`HostError::Poisoned`] if the registry lock is poisoned.
    pub fn host_for(&self, model: CostModel) -> Result<Arc<EngineHost>, HostError> {
        let mut hosts = self.hosts.lock()?;
        if let Some(host) = hosts.narrow.get(&model) {
            return Ok(Arc::clone(host));
        }
        if hosts.total() >= self.config.max_models {
            return Err(HostError::TooManyModels {
                limit: self.config.max_models,
            });
        }
        let engine = SynthesisEngine::try_with_threads(
            mvq_logic::GateLibrary::standard(3),
            model,
            self.threads(),
        )?;
        let host = Arc::new(EngineHost::with_limits(
            engine,
            self.config.max_cost_bound,
            self.config.max_deadline_ms,
        ));
        self.probe_new_host(&host);
        hosts.narrow.insert(model, Arc::clone(&host));
        Ok(host)
    }

    /// The 4-wire host for `model`, creating a cold wide engine if this
    /// is the model's first request.
    ///
    /// # Errors
    ///
    /// See [`Self::host_for`].
    pub fn wide_host_for(&self, model: CostModel) -> Result<Arc<EngineHost<Wide>>, HostError> {
        let mut hosts = self.hosts.lock()?;
        if let Some(host) = hosts.wide.get(&model) {
            return Ok(Arc::clone(host));
        }
        if hosts.total() >= self.config.max_models {
            return Err(HostError::TooManyModels {
                limit: self.config.max_models,
            });
        }
        let engine = WideSynthesisEngine::try_with_threads(
            mvq_logic::GateLibrary::standard(4),
            model,
            self.threads(),
        )?;
        let host = Arc::new(EngineHost::with_limits(
            engine,
            self.config.max_cost_bound,
            self.config.max_deadline_ms,
        ));
        self.probe_new_host(&host);
        hosts.wide.insert(model, Arc::clone(&host));
        Ok(host)
    }

    /// Stats snapshots for every live host, in (wires, model) order.
    ///
    /// # Errors
    ///
    /// [`HostError::Poisoned`] if any lock is poisoned.
    pub fn stats(&self) -> Result<Vec<HostStats>, HostError> {
        let hosts = self.hosts.lock()?;
        let mut all: Vec<HostStats> = hosts
            .narrow
            .values()
            .map(|h| h.stats())
            .chain(hosts.wide.values().map(|h| h.stats()))
            .collect::<Result<_, _>>()?;
        all.sort_by_key(|s| (s.wires, s.model));
        Ok(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvq_core::known;

    fn unit_host(limit: u32) -> EngineHost {
        EngineHost::new(SynthesisEngine::unit_cost_with_threads(1), limit)
    }

    #[test]
    fn serves_toffoli_like_a_private_engine() {
        let host = unit_host(7);
        let served = host.synthesize(&known::toffoli_perm(), 6).unwrap().unwrap();
        let mut private = SynthesisEngine::unit_cost_with_threads(1);
        let want = private.synthesize(&known::toffoli_perm(), 6).unwrap();
        assert_eq!(served.cost, want.cost);
        assert_eq!(served.implementation_count, want.implementation_count);
        assert_eq!(served.circuit.to_string(), want.circuit.to_string());
    }

    #[test]
    fn admission_rejects_deep_bounds() {
        let host = unit_host(5);
        let err = host.synthesize(&known::fredkin_perm(), 7).unwrap_err();
        assert_eq!(
            err,
            HostError::CostBoundExceeded {
                requested: 7,
                limit: 5
            }
        );
        // Within the limit the query is admitted (and unreachable at 5).
        assert!(host
            .synthesize(&known::fredkin_perm(), 5)
            .unwrap()
            .is_none());
        assert_eq!(host.stats().unwrap().rejected, 1);
    }

    #[test]
    fn warm_bound_semantics_match_the_engine() {
        let host = unit_host(7);
        host.census(5).unwrap(); // warm to cost 5
        assert!(host
            .synthesize(&known::toffoli_perm(), 4)
            .unwrap()
            .is_none());
        let again = host.synthesize(&known::toffoli_perm(), 5).unwrap().unwrap();
        assert_eq!(again.cost, 5);
    }

    #[test]
    fn census_reports_verified_counts() {
        let host = unit_host(7);
        let reply = host.census(3).unwrap();
        assert_eq!(reply.g_counts, vec![1, 6, 24, 51]);
        assert_eq!(reply.cb, 3);
        // A deeper engine truncates to the requested bound.
        host.census(4).unwrap();
        let shallow = host.census(2).unwrap();
        assert_eq!(shallow.g_counts, vec![1, 6, 24]);
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let host = unit_host(7);
        host.synthesize(&known::peres_perm(), 5).unwrap(); // miss: climbs to 4
        host.synthesize(&known::peres_perm(), 5).unwrap(); // hit
        host.synthesize(&known::toffoli_perm(), 5).unwrap(); // miss: climbs to 5
        let stats = host.stats().unwrap();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 2);
        // Levels 0–4 for Peres (which resolves at its cost, not its
        // bound), then level 5 for Toffoli: one expansion per level.
        assert_eq!(stats.expansions, 6);
        assert_eq!(stats.synthesize_requests, 3);
    }

    #[test]
    fn shallow_miss_with_deep_bound_stops_at_the_target_cost() {
        // Regression: the expander used to run one monolithic
        // `expand_to_cost(cb)` under the write lock, so a cost-4 target
        // asked with the full cb = 7 bound paid for levels 5–7 nobody
        // needed. Level-by-level expansion re-checks resolution between
        // levels and stops the climb at the target's cost.
        let host = unit_host(7);
        let syn = host.synthesize(&known::peres_perm(), 7).unwrap().unwrap();
        assert_eq!(syn.cost, 4);
        let stats = host.stats().unwrap();
        assert_eq!(stats.completed, Some(4));
        assert_eq!(stats.expansions, 5); // levels 0–4, nothing deeper
    }

    #[test]
    fn bidi_strategy_serves_deep_targets_without_deep_levels() {
        let host = unit_host(7);
        let syn = host
            .synthesize_with_strategy(&known::fredkin_perm(), 7, ServeStrategy::Bidi)
            .unwrap()
            .unwrap();
        assert_eq!(syn.cost, 7);
        assert_eq!(syn.implementation_count, 16);
        assert!(syn
            .circuit
            .verify_against_binary_perm(&known::fredkin_perm()));
        let stats = host.stats().unwrap();
        // Preparation expanded forward level 0 only; the depth lived in
        // the per-query backward frontier.
        assert_eq!(stats.completed, Some(0));
        assert_eq!(stats.expansions, 1);
        assert_eq!(stats.cache_misses, 1);
    }

    #[test]
    fn auto_strategy_hits_warm_cache_and_goes_bidi_past_it() {
        let host = unit_host(7);
        host.census(4).unwrap(); // warm to cost 4
        let peres = host
            .synthesize_with_strategy(&known::peres_perm(), 7, ServeStrategy::Auto)
            .unwrap()
            .unwrap();
        assert_eq!(peres.cost, 4);
        let warm_stats = host.stats().unwrap();
        assert_eq!(warm_stats.cache_hits, 1); // peres (census climbed, a miss)
                                              // Fredkin (cost 7) lies past the warm frontier: auto switches to
                                              // the bidirectional path instead of expanding levels 5–7.
        let deep = host
            .synthesize_with_strategy(&known::fredkin_perm(), 7, ServeStrategy::Auto)
            .unwrap()
            .unwrap();
        assert_eq!(deep.cost, 7);
        assert_eq!(deep.implementation_count, 16);
        let stats = host.stats().unwrap();
        assert_eq!(stats.completed, Some(4));
        assert_eq!(stats.cache_misses, 2); // the census climb + fredkin
                                           // Uni answers for targets within the warm frontier agree with
                                           // auto answers (cost and witness count).
        let uni = host
            .synthesize_with_strategy(&known::peres_perm(), 7, ServeStrategy::Uni)
            .unwrap()
            .unwrap();
        assert_eq!(uni.cost, peres.cost);
        assert_eq!(uni.implementation_count, peres.implementation_count);
    }

    #[test]
    fn concurrent_misses_share_one_expansion() {
        let host = Arc::new(unit_host(7));
        let results: Vec<(u32, usize)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let host = Arc::clone(&host);
                    scope.spawn(move || {
                        let syn = host.synthesize(&known::toffoli_perm(), 5).unwrap().unwrap();
                        (syn.cost, syn.implementation_count)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results.iter().all(|&r| r == (5, 4)));
        let stats = host.stats().unwrap();
        // All eight raced for the same level-5 expansion: the engine only
        // ever expanded levels 0–5 once (at most a few no-op write grabs).
        assert_eq!(stats.completed, Some(5));
        assert_eq!(stats.a_size, {
            let mut e = SynthesisEngine::unit_cost_with_threads(1);
            e.expand_to_cost(5);
            e.a_size()
        });
    }

    #[test]
    fn registry_creates_and_caps_models() {
        let registry = HostRegistry::new(HostConfig {
            max_cost_bound: 7,
            threads: 1,
            max_models: 2,
            ..HostConfig::default()
        });
        let unit = registry.host_for(CostModel::unit()).unwrap();
        let again = registry.host_for(CostModel::unit()).unwrap();
        assert!(Arc::ptr_eq(&unit, &again));
        registry.host_for(CostModel::weighted(1, 2, 3)).unwrap();
        let err = registry.host_for(CostModel::weighted(2, 2, 1)).unwrap_err();
        assert_eq!(err, HostError::TooManyModels { limit: 2 });
        assert_eq!(registry.stats().unwrap().len(), 2);
    }

    #[test]
    fn wide_host_serves_4_wire_targets() {
        let registry = HostRegistry::new(HostConfig {
            max_cost_bound: 3,
            threads: 1,
            max_models: 4,
            ..HostConfig::default()
        });
        let host = registry.wide_host_for(CostModel::unit()).unwrap();
        // The 4-wire CNOT D ^= A costs 1.
        let target = mvq_core::known::parse_target_on("(9,10)(11,12)(13,14)(15,16)", 16).unwrap();
        let syn = host.synthesize(&target, 2).unwrap().unwrap();
        assert_eq!(syn.cost, 1);
        let stats = host.stats().unwrap();
        assert_eq!(stats.wires, 4);
        // Narrow and wide hosts for the same model coexist and count
        // toward one cap.
        registry.host_for(CostModel::unit()).unwrap();
        assert_eq!(registry.stats().unwrap().len(), 2);
    }

    #[test]
    fn model_cap_spans_both_widths() {
        let registry = HostRegistry::new(HostConfig {
            max_cost_bound: 3,
            threads: 1,
            max_models: 2,
            ..HostConfig::default()
        });
        registry.host_for(CostModel::unit()).unwrap();
        registry.wide_host_for(CostModel::unit()).unwrap();
        let err = registry.host_for(CostModel::weighted(1, 2, 3)).unwrap_err();
        assert_eq!(err, HostError::TooManyModels { limit: 2 });
        let err = registry
            .wide_host_for(CostModel::weighted(1, 2, 3))
            .unwrap_err();
        assert_eq!(err, HostError::TooManyModels { limit: 2 });
    }

    #[test]
    fn install_rejects_mismatched_wire_counts() {
        // Regression: installing a 2-wire snapshot used to park it in
        // the table that serves wires = 3 traffic, where the first
        // request's target reduction would panic the worker.
        let registry = HostRegistry::new(HostConfig {
            threads: 1,
            ..HostConfig::default()
        });
        let two_wire = SynthesisEngine::with_threads(
            mvq_logic::GateLibrary::standard(2),
            CostModel::unit(),
            1,
        );
        let err = registry.install(two_wire).unwrap_err();
        assert!(matches!(err, HostError::Engine(_)), "{err}");
        let three_wire_wide = WideSynthesisEngine::with_threads(
            mvq_logic::GateLibrary::standard(3),
            CostModel::unit(),
            1,
        );
        let err = registry.install_wide(three_wire_wide).unwrap_err();
        assert!(matches!(err, HostError::Engine(_)), "{err}");
        assert!(registry.stats().unwrap().is_empty());
    }

    /// The debug-build witness turns a latent deadlock (flight before
    /// engine inverts the documented rank order) into an immediate
    /// panic, on any schedule, with no second thread needed.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "lock-order inversion")]
    fn witness_panics_on_inverted_lock_acquisition() {
        let host = unit_host(3);
        let _flight = host.flight.lock().unwrap(); // rank 30
        let _engine = host.engine.read().unwrap(); // rank 20: inversion
    }

    /// The registry order (`hosts` rank 10 before `engine` rank 20,
    /// as `stats()` nests them) passes the witness.
    #[test]
    fn registry_then_engine_acquisition_is_legal() {
        let registry = HostRegistry::new(HostConfig {
            threads: 1,
            ..HostConfig::default()
        });
        registry.host_for(CostModel::unit()).unwrap();
        let stats = registry.stats().unwrap();
        assert_eq!(stats.len(), 1);
    }

    #[test]
    fn install_replaces_the_model_host() {
        let registry = HostRegistry::new(HostConfig {
            threads: 1,
            ..HostConfig::default()
        });
        let mut warm = SynthesisEngine::unit_cost_with_threads(1);
        warm.expand_to_cost(4);
        registry.install(warm).unwrap();
        let host = registry.host_for(CostModel::unit()).unwrap();
        assert_eq!(host.stats().unwrap().completed, Some(4));
    }

    /// Regression for the self-healing path: a panic while holding the
    /// engine write lock used to condemn the host forever (every later
    /// request got `Poisoned`); now the first request to trip over the
    /// poison rebuilds the engine from the last-good snapshot bytes and
    /// is answered normally.
    #[test]
    fn poisoned_engine_heals_on_next_request() {
        let host = Arc::new(unit_host(7));
        host.synthesize(&known::peres_perm(), 5).unwrap(); // warm to 4
        let panicked = std::thread::spawn({
            let host = Arc::clone(&host);
            move || {
                let _guard = host.engine.write().unwrap();
                panic!("injected writer panic");
            }
        })
        .join();
        assert!(panicked.is_err());
        // The last-good bytes predate the warming census, so the healed
        // engine is cold again — but it answers, and it answers the
        // same: the rebuild replays the expansion it needs.
        let syn = host.synthesize(&known::peres_perm(), 5).unwrap().unwrap();
        assert_eq!(syn.cost, 4);
        let stats = host.stats().unwrap();
        assert_eq!(stats.rebuilds, 1);
        // Healing is idempotent: later requests see a healthy host.
        assert!(host
            .synthesize(&known::toffoli_perm(), 5)
            .unwrap()
            .is_some());
        assert_eq!(host.stats().unwrap().rebuilds, 1);
    }

    #[test]
    fn deadline_sheds_waiters_but_not_cache_hits() {
        let host = EngineHost::with_limits(SynthesisEngine::unit_cost_with_threads(1), 7, 200);
        host.census(4).unwrap(); // warm to cost 4
                                 // A zero budget is fine for a cache hit: no waiting happens.
        let hit = host
            .synthesize_with_options(&known::peres_perm(), 4, ServeStrategy::Uni, Some(0))
            .unwrap();
        assert!(hit.is_some());
        // A miss with a zero budget sheds before expanding.
        let err = host
            .synthesize_with_options(&known::toffoli_perm(), 5, ServeStrategy::Uni, Some(0))
            .unwrap_err();
        assert_eq!(err, HostError::DeadlineExceeded { deadline_ms: 0 });
        assert_eq!(host.stats().unwrap().deadline_timeouts, 1);
        // Budgets are capped by the host's configured maximum: asking
        // for more than the cap runs under the cap.
        let capped = EngineHost::with_limits(SynthesisEngine::unit_cost_with_threads(1), 7, 0);
        let err = capped
            .synthesize_with_options(&known::toffoli_perm(), 5, ServeStrategy::Uni, Some(10_000))
            .unwrap_err();
        assert_eq!(err, HostError::DeadlineExceeded { deadline_ms: 0 });
        // And the same miss succeeds once a real budget lets it expand.
        assert!(host
            .synthesize_with_options(&known::toffoli_perm(), 5, ServeStrategy::Uni, None)
            .unwrap()
            .is_some());
    }
}
