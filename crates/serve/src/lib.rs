//! `mvq_serve` — the long-lived synthesis service.
//!
//! The one-shot CLI pays `expand_to_cost` on every invocation; this
//! crate turns the warm [`mvq_core::SynthesisEngine`] into a resident
//! process whose accumulated search state is an asset shared across
//! queries and — via `mvq_core` snapshots — across restarts. Three
//! layers:
//!
//! 1. **Engine host** ([`EngineHost`], [`HostRegistry`]): one warm
//!    engine per cost model behind a readers-writer cache manager.
//!    Already-expanded queries run concurrently as readers; cache
//!    misses funnel through a single-flight expansion path, so N
//!    concurrent requests needing the same level pay for one expansion.
//!    Per-query cost-bound admission keeps deep queries from starving
//!    shallow ones, and a per-query serving strategy ([`ServeStrategy`])
//!    lets deep targets meet in the middle on the read side instead of
//!    deepening the shared forward levels.
//! 2. **Snapshots** (in `mvq_core`): the service cold-starts warm by
//!    loading a level-cache snapshot, and can be pointed at the same
//!    file the one-shot CLI (`mvq census --snapshot …`) maintains.
//! 3. **Transport** ([`Server`]): a hand-rolled HTTP/1.1 server over
//!    `std::net` (the environment is offline; no external deps) with a
//!    small JSON schema — `/synthesize`, `/census`, `/healthz`,
//!    `/stats`, `/shutdown`, plus the observability endpoints
//!    `/metrics` (Prometheus text) and `/debug/slow` — sequential
//!    keep-alive, a worker pool, and graceful shutdown. Each request
//!    emits one structured trace line (see [`ServeObs`]).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use mvq_serve::{HostConfig, HostRegistry, Server};
//!
//! let registry = Arc::new(HostRegistry::new(HostConfig {
//!     threads: 1,
//!     ..HostConfig::default()
//! }));
//! let server = Server::bind("127.0.0.1:0", registry).unwrap();
//! let handle = server.handle().unwrap();
//! let runner = std::thread::spawn(move || server.run(2));
//! // … issue HTTP requests against handle.addr() …
//! handle.shutdown();
//! runner.join().unwrap().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod host;
mod http;
mod json;
mod lockrank;
mod obs;
mod server;

pub use host::{
    CensusReply, EngineHost, HostConfig, HostError, HostRegistry, HostStats, ServeStrategy,
    ServeTrace,
};
pub use http::{read_request, write_response, Request};
pub use json::{CensusRequest, ModelSpec, SynthesizeReply, SynthesizeRequest};
pub use obs::ServeObs;
pub use server::{Server, ServerHandle};
