//! The project-invariant rule passes.
//!
//! Each rule walks the token stream of one file (see [`crate::lexer`])
//! with the file's workspace-relative path deciding which rules apply.
//! Test code — files under `tests/` or `benches/`, and `#[cfg(test)]` /
//! `#[test]` items inside `src` files — is exempt from the behavioural
//! rules (determinism, panic-freedom, concurrency) but **not** from the
//! unsafe audit: a SAFETY justification is owed everywhere.

use std::fmt;

use crate::lexer::{lex, Comment, Lexed, Token, TokenKind};

/// The rule a violation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Search-state modules must hash deterministically and never read
    /// ambient time or randomness.
    Determinism,
    /// Request-path code in `crates/serve` must not panic without an
    /// annotated justification.
    PanicFreedom,
    /// Every `unsafe` needs an adjacent `// SAFETY:` comment.
    UnsafeAudit,
    /// Threads are spawned only by `par::WorkerPool` and the serve
    /// accept loop.
    Concurrency,
    /// Snapshot-path writes must go through the durable-write helper
    /// (no bare `fs::write` / `File::create`), so every published file
    /// is fsynced and keeps its `.bak` sibling.
    Persistence,
    /// Metric increment-path code stays lock- and allocation-free
    /// (request threads bump counters on every request), and every
    /// counter/histogram registration names a snake_case metric with a
    /// unit suffix.
    Obs,
    /// Interprocedural: ranked serve locks are only ever acquired in
    /// ascending rank order, on every static call path (the compile-time
    /// twin of the runtime lock-rank witness).
    LockOrder,
    /// Interprocedural: no panic site (`unwrap`/`expect`/`panic!`/…) is
    /// reachable from the serve request path through any call chain,
    /// including helpers in other crates.
    PanicPath,
    /// Interprocedural: nothing reachable from the metric increment
    /// path locks, allocates, or does I/O.
    ObsPurity,
    /// Interprocedural: no ambient time/randomness source is reachable
    /// from the deterministic search-state modules through any call
    /// chain.
    DeterminismTaint,
}

/// Every rule, in reporting order.
pub const ALL_RULES: [Rule; 10] = [
    Rule::Determinism,
    Rule::PanicFreedom,
    Rule::UnsafeAudit,
    Rule::Concurrency,
    Rule::Persistence,
    Rule::Obs,
    Rule::LockOrder,
    Rule::PanicPath,
    Rule::ObsPurity,
    Rule::DeterminismTaint,
];

impl Rule {
    /// The short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::PanicFreedom => "panic",
            Rule::UnsafeAudit => "unsafe",
            Rule::Concurrency => "threads",
            Rule::Persistence => "persistence",
            Rule::Obs => "obs",
            Rule::LockOrder => "lock_order",
            Rule::PanicPath => "panic_path",
            Rule::ObsPurity => "obs_purity",
            Rule::DeterminismTaint => "determinism_taint",
        }
    }

    /// The key accepted by `// lint: allow(<key>) <reason>`.
    /// [`Rule::UnsafeAudit`] has no allow-key: the escape hatch *is* the
    /// `// SAFETY:` comment the rule demands.
    ///
    /// The interprocedural passes share their per-file counterpart's key
    /// (`panic_path` honours `allow(panic)`, and so on): a site vetted
    /// for direct use is vetted however it is reached.
    pub(crate) fn allow_key(self) -> Option<&'static str> {
        match self {
            Rule::Determinism | Rule::DeterminismTaint => Some("determinism"),
            Rule::PanicFreedom | Rule::PanicPath => Some("panic"),
            Rule::Concurrency => Some("threads"),
            Rule::Persistence => Some("persistence"),
            Rule::Obs | Rule::ObsPurity => Some("obs"),
            Rule::LockOrder => Some("lock_order"),
            Rule::UnsafeAudit => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One step of an interprocedural call chain, outermost first: the
/// function the step executes in and the line of the call (or, for the
/// last frame, the offending site itself).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line of the call / site inside `function`.
    pub line: u32,
    /// The enclosing function's name.
    pub function: String,
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The violated rule.
    pub rule: Rule,
    /// What went wrong, with the fix spelled out.
    pub message: String,
    /// For interprocedural findings: the call chain from the analysis
    /// root to the site, outermost first. Empty for per-file findings.
    pub frames: Vec<Frame>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )?;
        for frame in &self.frames {
            write!(
                f,
                "\n    via {}:{} in `{}`",
                frame.file, frame.line, frame.function
            )?;
        }
        Ok(())
    }
}

/// The interprocedural passes need the same module lists.
pub(crate) const fn determinism_modules() -> [&'static str; 5] {
    DETERMINISM_MODULES
}

/// See [`determinism_modules`].
pub(crate) const fn obs_increment_modules() -> [&'static str; 2] {
    OBS_INCREMENT_MODULES
}

/// Scans the balanced `<…>` starting at `open` (which holds `<`) and
/// reports whether any identifier inside names an FNV hasher. Shared
/// between the per-file determinism rule and the interprocedural taint
/// pass.
pub(crate) fn generic_args_name_fnv(tokens: &[Token], open: usize) -> bool {
    let mut depth = 0i32;
    let mut saw_fnv = false;
    // Bounded scan: a `<` that is really a comparison never closes,
    // and we must not walk the rest of the file.
    for j in open..tokens.len().min(open + 256) {
        let t = &tokens[j];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            // `->` in fn-pointer types does not close a bracket.
            if j > 0 && tokens[j - 1].is_punct('-') {
                continue;
            }
            depth -= 1;
            if depth == 0 {
                return saw_fnv;
            }
        } else if t.kind == TokenKind::Ident && t.text.starts_with("Fnv") {
            saw_fnv = true;
        }
    }
    // Unclosed: treat as "not a generic application" (comparison
    // expression) rather than a violation.
    true
}

/// The `mvq_core` modules that hold reproducible search state: the
/// engine's level tables, both meet-in-the-middle frontiers, the
/// sharded parallel expansion, the census, and the snapshot codec.
/// Bit-identical state at every thread count is the repo's headline
/// claim, so these modules may not hash nondeterministically nor read
/// ambient time/randomness.
const DETERMINISM_MODULES: [&str; 5] = [
    "crates/core/src/engine.rs",
    "crates/core/src/mitm.rs",
    "crates/core/src/par.rs",
    "crates/core/src/census.rs",
    "crates/core/src/snapshot.rs",
];

/// Files allowed to call `thread::spawn` / `thread::scope`: the worker
/// pool that everything else must route through, and the serve accept
/// loop (connection handlers are not expansion work).
const THREAD_ALLOWLIST: [&str; 2] = ["crates/core/src/par.rs", "crates/serve/src/server.rs"];

/// Modules that publish files other processes load back (the snapshot
/// codec). Every write there must go through the durable-write helper —
/// a bare `fs::write` / `File::create` can publish a torn file and has
/// no `.bak` rotation.
const PERSISTENCE_MODULES: [&str; 1] = ["crates/core/src/snapshot.rs"];

/// The `mvq_obs` modules holding the metric increment path (counter
/// bumps, histogram records, probe callbacks). Request threads hit
/// these on every request, so they must stay lock-free and
/// allocation-free: atomics only.
const OBS_INCREMENT_MODULES: [&str; 2] = ["crates/obs/src/metrics.rs", "crates/obs/src/probe.rs"];

/// Registration methods whose first argument is a metric name, paired
/// with whether the naming contract demands a unit suffix (gauges are
/// instantaneous readings, so they carry none).
const REGISTRATION_METHODS: [(&str, bool); 4] = [
    ("counter", true),
    ("counter_fn", true),
    ("histogram", true),
    ("gauge", false),
];

/// The unit suffixes the metric naming contract accepts.
const UNIT_SUFFIXES: [&str; 3] = ["_us", "_bytes", "_total"];

/// How far above an `unsafe` token a `// SAFETY:` comment may end and
/// still count as adjacent (attributes and a multi-line justification
/// fit; a stale comment three screens up does not).
const SAFETY_WINDOW: u32 = 8;

/// Which rules apply to a file, derived from its workspace-relative
/// path.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FileClass {
    /// Whole file is test/bench code.
    pub(crate) test_class: bool,
    determinism: bool,
    panic_free: bool,
    thread_allowed: bool,
    persistence: bool,
    obs_increment: bool,
}

impl FileClass {
    pub(crate) fn of(rel: &str) -> Self {
        let test_class = rel
            .split('/')
            .any(|part| part == "tests" || part == "benches");
        Self {
            test_class,
            determinism: DETERMINISM_MODULES.contains(&rel),
            panic_free: rel.starts_with("crates/serve/src/"),
            thread_allowed: test_class
                || THREAD_ALLOWLIST.contains(&rel)
                || rel.starts_with("crates/bench/"),
            persistence: PERSISTENCE_MODULES.contains(&rel),
            obs_increment: OBS_INCREMENT_MODULES.contains(&rel),
        }
    }
}

/// Lints one source file. `rel` is the workspace-relative path with
/// forward slashes (it selects the applicable rules).
pub fn check_source(rel: &str, source: &str) -> Vec<Violation> {
    let lexed = lex(source);
    check_lexed(rel, source, &lexed)
}

/// The per-file rule passes over an already-lexed file (the parse cache
/// lexes once and shares the result with the interprocedural passes).
pub(crate) fn check_lexed(rel: &str, source: &str, lexed: &Lexed) -> Vec<Violation> {
    let class = FileClass::of(rel);
    let allows = Allows::parse(&lexed.comments);
    let file = FileCheck {
        rel,
        class,
        test_spans: find_test_spans(&lexed.tokens),
        allows: Allows::parse(&lexed.comments),
        lexed,
        violations: Vec::new(),
    };
    let mut violations = file.run();
    if !class.test_class {
        scan_metric_names(rel, source, &allows, &mut violations);
    }
    violations
}

/// Parsed `// lint: allow(<key>) <reason>` annotations, by line.
pub(crate) struct Allows {
    /// `(line the comment ends on, key, reason_present)`.
    entries: Vec<(u32, String, bool)>,
}

impl Allows {
    pub(crate) fn parse(comments: &[Comment]) -> Self {
        let entries = comments
            .iter()
            .filter_map(|c| {
                let rest = c.text.strip_prefix("lint:")?.trim_start();
                let rest = rest.strip_prefix("allow(")?;
                let (key, reason) = rest.split_once(')')?;
                Some((
                    c.end_line,
                    key.trim().to_string(),
                    !reason.trim().is_empty(),
                ))
            })
            .collect();
        Self { entries }
    }

    /// Whether `line` (or the line above it) carries `allow(key)`.
    /// Returns `Some(reason_present)` so the caller can reject a
    /// reason-less annotation.
    pub(crate) fn lookup(&self, line: u32, key: &str) -> Option<bool> {
        self.entries
            .iter()
            .find(|(l, k, _)| (*l == line || *l + 1 == line) && k == key)
            .map(|(_, _, has_reason)| *has_reason)
    }
}

struct FileCheck<'a> {
    rel: &'a str,
    class: FileClass,
    /// Token-index ranges covered by `#[cfg(test)]` / `#[test]` items.
    test_spans: Vec<(usize, usize)>,
    allows: Allows,
    lexed: &'a Lexed,
    violations: Vec<Violation>,
}

impl FileCheck<'_> {
    fn run(mut self) -> Vec<Violation> {
        // Indexing (not iterating) because every rule pass borrows
        // `self` mutably while peeking neighbouring tokens by index.
        #[allow(clippy::needless_range_loop)]
        for i in 0..self.lexed.tokens.len() {
            if self.lexed.tokens[i].kind != TokenKind::Ident {
                continue;
            }
            let in_test = self.class.test_class || self.in_test_span(i);
            if self.class.determinism && !in_test {
                self.determinism(i);
            }
            if self.class.panic_free && !in_test {
                self.panic_freedom(i);
            }
            self.unsafe_audit(i);
            if !self.class.thread_allowed && !in_test {
                self.concurrency(i);
            }
            if self.class.persistence && !in_test {
                self.persistence(i);
            }
            if self.class.obs_increment && !in_test {
                self.obs_increment(i);
            }
        }
        self.violations
    }

    fn in_test_span(&self, idx: usize) -> bool {
        self.test_spans
            .iter()
            .any(|&(start, end)| (start..=end).contains(&idx))
    }

    /// Records `idx`'s token as a violation of `rule` unless an
    /// annotation with a reason covers its line.
    fn report(&mut self, idx: usize, rule: Rule, message: String) {
        let line = self.lexed.tokens[idx].line;
        report_with_allow(
            &self.allows,
            self.rel,
            line,
            rule,
            message,
            &mut self.violations,
        );
    }

    fn tok(&self, idx: usize) -> Option<&Token> {
        self.lexed.tokens.get(idx)
    }

    fn is_path_sep(&self, idx: usize) -> bool {
        self.tok(idx).is_some_and(|t| t.is_punct(':'))
            && self.tok(idx + 1).is_some_and(|t| t.is_punct(':'))
    }

    // ── Rule 1: determinism ────────────────────────────────────────

    fn determinism(&mut self, i: usize) {
        let tokens = &self.lexed.tokens;
        let text = tokens[i].text.as_str();
        match text {
            "HashMap" | "HashSet" => {
                // `HashMap<…>` / `HashMap::<…>`: the generic args must
                // name a deterministic hasher.
                let open = if self.tok(i + 1).is_some_and(|t| t.is_punct('<')) {
                    Some(i + 1)
                } else if self.is_path_sep(i + 1)
                    && self.tok(i + 3).is_some_and(|t| t.is_punct('<'))
                {
                    Some(i + 3)
                } else {
                    None
                };
                if let Some(open) = open {
                    if !self.generic_args_name_fnv(open) {
                        self.report(
                            i,
                            Rule::Determinism,
                            format!(
                                "`{text}` in a search-state module must name a deterministic \
                                 hasher (e.g. `{text}<…, FnvBuildHasher>`) — the std default \
                                 `RandomState` makes iteration order differ between runs"
                            ),
                        );
                    }
                } else if self.is_path_sep(i + 1)
                    && self
                        .tok(i + 3)
                        .is_some_and(|t| t.text == "new" || t.text == "with_capacity")
                {
                    // `HashMap::new()` / `with_capacity()` only exist for
                    // the RandomState default.
                    self.report(
                        i,
                        Rule::Determinism,
                        format!(
                            "`{text}::{}` pins the nondeterministic `RandomState` hasher; \
                             use `{text}::default()` on an `FnvBuildHasher`-typed binding \
                             (or `with_capacity_and_hasher`)",
                            self.tok(i + 3).map_or("new", |t| t.text.as_str()),
                        ),
                    );
                }
            }
            "Instant" | "SystemTime" => {
                self.report(
                    i,
                    Rule::Determinism,
                    format!(
                        "`{text}` is an ambient time source; search-state modules must be \
                         reproducible — measure wall-clock at the caller (CLI/bench/serve) instead"
                    ),
                );
            }
            "thread_rng" | "random" => {
                self.report(
                    i,
                    Rule::Determinism,
                    format!("`{text}` injects ambient randomness into reproducible search state"),
                );
            }
            "rand" if self.is_path_sep(i + 1) => {
                self.report(
                    i,
                    Rule::Determinism,
                    "the `rand` crate must not be used from search-state modules".to_string(),
                );
            }
            _ => {}
        }
    }

    /// Scans the balanced `<…>` starting at `open` (which holds `<`) and
    /// reports whether any identifier inside names an FNV hasher.
    fn generic_args_name_fnv(&self, open: usize) -> bool {
        generic_args_name_fnv(&self.lexed.tokens, open)
    }

    // ── Rule 2: panic-freedom in serve ─────────────────────────────

    fn panic_freedom(&mut self, i: usize) {
        let tokens = &self.lexed.tokens;
        let text = tokens[i].text.as_str();
        let followed_by_bang = self.tok(i + 1).is_some_and(|t| t.is_punct('!'));
        let method_call = i > 0
            && tokens[i - 1].is_punct('.')
            && self.tok(i + 1).is_some_and(|t| t.is_punct('('));
        match text {
            "unwrap" | "expect" if method_call => {
                self.report(
                    i,
                    Rule::PanicFreedom,
                    format!(
                        "`.{text}()` on the serve request path can take the whole worker down; \
                         return a typed `HostError` / map to a 4xx instead, or justify with \
                         `// lint: allow(panic) <reason>`"
                    ),
                );
            }
            "panic" | "unreachable" | "todo" | "unimplemented" if followed_by_bang => {
                self.report(
                    i,
                    Rule::PanicFreedom,
                    format!(
                        "`{text}!` in serve request-path code; return a typed error, or justify \
                         with `// lint: allow(panic) <reason>`"
                    ),
                );
            }
            _ => {}
        }
    }

    // ── Rule 3: unsafe audit ───────────────────────────────────────

    fn unsafe_audit(&mut self, i: usize) {
        let token = &self.lexed.tokens[i];
        if token.text != "unsafe" {
            return;
        }
        let line = token.line;
        let justified = self.lexed.comments.iter().any(|c| {
            c.text.contains("SAFETY:") && c.end_line <= line && c.end_line + SAFETY_WINDOW >= line
        });
        if !justified {
            self.violations.push(Violation {
                file: self.rel.to_string(),
                line,
                rule: Rule::UnsafeAudit,
                message: format!(
                    "`unsafe` without an adjacent `// SAFETY:` comment (within {SAFETY_WINDOW} \
                     lines above) stating why the invariants hold"
                ),
                frames: Vec::new(),
            });
        }
    }

    // ── Rule 4: concurrency discipline ─────────────────────────────

    fn concurrency(&mut self, i: usize) {
        let token = &self.lexed.tokens[i];
        if token.text != "thread" || !self.is_path_sep(i + 1) {
            return;
        }
        let Some(callee) = self.tok(i + 3) else {
            return;
        };
        if callee.text == "spawn" || callee.text == "scope" {
            self.report(
                i,
                Rule::Concurrency,
                format!(
                    "`thread::{}` outside `par.rs` / the serve accept loop; route parallel \
                     work through `par::WorkerPool` so thread counts stay centrally resolved",
                    callee.text
                ),
            );
        }
    }

    // ── Rule 5: durable persistence ────────────────────────────────

    fn persistence(&mut self, i: usize) {
        let tokens = &self.lexed.tokens;
        let text = tokens[i].text.as_str();
        if i < 3 || !self.is_path_sep(i - 2) {
            return;
        }
        let owner = tokens[i - 3].text.as_str();
        let flagged = match text {
            "write" => owner == "fs",
            "create" | "create_new" => owner == "File",
            _ => return,
        };
        if flagged {
            self.report(
                i,
                Rule::Persistence,
                format!(
                    "`{owner}::{text}` in a persistence module publishes a file without fsync \
                     or `.bak` rotation; route it through the durable-write helper, or justify \
                     with `// lint: allow(persistence) <reason>`"
                ),
            );
        }
    }

    // ── Rule 6: lock/alloc-free metric increments ──────────────────

    fn obs_increment(&mut self, i: usize) {
        let tokens = &self.lexed.tokens;
        let text = tokens[i].text.as_str();
        let followed_by_bang = self.tok(i + 1).is_some_and(|t| t.is_punct('!'));
        let method_call = i > 0
            && tokens[i - 1].is_punct('.')
            && self.tok(i + 1).is_some_and(|t| t.is_punct('('));
        let flagged = match text {
            "Mutex" | "RwLock" | "Condvar" | "String" | "Vec" | "Box" => true,
            "lock" | "to_string" | "to_owned" | "to_vec" => method_call,
            "format" | "vec" => followed_by_bang,
            _ => false,
        };
        if flagged {
            self.report(
                i,
                Rule::Obs,
                format!(
                    "`{text}` in a metric increment-path module; counter bumps and histogram \
                     records run on every request and must stay lock- and allocation-free \
                     (atomics only), or justify with `// lint: allow(obs) <reason>`"
                ),
            );
        }
    }
}

/// Pushes a violation of `rule` at `rel:line` unless a
/// `// lint: allow(<key>) <reason>` annotation covers the line (shared
/// by the token passes and the raw-source metric-name scan).
pub(crate) fn report_with_allow(
    allows: &Allows,
    rel: &str,
    line: u32,
    rule: Rule,
    message: String,
    out: &mut Vec<Violation>,
) {
    match rule.allow_key().and_then(|key| allows.lookup(line, key)) {
        Some(true) => {}
        Some(false) => out.push(Violation {
            file: rel.to_string(),
            line,
            rule,
            message: format!(
                "`// lint: allow({})` needs a reason after the closing paren",
                rule.allow_key().unwrap_or_default()
            ),
            frames: Vec::new(),
        }),
        None => out.push(Violation {
            file: rel.to_string(),
            line,
            rule,
            message,
            frames: Vec::new(),
        }),
    }
}

/// Raw-source scan for metric registrations: the lexer does not
/// tokenize string-literal contents, so the token passes cannot see
/// metric names. Applies everywhere outside test code — registrations
/// live in obs and serve today, but a registration breaking the naming
/// contract is wrong wherever it appears. Source after the first
/// `#[cfg(test)]` is skipped (test modules sit at the bottom of files
/// in this workspace).
fn scan_metric_names(rel: &str, source: &str, allows: &Allows, out: &mut Vec<Violation>) {
    let cut = source.find("#[cfg(test)]").unwrap_or(source.len());
    let scanned = &source[..cut];
    for (method, needs_suffix) in REGISTRATION_METHODS {
        // Built at runtime so this file's own source never contains the
        // needle (the workspace lints itself).
        let needle = format!(".{method}(");
        let mut from = 0;
        while let Some(pos) = scanned[from..].find(&needle) {
            let after = from + pos + needle.len();
            from = after;
            // The name may sit on the next line (rustfmt wraps long
            // registrations), so skip whitespace before the quote.
            let rest = &scanned[after..];
            let trimmed = rest.trim_start();
            let Some(name_rest) = trimmed.strip_prefix('"') else {
                continue; // first argument is not a string literal
            };
            let Some(end) = name_rest.find('"') else {
                continue;
            };
            let name = &name_rest[..end];
            let offset = after + (rest.len() - trimmed.len());
            if let Some(problem) = metric_name_problem(name, needs_suffix) {
                report_with_allow(
                    allows,
                    rel,
                    line_of(scanned, offset),
                    Rule::Obs,
                    problem,
                    out,
                );
            }
        }
    }
}

/// Why `name` breaks the metric naming contract, if it does.
fn metric_name_problem(name: &str, needs_suffix: bool) -> Option<String> {
    let snake = name.chars().next().is_some_and(|c| c.is_ascii_lowercase())
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
    if !snake {
        return Some(format!(
            "metric name `{name}` must be snake_case: lowercase letters, digits and `_`, \
             starting with a letter"
        ));
    }
    if needs_suffix && !UNIT_SUFFIXES.iter().any(|s| name.ends_with(s)) {
        return Some(format!(
            "metric name `{name}` needs a unit suffix (`_us`, `_bytes` or `_total`) so the \
             unit reads off the name"
        ));
    }
    None
}

/// 1-based line number of byte `offset` in `source`.
fn line_of(source: &str, offset: usize) -> u32 {
    let newlines = source[..offset].bytes().filter(|&b| b == b'\n').count();
    u32::try_from(newlines + 1).unwrap_or(u32::MAX)
}

/// Finds token-index ranges belonging to `#[cfg(test)]` / `#[test]` /
/// `#[cfg(all(test, …))]` items: the attribute, then (skipping any
/// further attributes) the next item through its closing brace or
/// semicolon.
pub(crate) fn find_test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_punct('#') || !tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            i += 1;
            continue;
        }
        let (attr_end, mentions_test) = scan_attribute(tokens, i + 1);
        if !mentions_test {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut j = attr_end + 1;
        while j < tokens.len()
            && tokens[j].is_punct('#')
            && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            j = scan_attribute(tokens, j + 1).0 + 1;
        }
        // The item body: through the matching `}` of its first brace, or
        // a top-level `;` (e.g. `#[cfg(test)] use …;`).
        let mut depth = 0i32;
        let mut end = j;
        while end < tokens.len() {
            let t = &tokens[end];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.is_punct(';') && depth == 0 {
                break;
            }
            end += 1;
        }
        spans.push((i, end));
        i = end + 1;
    }
    spans
}

/// Scans a `[…]` attribute starting at `open` (the `[`); returns the
/// index of the closing `]` and whether the ident `test` appears inside.
fn scan_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut mentions_test = false;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return (j, mentions_test);
            }
        } else if t.is_ident("test") {
            mentions_test = true;
        }
    }
    (tokens.len().saturating_sub(1), mentions_test)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(rel: &str, source: &str) -> Vec<Violation> {
        check_source(rel, source)
    }

    const CORE: &str = "crates/core/src/engine.rs";
    const SERVE: &str = "crates/serve/src/host.rs";

    #[test]
    fn hashmap_without_fnv_is_flagged() {
        let v = check(CORE, "struct S { m: HashMap<u64, u32> }");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::Determinism);
        assert!(check(CORE, "struct S { m: HashMap<u64, u32, FnvBuildHasher> }").is_empty());
        assert!(check(CORE, "type T = Vec<HashMap<K, V, FnvBuildHasher>>;").is_empty());
    }

    #[test]
    fn hashmap_new_is_flagged_but_default_is_not() {
        assert_eq!(check(CORE, "fn f() { let m = HashMap::new(); }").len(), 1);
        assert_eq!(
            check(CORE, "fn f() { let m = HashMap::with_capacity(8); }").len(),
            1
        );
        assert!(check(CORE, "fn f() { let m: Seen = HashMap::default(); }").is_empty());
        assert!(check(
            CORE,
            "fn f() { let m: Seen = HashMap::with_capacity_and_hasher(8, Default::default()); }"
        )
        .is_empty());
    }

    #[test]
    fn comparisons_are_not_generic_args() {
        // `a < b` must not start a runaway bracket scan that eats `>`.
        assert!(check(CORE, "fn f(a: usize) { if a < 3 { g(); } }").is_empty());
    }

    #[test]
    fn ambient_time_is_flagged_outside_tests() {
        let v = check(CORE, "fn f() { let t = Instant::now(); }");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("ambient time"));
        assert!(check(
            CORE,
            "#[cfg(test)]\nmod tests { #[test] fn t() { let t = Instant::now(); } }"
        )
        .is_empty());
        // Other files may time freely.
        assert!(check("crates/cli/src/commands.rs", "fn f() { Instant::now(); }").is_empty());
    }

    #[test]
    fn serve_unwrap_needs_annotation() {
        assert_eq!(check(SERVE, "fn f() { x.unwrap(); }").len(), 1);
        assert!(check(
            SERVE,
            "fn f() {\n    // lint: allow(panic) poisoned only by a panicked writer\n    x.unwrap();\n}"
        )
        .is_empty());
        // Same-line annotation also counts.
        assert!(check(
            SERVE,
            "fn f() { x.unwrap(); } // lint: allow(panic) infallible by construction"
        )
        .is_empty());
        // A reason is mandatory.
        let v = check(SERVE, "// lint: allow(panic)\nfn f() { x.unwrap(); }");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("reason"));
    }

    #[test]
    fn serve_panic_macros_are_flagged_and_unwrap_or_is_not() {
        assert_eq!(check(SERVE, "fn f() { panic!(\"boom\"); }").len(), 1);
        assert_eq!(check(SERVE, "fn f() { unreachable!() }").len(), 1);
        assert!(check(SERVE, "fn f() { x.unwrap_or(0); y.unwrap_or_else(g); }").is_empty());
        // unwrap inside #[cfg(test)] is test code.
        assert!(check(
            SERVE,
            "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); panic!(); } }"
        )
        .is_empty());
    }

    #[test]
    fn unsafe_needs_safety_comment_even_in_tests() {
        let v = check(CORE, "fn f() { unsafe { g() } }");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UnsafeAudit);
        assert!(check(
            CORE,
            "fn f() {\n    // SAFETY: g has no invariants here\n    unsafe { g() }\n}"
        )
        .is_empty());
        let v = check(
            CORE,
            "#[cfg(test)]\nmod tests { fn t() { unsafe { g() } } }",
        );
        assert_eq!(v.len(), 1, "unsafe audit applies to test code too");
    }

    #[test]
    fn safety_comment_too_far_away_does_not_count() {
        let far = format!("// SAFETY: stale\n{}unsafe {{ g() }}", "\n".repeat(12));
        assert_eq!(check(CORE, &far).len(), 1);
    }

    #[test]
    fn forbid_unsafe_code_attribute_is_not_an_unsafe_token() {
        assert!(check(CORE, "#![forbid(unsafe_code)]").is_empty());
    }

    #[test]
    fn thread_spawn_is_flagged_outside_the_allowlist() {
        let v = check(
            "crates/sim/src/state.rs",
            "fn f() { std::thread::spawn(|| {}); }",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::Concurrency);
        assert!(check(
            "crates/core/src/par.rs",
            "fn f() { std::thread::spawn(|| {}); }"
        )
        .iter()
        .all(|v| v.rule != Rule::Concurrency));
        assert!(check(
            "crates/serve/src/server.rs",
            "fn f() { std::thread::scope(|s| {}); }"
        )
        .is_empty());
        assert!(check(
            "crates/bench/src/bin/serve_load.rs",
            "fn f() { std::thread::scope(|s| {}); }"
        )
        .is_empty());
        // Test files and #[cfg(test)] regions may spawn.
        assert!(check("tests/tests/x.rs", "fn f() { std::thread::spawn(|| {}); }").is_empty());
        assert!(check(
            "crates/sim/src/state.rs",
            "#[cfg(test)]\nmod tests { fn t() { std::thread::scope(|s| {}); } }"
        )
        .is_empty());
    }

    #[test]
    fn bare_snapshot_writes_are_flagged() {
        const SNAP: &str = "crates/core/src/snapshot.rs";
        let v = check(SNAP, "fn f() { std::fs::write(path, bytes)?; }");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::Persistence);
        let v = check(SNAP, "fn f() { let file = File::create(path)?; }");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::Persistence);
        // The sanctioned escape hatch (the durable-write helper itself).
        assert!(check(
            SNAP,
            "fn f() {\n    // lint: allow(persistence) fsynced and renamed below\n    let file = File::create(path)?;\n}"
        )
        .is_empty());
        // A reason is mandatory.
        let v = check(
            SNAP,
            "// lint: allow(persistence)\nfn f() { std::fs::write(path, bytes)?; }",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("reason"));
    }

    #[test]
    fn persistence_rule_is_scoped_and_ignores_writer_methods() {
        const SNAP: &str = "crates/core/src/snapshot.rs";
        // Other modules may write files however they like.
        assert!(check(
            "crates/cli/src/commands.rs",
            "fn f() { std::fs::write(path, bytes)?; }"
        )
        .is_empty());
        // `Write::write` method calls and reads are not publications.
        assert!(check(SNAP, "fn f() { file.write_all(bytes)?; }").is_empty());
        assert!(check(SNAP, "fn f() { let b = std::fs::read(path)?; }").is_empty());
        // Test code in the module is exempt.
        assert!(check(
            SNAP,
            "#[cfg(test)]\nmod tests { fn t() { std::fs::write(p, b).unwrap(); } }"
        )
        .is_empty());
    }

    #[test]
    fn obs_increment_path_must_be_lock_and_alloc_free() {
        const OBS: &str = "crates/obs/src/metrics.rs";
        let v = check(OBS, "struct C { v: std::sync::Mutex<u64> }");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::Obs);
        assert_eq!(check(OBS, "fn f(m: &M) { m.inner.lock(); }").len(), 1);
        assert_eq!(
            check(OBS, "fn f(x: u64) { let s = x.to_string(); }").len(),
            1
        );
        // `String` return + `format!` body: two allocation sites.
        assert_eq!(
            check(OBS, "fn f() -> String { format!(\"{}\", 1) }").len(),
            2
        );
        // The real increment path: atomics are fine.
        assert!(check(
            OBS,
            "fn inc(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }"
        )
        .is_empty());
        // The escape hatch (scrape-time code may allocate)…
        assert!(check(
            OBS,
            "fn f() {\n    // lint: allow(obs) scrape path, not the increment path\n    let v = Vec::new();\n}"
        )
        .is_empty());
        // …and modules off the increment path are out of scope.
        assert!(check(
            "crates/obs/src/registry.rs",
            "fn f() { let v = Vec::new(); }"
        )
        .is_empty());
    }

    #[test]
    fn metric_registration_names_are_checked() {
        const REG: &str = "crates/serve/src/obs.rs";
        let v = check(REG, "fn f(r: &Registry) { r.counter(\"BadName\", \"h\"); }");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::Obs);
        assert!(v[0].message.contains("snake_case"), "{v:?}");
        let v = check(
            REG,
            "fn f(r: &Registry) { r.histogram(\"latency\", \"h\"); }",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("unit suffix"), "{v:?}");
        // A rustfmt-wrapped registration: the name sits on its own line.
        let v = check(
            REG,
            "fn f(r: &Registry) {\n    r.counter_fn(\n        \"wrapped\",\n        \"h\",\n        || 1,\n    );\n}",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 3);
        // Contract-following names pass; gauges need no suffix.
        assert!(check(
            REG,
            "fn f(r: &Registry) { r.counter(\"requests_total\", \"h\"); \
             r.histogram(\"wait_us\", \"h\"); r.gauge(\"depth\", \"h\"); }"
        )
        .is_empty());
        // Test code is exempt, both by path and by `#[cfg(test)]`.
        assert!(check(
            "tests/tests/x.rs",
            "fn f(r: &Registry) { r.counter(\"Bad\", \"h\"); }"
        )
        .is_empty());
        assert!(check(
            REG,
            "#[cfg(test)]\nmod tests { fn t(r: &Registry) { r.counter(\"Bad\", \"h\"); } }"
        )
        .is_empty());
    }

    #[test]
    fn strings_and_comments_never_trip_rules() {
        assert!(check(
            SERVE,
            r#"fn f() { let s = "x.unwrap() panic!"; } // .unwrap()"#
        )
        .is_empty());
        assert!(check(CORE, r#"fn f() { let s = "Instant::now"; }"#).is_empty());
    }

    #[test]
    fn violations_render_with_path_and_line() {
        let v = check(CORE, "\n\nfn f() { let t = SystemTime::now(); }");
        assert_eq!(v[0].line, 3);
        let text = v[0].to_string();
        assert!(
            text.starts_with("crates/core/src/engine.rs:3: [determinism]"),
            "{text}"
        );
    }
}
