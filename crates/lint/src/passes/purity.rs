//! Transitive purity of the observability increment path.
//!
//! `Counter::inc` / `Histogram::record` sit on the search hot path; the
//! per-file `obs` rule keeps locks, allocation and I/O out of the
//! metric modules themselves, but a helper *called from* an increment
//! fn can reintroduce them unseen. This pass roots at every non-test fn
//! in the obs increment modules and flags lock/alloc/IO primitives in
//! any fn they reach outside those modules.
//!
//! Suppress with `// lint: allow(obs) <reason>` (shared key with the
//! per-file rule).

use crate::callgraph::Graph;
use crate::lexer::TokenKind;
use crate::rules::{obs_increment_modules, Rule, Violation};

use super::{for_own_tokens, push_reached_site, sorted_reach};

/// Types whose mere construction implies blocking or allocation.
const IMPURE_TYPES: [&str; 10] = [
    "Mutex",
    "RwLock",
    "Condvar",
    "String",
    "Vec",
    "Box",
    "File",
    "OpenOptions",
    "TcpStream",
    "TcpListener",
];

/// Methods that allocate or block regardless of receiver.
const IMPURE_METHODS: [&str; 4] = ["lock", "to_string", "to_owned", "to_vec"];

const IMPURE_MACROS: [&str; 6] = ["format", "vec", "println", "eprintln", "print", "eprint"];

fn in_increment_module(rel: &str) -> bool {
    obs_increment_modules().iter().any(|m| rel.ends_with(m))
}

pub fn run(g: &Graph<'_>, out: &mut Vec<Violation>) {
    let roots: Vec<usize> = (0..g.fns.len())
        .filter(|&id| {
            in_increment_module(g.rel(id)) && !g.item(id).is_test && g.item(id).name != "new"
        })
        .collect();
    if roots.is_empty() {
        return;
    }
    for (id, path) in sorted_reach(g, &roots, "obs") {
        if in_increment_module(g.rel(id)) || g.item(id).is_test {
            continue;
        }
        let file_i = g.fns[id].file;
        let view = &g.views[file_i];
        let tokens = &view.lexed.tokens;
        let mut sites: Vec<(u32, String)> = Vec::new();
        for_own_tokens(tokens, view.index, g.item(id), |i, tok| {
            if tok.kind != TokenKind::Ident {
                return;
            }
            let name = tok.text.as_str();
            if IMPURE_TYPES.contains(&name) {
                sites.push((tok.line, format!("`{name}`")));
            } else if IMPURE_METHODS.contains(&name)
                && i > 0
                && tokens[i - 1].is_punct('.')
                && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            {
                sites.push((tok.line, format!("`.{name}()`")));
            } else if IMPURE_MACROS.contains(&name)
                && tokens.get(i + 1).is_some_and(|t| t.is_punct('!'))
            {
                sites.push((tok.line, format!("`{name}!`")));
            } else if name == "fs" && tokens.get(i + 1).is_some_and(|t| t.is_punct(':')) {
                sites.push((tok.line, "`fs::`".to_string()));
            }
        });
        for (line, what) in sites {
            push_reached_site(
                g,
                Rule::ObsPurity,
                format!(
                    "{what} in `{}` is reachable from the metric increment path; hot-path \
                     instrumentation must stay lock- and allocation-free",
                    g.item(id).name
                ),
                id,
                line,
                &path,
                out,
            );
        }
    }
}
