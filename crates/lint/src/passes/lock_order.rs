//! Static lock-order analysis over the ranked serve locks.
//!
//! The serve tier's deadlock-freedom argument is a total order on its
//! locks (`registry 10 < recovery 15 < engine 20 < flight 30`, see
//! `crates/serve/src/lockrank.rs`); the runtime witness panics in debug
//! builds when a thread acquires a rank at or below one it already
//! holds. This pass proves the same property *statically, on every
//! path*: because the ranks are totally ordered, a wait-for cycle
//! between two threads requires at least one thread to acquire
//! rank-descending (or rank-equal), so flagging every non-ascending
//! acquisition — direct or through any call chain while a guard is
//! live — is exactly the cycle check on the lock-order graph.
//!
//! Guard liveness is tracked lexically per function: a guard bound by
//! `let` lives to the end of its block (or an explicit `drop(…)` /
//! move into a call like `Condvar::wait_timeout`); an unbound
//! (temporary) guard dies at the statement's `;`; an `if let`/`while
//! let` guard lives only inside the conditional's body. Functions whose
//! return type mentions a `*Guard*` type and which acquire a ranked
//! lock locally (e.g. `EngineHost::flight_lock`) hand that rank to
//! their caller's binding. Acquisitions made by drop glue
//! (`impl Drop`) are analyzed as their own functions but not attached
//! to scope exits.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::callgraph::Graph;
use crate::lexer::TokenKind;
use crate::parser::{Callee, ChainSeg, FnItem};
use crate::rules::{Rule, Violation};

use super::{own_segments, push_reached_site};

/// Per-function lock summary.
#[derive(Default, Clone)]
struct Summary {
    /// Ranks this fn (transitively) acquires, each with the call chain
    /// `(fn, line)`… ending at the acquiring fn's acquisition line.
    trans: BTreeMap<u32, Vec<(usize, u32)>>,
    /// The max rank of a *locally* acquired guard handed back to the
    /// caller through the return type (e.g. `flight_lock` → 30).
    ret_guard: Option<u32>,
}

/// Runs the pass: summaries by memoized DFS, then a guard-liveness walk
/// over every non-test fn.
pub fn run(g: &Graph<'_>, out: &mut Vec<Violation>) {
    if g.field_ranks.is_empty() {
        return; // tree has no ranked locks (fixture trees)
    }
    let mut summaries: Vec<Option<Summary>> = vec![None; g.fns.len()];
    for id in 0..g.fns.len() {
        let mut visiting = HashSet::new();
        summarize(g, id, &mut summaries, &mut visiting);
    }
    for id in 0..g.fns.len() {
        if g.item(id).is_test {
            continue;
        }
        walk_fn(g, id, &summaries, out);
    }
}

/// A direct ranked acquisition at this call site, if any: `.lock()` /
/// `.read()` / `.write()` with no arguments on a ranked field.
fn direct_acquisition(g: &Graph<'_>, callee: &Callee, empty_args: bool) -> Option<u32> {
    if !empty_args {
        return None;
    }
    let Callee::Method { name, recv } = callee else {
        return None;
    };
    if !matches!(name.as_str(), "lock" | "read" | "write") {
        return None;
    }
    match recv.last() {
        Some(ChainSeg::Ident(field)) => g.field_ranks.get(field).copied(),
        _ => None,
    }
}

fn summarize(
    g: &Graph<'_>,
    id: usize,
    summaries: &mut Vec<Option<Summary>>,
    visiting: &mut HashSet<usize>,
) -> Summary {
    if let Some(s) = &summaries[id] {
        return s.clone();
    }
    if !visiting.insert(id) {
        return Summary::default(); // recursion: the cycle edge adds nothing
    }
    let item = g.item(id);
    let mut s = Summary::default();
    let mut local_max = None;
    for call in &item.calls {
        if let Some(rank) = direct_acquisition(g, &call.callee, call.empty_args) {
            s.trans.entry(rank).or_insert_with(|| vec![(id, call.line)]);
            local_max = Some(local_max.map_or(rank, |m: u32| m.max(rank)));
            continue;
        }
        for callee_id in g.resolve(id, &call.callee) {
            if g.item(callee_id).is_test {
                continue;
            }
            let callee_summary = summarize(g, callee_id, summaries, visiting);
            for (rank, chain) in &callee_summary.trans {
                s.trans.entry(*rank).or_insert_with(|| {
                    let mut c = vec![(id, call.line)];
                    c.extend(chain.iter().copied());
                    c
                });
            }
        }
    }
    if item.ret_mentions_guard {
        s.ret_guard = local_max;
    }
    visiting.remove(&id);
    summaries[id] = Some(s.clone());
    s
}

/// A live guard.
struct Guard {
    order: u32,
    acq_line: u32,
    /// Names bound to it (`let g = …`); empty for temporaries.
    names: Vec<String>,
    /// Block depth it dies at the close of.
    depth: i32,
}

/// A pending `let` awaiting its initializer's value.
struct LetCtx {
    names: Vec<String>,
    depth: i32,
    /// `if let` / `while let`: the binding lives only in the body.
    cond: bool,
}

const PATTERN_SKIP: [&str; 8] = ["mut", "ref", "box", "Ok", "Some", "Err", "None", "_"];

fn walk_fn(g: &Graph<'_>, id: usize, summaries: &[Option<Summary>], out: &mut Vec<Violation>) {
    let item: &FnItem = g.item(id);
    if item.body.is_none() {
        return;
    }
    let file_i = g.fns[id].file;
    let view = &g.views[file_i];
    let tokens = &view.lexed.tokens;
    let sites: HashMap<usize, &crate::parser::CallSite> =
        item.calls.iter().map(|c| (c.tok, c)).collect();
    let mut depth: i32 = 0;
    let mut guards: Vec<Guard> = Vec::new();
    let mut lets: Vec<LetCtx> = Vec::new();
    let mut reported: HashSet<u32> = HashSet::new();
    for (seg_start, seg_end) in own_segments(view.index, item) {
        let mut i = seg_start;
        while i < seg_end {
            let tok = &tokens[i];
            if tok.is_punct('{') {
                depth += 1;
            } else if tok.is_punct('}') {
                guards.retain(|gd| gd.depth < depth);
                lets.retain(|l| l.depth < depth);
                depth -= 1;
            } else if tok.is_punct(';') {
                lets.retain(|l| l.depth < depth);
                guards.retain(|gd| !(gd.names.is_empty() && gd.depth == depth));
            } else if tok.kind == TokenKind::Ident {
                match tok.text.as_str() {
                    "let" => {
                        let cond = i > 0
                            && (tokens[i - 1].is_ident("if") || tokens[i - 1].is_ident("while"));
                        let mut names = Vec::new();
                        let limit = seg_end.min(i + 32);
                        for t in &tokens[i + 1..limit] {
                            if t.is_punct('=') || t.is_punct(';') || t.is_punct('{') {
                                break;
                            }
                            if t.kind == TokenKind::Ident
                                && !PATTERN_SKIP.contains(&t.text.as_str())
                            {
                                names.push(t.text.clone());
                            }
                        }
                        lets.push(LetCtx { names, depth, cond });
                    }
                    "drop"
                        if tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
                            && tokens.get(i + 3).is_some_and(|t| t.is_punct(')')) =>
                    {
                        if let Some(name) = tokens.get(i + 2) {
                            guards.retain(|gd| !gd.names.contains(&name.text));
                        }
                    }
                    _ => {
                        if let Some(call) = sites.get(&i) {
                            handle_call(
                                g,
                                id,
                                call,
                                summaries,
                                &mut guards,
                                &lets,
                                depth,
                                &mut reported,
                                out,
                            );
                        } else if i > 0
                            && (tokens[i - 1].is_punct('(') || tokens[i - 1].is_punct(','))
                            && tokens
                                .get(i + 1)
                                .is_some_and(|t| t.is_punct(')') || t.is_punct(','))
                        {
                            // A live guard passed by value into a call
                            // (`wait_timeout(flight, …)`, `Ok(guard)`)
                            // leaves this scope.
                            guards.retain(|gd| !gd.names.contains(&tok.text));
                        }
                    }
                }
            }
            i += 1;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_call(
    g: &Graph<'_>,
    id: usize,
    call: &crate::parser::CallSite,
    summaries: &[Option<Summary>],
    guards: &mut Vec<Guard>,
    lets: &[LetCtx],
    depth: i32,
    reported: &mut HashSet<u32>,
    out: &mut Vec<Violation>,
) {
    let held: Option<(u32, u32)> = guards
        .iter()
        .max_by_key(|gd| gd.order)
        .map(|gd| (gd.order, gd.acq_line));
    if let Some(rank) = direct_acquisition(g, &call.callee, call.empty_args) {
        if let Some((h_order, h_line)) = held {
            // Same-rank reacquisition is also illegal (self-deadlock on
            // a non-reentrant lock; mirrors the runtime witness's
            // `top.order >= rank.order`).
            if h_order >= rank && reported.insert(call.line) {
                push_reached_site(
                    g,
                    Rule::LockOrder,
                    format!(
                        "acquires rank {rank} while already holding rank {h_order} (acquired \
                         at line {h_line}); ranked locks must be taken in strictly ascending \
                         order (registry < recovery < engine < flight)"
                    ),
                    id,
                    call.line,
                    &[],
                    out,
                );
            }
        }
        bind_guard(guards, lets, depth, rank, call.line);
        return;
    }
    let mut bound = false;
    for callee_id in g.resolve(id, &call.callee) {
        let Some(summary) = &summaries[callee_id] else {
            continue;
        };
        if let Some((h_order, h_line)) = held {
            for (&rank, chain) in &summary.trans {
                if rank <= h_order && reported.insert(call.line) {
                    let mut path: Vec<(usize, u32)> = vec![(id, call.line)];
                    path.extend(chain.iter().take(chain.len().saturating_sub(1)));
                    let (site_fn, site_line) = *chain.last().unwrap_or(&(callee_id, call.line));
                    push_reached_site(
                        g,
                        Rule::LockOrder,
                        format!(
                            "call chain acquires rank {rank} while the caller holds rank \
                             {h_order} (acquired at line {h_line}); ranked locks must be \
                             taken in strictly ascending order"
                        ),
                        site_fn,
                        site_line,
                        &path,
                        out,
                    );
                }
            }
        }
        if !bound {
            if let (true, Some(rank)) = (g.item(callee_id).ret_mentions_guard, summary.ret_guard) {
                bind_guard(guards, lets, depth, rank, call.line);
                bound = true;
            }
        }
    }
}

/// Binds a fresh guard: to the innermost pending `let` if one is open
/// (at the conditional's body depth for `if let`/`while let`),
/// otherwise as an unnamed temporary that dies at the statement end.
fn bind_guard(guards: &mut Vec<Guard>, lets: &[LetCtx], depth: i32, order: u32, acq_line: u32) {
    match lets.last() {
        Some(l) => guards.push(Guard {
            order,
            acq_line,
            names: l.names.clone(),
            depth: l.depth + i32::from(l.cond),
        }),
        None => guards.push(Guard {
            order,
            acq_line,
            names: Vec::new(),
            depth,
        }),
    }
}
