//! Transitive panic reachability from the serve request path.
//!
//! The per-file `panic_freedom` rule already bans `unwrap`/`expect`/
//! `panic!` *inside* `crates/serve/src/`, but a serve handler calling a
//! helper in `mvq_core` that panics is just as fatal to the request —
//! and invisible to a per-file scan. This pass roots the call graph at
//! every non-test serve fn and reports panic sites in any reachable fn
//! outside the serve tree, with the call chain from the nearest root.
//!
//! Suppress with `// lint: allow(panic) <reason>` on the site or on any
//! call edge along the chain (same key as the per-file rule, so one
//! annotation covers both views of the same hazard).

use crate::callgraph::Graph;
use crate::lexer::TokenKind;
use crate::rules::{Rule, Violation};

use super::{for_own_tokens, push_reached_site, sorted_reach};

const SERVE_PREFIX: &str = "crates/serve/src/";

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

pub fn run(g: &Graph<'_>, out: &mut Vec<Violation>) {
    let roots: Vec<usize> = (0..g.fns.len())
        .filter(|&id| g.rel(id).starts_with(SERVE_PREFIX) && !g.item(id).is_test)
        .collect();
    if roots.is_empty() {
        return;
    }
    for (id, path) in sorted_reach(g, &roots, "panic") {
        let rel = g.rel(id);
        // Serve-tree fns are the per-file rule's jurisdiction.
        if rel.starts_with(SERVE_PREFIX) || g.item(id).is_test {
            continue;
        }
        let file_i = g.fns[id].file;
        let view = &g.views[file_i];
        let tokens = &view.lexed.tokens;
        let mut sites: Vec<(u32, String)> = Vec::new();
        for_own_tokens(tokens, view.index, g.item(id), |i, tok| {
            if tok.kind != TokenKind::Ident {
                return;
            }
            let name = tok.text.as_str();
            if matches!(name, "unwrap" | "expect")
                && i > 0
                && tokens[i - 1].is_punct('.')
                && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            {
                sites.push((tok.line, format!(".{name}()")));
            } else if PANIC_MACROS.contains(&name)
                && tokens.get(i + 1).is_some_and(|t| t.is_punct('!'))
            {
                sites.push((tok.line, format!("{name}!")));
            }
        });
        for (line, what) in sites {
            push_reached_site(
                g,
                Rule::PanicPath,
                format!(
                    "`{what}` in `{}` is reachable from the serve request path; return an \
                     error or annotate the proof it cannot fire",
                    g.item(id).name
                ),
                id,
                line,
                &path,
                out,
            );
        }
    }
}
