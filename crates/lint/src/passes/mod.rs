//! The interprocedural passes over the workspace call graph.
//!
//! Each pass picks a root set, walks the graph ([`Graph::reach`]) and
//! reports offending *sites* with the full call chain from a nearest
//! root. Suppression composes with the per-file rules: an edge whose
//! call line carries a reasoned `// lint: allow(<key>)` cuts the whole
//! subtree, and a site whose line carries one is skipped — the same
//! annotation silences a finding at any frame.

pub mod lock_order;
pub mod panic_path;
pub mod purity;
pub mod taint;

use crate::callgraph::{FileView, Graph};
use crate::lexer::Token;
use crate::parser::{FileIndex, FnItem};
use crate::rules::{Frame, Rule, Violation};

/// Runs every interprocedural pass over the parsed workspace.
pub fn run(views: &[FileView<'_>]) -> Vec<Violation> {
    let graph = Graph::build(views);
    let mut out = Vec::new();
    lock_order::run(&graph, &mut out);
    panic_path::run(&graph, &mut out);
    purity::run(&graph, &mut out);
    taint::run(&graph, &mut out);
    out
}

/// The token-index segments belonging to `item` itself: its body minus
/// the bodies of nested fn items (those are separate graph nodes).
pub(crate) fn own_segments(index: &FileIndex, item: &FnItem) -> Vec<(usize, usize)> {
    let Some((start, end)) = item.body else {
        return Vec::new();
    };
    let mut segments = Vec::new();
    let mut cursor = start + 1;
    for &child in &item.children {
        if let Some((c_start, c_end)) = index.fns[child].body {
            if c_start > cursor {
                segments.push((cursor, c_start));
            }
            cursor = c_end + 1;
        }
    }
    if cursor < end {
        segments.push((cursor, end));
    }
    segments
}

/// Calls `f` with every token index owned by `item` (body minus nested
/// fn bodies).
pub(crate) fn for_own_tokens(
    tokens: &[Token],
    index: &FileIndex,
    item: &FnItem,
    mut f: impl FnMut(usize, &Token),
) {
    for (s, e) in own_segments(index, item) {
        for (i, tok) in tokens.iter().enumerate().take(e).skip(s) {
            f(i, tok);
        }
    }
}

/// Reports a site reached through `path` unless its line carries a
/// reasoned allow for the rule's key.
pub(crate) fn push_reached_site(
    g: &Graph<'_>,
    rule: Rule,
    message: String,
    site_fn: usize,
    line: u32,
    path: &[(usize, u32)],
    out: &mut Vec<Violation>,
) {
    if let Some(key) = rule.allow_key() {
        if g.allow(site_fn, line, key) == Some(true) {
            return;
        }
        // Reach-based passes cut allowed edges during the BFS; the
        // lock-order pass builds chains from summaries, so honor an
        // allow at any intermediate frame here too.
        if path.iter().any(|&(f, l)| g.allow(f, l, key) == Some(true)) {
            return;
        }
    }
    let mut frames: Vec<Frame> = path.iter().map(|&(f, l)| g.frame(f, l)).collect();
    frames.push(g.frame(site_fn, line));
    out.push(Violation {
        file: g.rel(site_fn).to_string(),
        line,
        rule,
        message,
        frames,
    });
}

/// The sorted reachable set from `roots` (deterministic pass output).
pub(crate) fn sorted_reach(
    g: &Graph<'_>,
    roots: &[usize],
    allow_key: &str,
) -> Vec<(usize, Vec<(usize, u32)>)> {
    let mut reached: Vec<(usize, Vec<(usize, u32)>)> =
        g.reach(roots, allow_key).into_iter().collect();
    reached.sort_by_key(|(id, _)| *id);
    reached
}
