//! Determinism taint: nondeterminism flowing *into* the search-state
//! modules through calls.
//!
//! The per-file `determinism` rule bans ambient time, randomness and
//! default-hashed collections inside the five `mvq_core` search-state
//! modules, but a helper elsewhere that those modules call can smuggle
//! the same nondeterminism back in. This pass roots at every non-test
//! fn in the search-state modules and flags taint sources in any fn
//! they reach outside them.
//!
//! Suppress with `// lint: allow(determinism) <reason>` (shared key
//! with the per-file rule).

use crate::callgraph::Graph;
use crate::lexer::TokenKind;
use crate::rules::{determinism_modules, generic_args_name_fnv, Rule, Violation};

use super::{for_own_tokens, push_reached_site, sorted_reach};

fn in_search_module(rel: &str) -> bool {
    determinism_modules().iter().any(|m| rel.ends_with(m))
}

pub fn run(g: &Graph<'_>, out: &mut Vec<Violation>) {
    let roots: Vec<usize> = (0..g.fns.len())
        .filter(|&id| in_search_module(g.rel(id)) && !g.item(id).is_test)
        .collect();
    if roots.is_empty() {
        return;
    }
    for (id, path) in sorted_reach(g, &roots, "determinism") {
        if in_search_module(g.rel(id)) || g.item(id).is_test {
            continue;
        }
        let file_i = g.fns[id].file;
        let view = &g.views[file_i];
        let tokens = &view.lexed.tokens;
        let mut sites: Vec<(u32, String)> = Vec::new();
        for_own_tokens(tokens, view.index, g.item(id), |i, tok| {
            if tok.kind != TokenKind::Ident {
                return;
            }
            let path_sep = tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'));
            match tok.text.as_str() {
                "Instant" | "SystemTime" => {
                    sites.push((tok.line, format!("ambient time source `{}`", tok.text)));
                }
                "thread_rng" | "random" => {
                    sites.push((tok.line, format!("ambient randomness `{}`", tok.text)));
                }
                "rand" if path_sep => {
                    sites.push((tok.line, "the `rand` crate".to_string()));
                }
                t @ ("HashMap" | "HashSet") => {
                    let open = if tokens.get(i + 1).is_some_and(|tk| tk.is_punct('<')) {
                        Some(i + 1)
                    } else if path_sep && tokens.get(i + 3).is_some_and(|tk| tk.is_punct('<')) {
                        Some(i + 3)
                    } else {
                        None
                    };
                    if let Some(open) = open {
                        if !generic_args_name_fnv(tokens, open) {
                            sites.push((tok.line, format!("`{t}` without a deterministic hasher")));
                        }
                    } else if path_sep
                        && tokens
                            .get(i + 3)
                            .is_some_and(|tk| tk.text == "new" || tk.text == "with_capacity")
                    {
                        sites.push((
                            tok.line,
                            format!(
                                "`{t}::{}` (pins the nondeterministic `RandomState` hasher)",
                                tokens[i + 3].text
                            ),
                        ));
                    }
                }
                _ => {}
            }
        });
        for (line, what) in sites {
            push_reached_site(
                g,
                Rule::DeterminismTaint,
                format!(
                    "{what} in `{}` is reachable from the search-state modules; their \
                     behavior must be reproducible run-to-run",
                    g.item(id).name
                ),
                id,
                line,
                &path,
                out,
            );
        }
    }
}
