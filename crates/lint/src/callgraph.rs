//! The workspace call graph.
//!
//! Built over every parsed file (see [`crate::parser`]), the graph
//! resolves call expressions to candidate workspace functions:
//!
//! * **Typed receivers** resolve exactly: the receiver chain is
//!   evaluated through struct fields, locals, parameters, type aliases
//!   and container elements; a chain that lands on a known workspace
//!   type either names one of its methods (one edge) or a std/deref
//!   method (no edge — a known type without the method cannot be a
//!   workspace call).
//! * **Untyped receivers** fall back to every workspace method of that
//!   name, *except* for a curated list of common std method names
//!   (`get`, `insert`, `lock`, …) whose fallback would drown the graph
//!   in false edges.
//! * **Qualified paths** (`Type::method`, `module::helper`) resolve
//!   through the type/alias table or the free-function table.
//!
//! The result is a deliberate over-approximation everywhere except
//! typed-receiver hits: extra edges cost chain noise, missing edges
//! cost soundness, and the fixture corpus locks the balance.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use crate::lexer::Lexed;
use crate::parser::{Callee, ChainSeg, FileIndex, FnItem, LocalHint, TypeShape};
use crate::rules::{Allows, Frame};

/// One file's parsed artifacts, borrowed from the parse cache.
pub struct FileView<'a> {
    /// Workspace-relative path, forward slashes.
    pub rel: &'a str,
    /// The lexed tokens/comments.
    pub lexed: &'a Lexed,
    /// The parsed item index.
    pub index: &'a FileIndex,
    /// The file's `// lint: allow(…)` annotations.
    pub(crate) allows: &'a Allows,
}

/// Method calls whose receiver keeps its type (`.lock()` yields a guard
/// that derefs to the inner value; normalization already strips the
/// guard layer, so the step is the identity).
const IDENTITY_METHODS: [&str; 12] = [
    "lock",
    "read",
    "write",
    "clone",
    "as_ref",
    "as_mut",
    "borrow",
    "borrow_mut",
    "into_inner",
    "unwrap",
    "expect",
    // `map_err` keeps the Ok side, which is what normalization keeps.
    "map_err",
];

/// Method calls that step a container shape to its element shape.
const ELEM_METHODS: [&str; 13] = [
    "values",
    "values_mut",
    "iter",
    "iter_mut",
    "into_iter",
    "get",
    "get_mut",
    "first",
    "last",
    "front",
    "back",
    "pop",
    "remove",
];

/// Common std method names for which the untyped by-name fallback is
/// suppressed: resolving `x.insert(…)` to every workspace `insert`
/// would flood the graph with false edges. Workspace-specific names
/// (`stats`, `set_probe`, `record`, `inc`, `synthesize_cached`, …) are
/// deliberately absent so untyped calls to them still resolve.
const STD_METHOD_NAMES: [&str; 78] = [
    "lock",
    "read",
    "write",
    "try_lock",
    "get",
    "get_mut",
    "get_or_init",
    "set",
    "take",
    "replace",
    "with",
    "insert",
    "remove",
    "push",
    "pop",
    "push_back",
    "pop_front",
    "extend",
    "clear",
    "len",
    "is_empty",
    "contains",
    "contains_key",
    "entry",
    "keys",
    "values",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "map",
    "map_err",
    "and_then",
    "or_else",
    "ok_or",
    "ok_or_else",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "expect",
    "ok",
    "err",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "as_ref",
    "as_mut",
    "as_str",
    "as_bytes",
    "as_slice",
    "to_string",
    "to_owned",
    "to_vec",
    "clone",
    "collect",
    "filter",
    "fold",
    "sum",
    "count",
    "chain",
    "zip",
    "rev",
    "enumerate",
    "find",
    "any",
    "all",
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "finish",
];

/// A function in the workspace graph.
pub struct GraphFn<'a> {
    /// Index into the view slice.
    pub file: usize,
    /// The parsed item.
    pub item: &'a FnItem,
}

/// The workspace call graph.
pub struct Graph<'a> {
    /// The per-file views, in workspace order.
    pub views: &'a [FileView<'a>],
    /// Every fn, flattened in (file, item) order — ids are indices.
    pub fns: Vec<GraphFn<'a>>,
    methods: HashMap<(String, String), Vec<usize>>,
    by_name_methods: HashMap<String, Vec<usize>>,
    free_fns: HashMap<String, Vec<usize>>,
    known_types: HashSet<String>,
    structs: HashMap<String, &'a HashMap<String, TypeShape>>,
    aliases: HashMap<String, TypeShape>,
    /// Ranked lock field name → rank order.
    pub field_ranks: BTreeMap<String, u32>,
}

impl<'a> Graph<'a> {
    /// Builds the graph over every parsed file.
    pub fn build(views: &'a [FileView<'a>]) -> Self {
        let mut g = Graph {
            views,
            fns: Vec::new(),
            methods: HashMap::new(),
            by_name_methods: HashMap::new(),
            free_fns: HashMap::new(),
            known_types: HashSet::new(),
            structs: HashMap::new(),
            aliases: HashMap::new(),
            field_ranks: BTreeMap::new(),
        };
        let mut const_orders: HashMap<&str, u32> = HashMap::new();
        for (file_i, view) in views.iter().enumerate() {
            for rc in &view.index.rank_consts {
                const_orders.insert(&rc.name, rc.order);
            }
            for name in &view.index.types {
                g.known_types.insert(name.clone());
            }
            for (name, fields) in &view.index.structs {
                g.structs.entry(name.clone()).or_insert(fields);
            }
            for (name, shape) in &view.index.aliases {
                g.aliases
                    .entry(name.clone())
                    .or_insert_with(|| shape.clone());
            }
            for item in &view.index.fns {
                let id = g.fns.len();
                g.fns.push(GraphFn { file: file_i, item });
                if let Some(ty) = &item.self_type {
                    g.methods
                        .entry((ty.clone(), item.name.clone()))
                        .or_default()
                        .push(id);
                    if let Some(tr) = &item.trait_name {
                        if tr != ty {
                            g.methods
                                .entry((tr.clone(), item.name.clone()))
                                .or_default()
                                .push(id);
                        }
                    }
                    g.by_name_methods
                        .entry(item.name.clone())
                        .or_default()
                        .push(id);
                } else {
                    g.free_fns.entry(item.name.clone()).or_default().push(id);
                }
            }
        }
        // Field → order, resolved through the rank constants (bindings
        // and constants may live in different files).
        for view in views {
            for (field, const_name) in &view.index.rank_fields {
                if let Some(order) = const_orders.get(const_name.as_str()) {
                    g.field_ranks.insert(field.clone(), *order);
                }
            }
        }
        g
    }

    /// The workspace-relative path of `fn_id`'s file.
    pub fn rel(&self, fn_id: usize) -> &str {
        self.views[self.fns[fn_id].file].rel
    }

    /// The parsed item of `fn_id`.
    pub fn item(&self, fn_id: usize) -> &FnItem {
        self.fns[fn_id].item
    }

    /// Allow-annotation lookup in `fn_id`'s file.
    pub fn allow(&self, fn_id: usize, line: u32, key: &str) -> Option<bool> {
        self.views[self.fns[fn_id].file].allows.lookup(line, key)
    }

    /// A rendered call-chain frame for a call/site at `line` in `fn_id`.
    pub fn frame(&self, fn_id: usize, line: u32) -> Frame {
        Frame {
            file: self.rel(fn_id).to_string(),
            line,
            function: self.item(fn_id).name.clone(),
        }
    }

    fn resolve_alias_head(&self, name: &str) -> TypeShape {
        let mut shape = TypeShape {
            head: name.to_string(),
            elem: None,
        };
        for _ in 0..4 {
            match self.aliases.get(&shape.head) {
                Some(target) if shape.elem.is_none() => shape = target.clone(),
                _ => break,
            }
        }
        shape
    }

    /// The last `binds` entry for `name` in `fn_id` (later bindings
    /// shadow earlier ones).
    fn local_hint(&self, fn_id: usize, name: &str) -> Option<&LocalHint> {
        self.item(fn_id)
            .binds
            .iter()
            .rev()
            .find(|b| b.name == name)
            .map(|b| &b.hint)
    }

    /// Evaluates an expression chain to a normalized type shape.
    pub fn eval_chain(&self, fn_id: usize, segs: &[ChainSeg], depth: u8) -> Option<TypeShape> {
        if depth == 0 {
            return None;
        }
        let mut iter = segs.iter();
        let mut shape = match iter.next()? {
            ChainSeg::SelfTok => self.resolve_alias_head(self.item(fn_id).self_type.as_deref()?),
            ChainSeg::Ident(name) => {
                if let Some(hint) = self.local_hint(fn_id, name) {
                    match hint {
                        LocalHint::Direct(s) => self.deref_shape(s.clone()),
                        LocalHint::Chain(c) => self.eval_chain(fn_id, c, depth - 1)?,
                        LocalHint::IterChain(c) => {
                            let s = self.eval_chain(fn_id, c, depth - 1)?;
                            match s.elem {
                                Some(elem) => *elem,
                                None => s,
                            }
                        }
                    }
                } else {
                    let resolved = self.resolve_alias_head(name);
                    if self.known_types.contains(&resolved.head) {
                        resolved
                    } else {
                        return None;
                    }
                }
            }
            ChainSeg::Call(_) | ChainSeg::Unknown => return None,
        };
        for seg in iter {
            shape = self.step(fn_id, shape, seg, depth)?;
        }
        Some(shape)
    }

    /// Re-resolves a shape's head through the alias table (parameter
    /// types may name an alias like `SynthesisEngine`).
    fn deref_shape(&self, shape: TypeShape) -> TypeShape {
        if shape.elem.is_some() {
            return shape;
        }
        self.resolve_alias_head(&shape.head)
    }

    fn step(
        &self,
        _fn_id: usize,
        shape: TypeShape,
        seg: &ChainSeg,
        depth: u8,
    ) -> Option<TypeShape> {
        match seg {
            ChainSeg::Ident(name) => {
                // Field access (numeric text handles tuple fields).
                let fields = self.structs.get(&shape.head)?;
                fields.get(name).map(|s| self.deref_shape(s.clone()))
            }
            ChainSeg::Call(m) => {
                if IDENTITY_METHODS.contains(&m.as_str()) {
                    return Some(shape);
                }
                if let Some(elem) = &shape.elem {
                    if ELEM_METHODS.contains(&m.as_str()) {
                        return Some(self.deref_shape((**elem).clone()));
                    }
                }
                let ids = self.methods.get(&(shape.head.clone(), m.clone()))?;
                ids.iter().find_map(|&id| {
                    let ret = self.item(id).ret_shape.as_ref()?;
                    if ret.head == "Self" {
                        Some(TypeShape {
                            head: shape.head.clone(),
                            elem: None,
                        })
                    } else if depth > 1 {
                        Some(self.deref_shape(ret.clone()))
                    } else {
                        None
                    }
                })
            }
            ChainSeg::SelfTok | ChainSeg::Unknown => None,
        }
    }

    /// Resolves one call site in `caller` to candidate workspace fns.
    /// Sound where it matters (typed hits are exact; untyped fallback
    /// over-approximates), empty for std calls.
    pub fn resolve(&self, caller: usize, callee: &Callee) -> Vec<usize> {
        match callee {
            Callee::Free { name } => self.free_fns.get(name).cloned().unwrap_or_default(),
            Callee::Path { qualifier, name } => {
                let Some(q) = qualifier else {
                    return Vec::new();
                };
                let q = if q == "Self" {
                    match self.item(caller).self_type.as_deref() {
                        Some(ty) => ty.to_string(),
                        None => return Vec::new(),
                    }
                } else {
                    q.clone()
                };
                let q = self.resolve_alias_head(&q).head;
                if let Some(ids) = self.methods.get(&(q.clone(), name.clone())) {
                    return ids.clone();
                }
                if self.known_types.contains(&q) {
                    return Vec::new();
                }
                // `module::helper(…)` — a module path, not a type.
                self.free_fns.get(name).cloned().unwrap_or_default()
            }
            Callee::Method { name, recv } => {
                if let Some(shape) = self.eval_chain(caller, recv, 8) {
                    if let Some(ids) = self.methods.get(&(shape.head.clone(), name.clone())) {
                        return ids.clone();
                    }
                    if self.known_types.contains(&shape.head) {
                        return Vec::new();
                    }
                }
                if STD_METHOD_NAMES.contains(&name.as_str()) {
                    return Vec::new();
                }
                self.by_name_methods.get(name).cloned().unwrap_or_default()
            }
        }
    }

    /// Breadth-first reachability from `roots` over resolved call
    /// edges, skipping test fns and edges whose call line carries a
    /// reasoned `allow(<key>)`. Returns, for every reached fn, the call
    /// path from a nearest root: `(caller_fn, call_line)` pairs,
    /// outermost first (empty for the roots themselves).
    pub fn reach(&self, roots: &[usize], allow_key: &str) -> HashMap<usize, Vec<(usize, u32)>> {
        let mut parent: HashMap<usize, Option<(usize, u32)>> = HashMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &r in roots {
            if parent.insert(r, None).is_none() {
                queue.push_back(r);
            }
        }
        while let Some(f) = queue.pop_front() {
            for call in &self.item(f).calls {
                if self.allow(f, call.line, allow_key) == Some(true) {
                    continue;
                }
                for g_id in self.resolve(f, &call.callee) {
                    if self.item(g_id).is_test || parent.contains_key(&g_id) {
                        continue;
                    }
                    parent.insert(g_id, Some((f, call.line)));
                    queue.push_back(g_id);
                }
            }
        }
        parent
            .keys()
            .map(|&id| {
                let mut path = Vec::new();
                let mut cur = id;
                while let Some(Some((p, line))) = parent.get(&cur) {
                    path.push((*p, *line));
                    cur = *p;
                }
                path.reverse();
                (id, path)
            })
            .collect()
    }
}
