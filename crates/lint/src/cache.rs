//! Per-file analysis cache keyed by content hash.
//!
//! Lexing + parsing + per-file rules are pure functions of `(relative
//! path, source text)`, so repeated `check_workspace` calls in one
//! process (tests, the bench harness, a watch loop) reuse the previous
//! run's `FileAnalysis` for every unchanged file and only re-analyze
//! edits. The key hashes the path *and* the content: two identical
//! files at different paths classify differently (test span rules,
//! module lists), so they must not share an entry.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::lexer::{lex, Lexed};
use crate::parser::{parse, FileIndex};
use crate::rules::{check_lexed, Allows, Violation};

/// Everything the workspace passes need from one file, computed once
/// per `(path, content)` pair.
pub(crate) struct FileAnalysis {
    pub rel: String,
    pub lexed: Lexed,
    pub index: FileIndex,
    pub allows: Allows,
    /// Per-file rule findings (the original six rules).
    pub violations: Vec<Violation>,
}

static CACHE: OnceLock<Mutex<HashMap<u64, Arc<FileAnalysis>>>> = OnceLock::new();

/// FNV-1a over `rel + '\0' + source`. Content-addressed: a re-read of
/// an unchanged file is a hit, an edit is a distinct key (stale entries
/// are left behind; the table is bounded by edit churn within one
/// process, which is tiny next to the parse work it saves).
fn key(rel: &str, source: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in [rel.as_bytes(), &[0u8], source.as_bytes()] {
        for &b in chunk {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Returns the (possibly cached) analysis of one file.
pub(crate) fn analyze(rel: &str, source: &str) -> Arc<FileAnalysis> {
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let k = key(rel, source);
    if let Some(hit) = cache.lock().expect("lint cache poisoned").get(&k) {
        return Arc::clone(hit);
    }
    let lexed = lex(source);
    let index = parse(&lexed);
    let allows = Allows::parse(&lexed.comments);
    let violations = check_lexed(rel, source, &lexed);
    let analysis = Arc::new(FileAnalysis {
        rel: rel.to_string(),
        lexed,
        index,
        allows,
        violations,
    });
    cache
        .lock()
        .expect("lint cache poisoned")
        .insert(k, Arc::clone(&analysis));
    analysis
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_input_is_a_pointer_hit() {
        let src = "fn f() { g(); }\n";
        let a = analyze("crates/x/src/cache_probe.rs", src);
        let b = analyze("crates/x/src/cache_probe.rs", src);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn path_is_part_of_the_key() {
        let src = "fn f() { g(); }\n";
        let a = analyze("crates/x/src/cache_probe.rs", src);
        let b = analyze("crates/y/src/cache_probe.rs", src);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(b.rel, "crates/y/src/cache_probe.rs");
    }

    #[test]
    fn edited_content_misses() {
        let a = analyze("crates/x/src/cache_probe2.rs", "fn f() {}\n");
        let b = analyze("crates/x/src/cache_probe2.rs", "fn f() { h(); }\n");
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(b.index.fns[0].calls.len(), 1);
    }
}
