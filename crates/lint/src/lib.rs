//! `mvq_lint` — the workspace invariant checker.
//!
//! Clippy's `-D warnings` gate cannot express this repo's
//! project-specific correctness rules, and the offline container rules
//! out syn/miri/loom, so the pass is hand-rolled: a small comment- and
//! string-aware lexer ([`lexer`]) feeds six per-file rule passes
//! ([`rules`]), and an item-level parser ([`parser`]) feeds a workspace
//! call graph ([`callgraph`]) driving four interprocedural passes
//! ([`passes`]):
//!
//! | rule | scope | invariant |
//! |------|-------|-----------|
//! | `determinism` | `mvq_core` search-state modules | `HashMap`/`HashSet` name `FnvBuildHasher`; no `Instant`/`SystemTime`/randomness |
//! | `panic` | `crates/serve/src` request path | no `unwrap`/`expect`/`panic!`/`unreachable!` without `// lint: allow(panic) <reason>` |
//! | `unsafe` | workspace-wide (tests included) | every `unsafe` carries an adjacent `// SAFETY:` comment |
//! | `threads` | workspace-wide | `thread::spawn`/`scope` only in `par.rs` and the serve accept loop |
//! | `persistence` | snapshot codec | file publication goes through the durable-write helper, never bare `fs::write`/`File::create` |
//! | `obs` | `mvq_obs` increment path; registrations workspace-wide | no locks or allocations where counters bump; registered metric names are snake_case with a unit suffix (`_us`/`_bytes`/`_total`) |
//! | `lock_order` | call-graph, serve ranked locks | every static path acquires ranks strictly ascending while a guard is live |
//! | `panic_path` | call-graph, rooted at serve | no reachable `unwrap`/`expect`/`panic!` in helper crates either |
//! | `obs_purity` | call-graph, rooted at metric increments | nothing the increment path reaches locks, allocates, or does I/O |
//! | `determinism_taint` | call-graph, rooted at search-state modules | no reachable ambient time/randomness/default-hashed collections |
//!
//! The binary (`cargo run -p mvq_lint --release -- --workspace`) exits
//! non-zero on any violation and is wired into CI as a hard gate; the
//! fixture corpus under `fixtures/` locks each rule from both sides.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod lexer;
pub mod parser;
pub mod rules;

mod cache;
mod passes;

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

pub use rules::{check_source, Frame, Rule, Violation, ALL_RULES};

use callgraph::FileView;

/// Directory names never descended into: build output, the lint
/// fixture corpus (deliberately seeded with violations), and the
/// vendored third-party dependency shims (stand-ins for crates-io code,
/// not project code).
const SKIP_DIRS: [&str; 3] = ["target", "fixtures", "shims"];

/// The outcome of linting a tree.
#[derive(Debug)]
pub struct Report {
    /// `.rs` files scanned.
    pub files_scanned: usize,
    /// All findings, sorted by (file, line).
    pub violations: Vec<Violation>,
}

impl Report {
    /// `true` iff the tree is clean.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violation counts per rule (zero-count rules included, so the
    /// summary always shows the full gate).
    pub fn rule_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts: BTreeMap<&'static str, usize> =
            ALL_RULES.iter().map(|r| (r.name(), 0)).collect();
        for violation in &self.violations {
            *counts.entry(violation.rule.name()).or_default() += 1;
        }
        counts
    }

    /// The machine-readable report: `{files_scanned, counts, findings}`
    /// with each finding carrying its call-chain frames. Hand-rolled
    /// (the container has no serde); ordering matches the text output,
    /// so the JSON is byte-stable for a given tree.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = write!(
            s,
            "  \"files_scanned\": {},\n  \"counts\": {{",
            self.files_scanned
        );
        let counts: Vec<String> = self
            .rule_counts()
            .iter()
            .map(|(rule, n)| format!("\"{rule}\": {n}"))
            .collect();
        let _ = write!(s, "{}}},\n  \"findings\": [", counts.join(", "));
        for (i, v) in self.violations.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                s,
                "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \"frames\": [",
                json_str(&v.file),
                v.line,
                json_str(v.rule.name()),
                json_str(&v.message)
            );
            for (j, fr) in v.frames.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                let _ = write!(
                    s,
                    "{{\"file\": {}, \"line\": {}, \"function\": {}}}",
                    json_str(&fr.file),
                    fr.line,
                    json_str(&fr.function)
                );
            }
            s.push_str("]}");
        }
        if self.violations.is_empty() {
            s.push_str("]\n}\n");
        } else {
            s.push_str("\n  ]\n}\n");
        }
        s
    }
}

/// Escapes `text` as a JSON string literal.
fn json_str(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl fmt::Display for Report {
    /// The CI-facing summary: every finding, then a per-rule count line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for violation in &self.violations {
            writeln!(f, "{violation}")?;
        }
        let counts: Vec<String> = self
            .rule_counts()
            .iter()
            .map(|(rule, n)| format!("{rule}: {n}"))
            .collect();
        write!(
            f,
            "mvq_lint: {} file(s) scanned, {} rule(s), {} violation(s) [{}]",
            self.files_scanned,
            ALL_RULES.len(),
            self.violations.len(),
            counts.join(", ")
        )
    }
}

/// Lints the workspace rooted at `root`: every `.rs` file under
/// `crates/`, `tests/`, and `examples/` (skipping [`SKIP_DIRS`]) gets
/// the per-file rules, then the interprocedural passes run over the
/// whole-workspace call graph. Parsing is content-cached and spread
/// over worker threads.
///
/// # Errors
///
/// Propagates filesystem errors; a missing top-level directory is not
/// an error (fixture trees carry only `crates/`).
pub fn check_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|path| Ok((workspace_relative(root, path), fs::read_to_string(path)?)))
        .collect::<io::Result<_>>()?;
    let analyses = analyze_all(&sources);
    let mut violations: Vec<Violation> = analyses
        .iter()
        .flat_map(|a| a.violations.iter().cloned())
        .collect();
    let views: Vec<FileView<'_>> = analyses
        .iter()
        .map(|a| FileView {
            rel: &a.rel,
            lexed: &a.lexed,
            index: &a.index,
            allows: &a.allows,
        })
        .collect();
    violations.extend(passes::run(&views));
    violations.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.name()).cmp(&(b.file.as_str(), b.line, b.rule.name()))
    });
    Ok(Report {
        files_scanned: files.len(),
        violations,
    })
}

/// Analyzes every file, fanning out across worker threads (the cache
/// makes re-runs near-free; the fan-out makes cold runs fast). Results
/// come back in input order.
fn analyze_all(sources: &[(String, String)]) -> Vec<Arc<cache::FileAnalysis>> {
    let workers = std::thread::available_parallelism()
        .map_or(4, std::num::NonZeroUsize::get)
        .min(8)
        .min(sources.len().max(1));
    if workers <= 1 {
        return sources
            .iter()
            .map(|(rel, src)| cache::analyze(rel, src))
            .collect();
    }
    let chunk = sources.len().div_ceil(workers);
    let mut out: Vec<Option<Arc<cache::FileAnalysis>>> = vec![None; sources.len()];
    // lint: allow(threads) lint's own file walker: bounded fan-out over workspace files, not expansion work
    std::thread::scope(|scope| {
        for (batch, slot) in sources.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                for ((rel, src), s) in batch.iter().zip(slot.iter_mut()) {
                    *s = Some(cache::analyze(rel, src));
                }
            });
        }
    });
    out.into_iter()
        .map(|a| a.expect("worker filled every slot"))
        .collect()
}

fn workspace_relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_summary_lists_every_rule() {
        let report = Report {
            files_scanned: 3,
            violations: vec![],
        };
        let text = report.to_string();
        assert!(text.contains("3 file(s) scanned"), "{text}");
        assert!(text.contains("10 rule(s)"), "{text}");
        for rule in ALL_RULES {
            assert!(text.contains(&format!("{}: 0", rule.name())), "{text}");
        }
    }

    #[test]
    fn workspace_relative_uses_forward_slashes() {
        let root = Path::new("/repo");
        let path = Path::new("/repo/crates/core/src/engine.rs");
        assert_eq!(workspace_relative(root, path), "crates/core/src/engine.rs");
    }

    #[test]
    fn json_report_is_valid_shape_and_escapes() {
        let report = Report {
            files_scanned: 1,
            violations: vec![Violation {
                file: "crates/x/src/a.rs".to_string(),
                line: 3,
                rule: Rule::PanicPath,
                message: "a \"quoted\"\nmessage".to_string(),
                frames: vec![Frame {
                    file: "crates/serve/src/host.rs".to_string(),
                    line: 7,
                    function: "handle".to_string(),
                }],
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"files_scanned\": 1"), "{json}");
        assert!(json.contains("\"rule\": \"panic_path\""), "{json}");
        assert!(json.contains("\\\"quoted\\\"\\nmessage"), "{json}");
        assert!(
            json.contains(
                "{\"file\": \"crates/serve/src/host.rs\", \"line\": 7, \"function\": \"handle\"}"
            ),
            "{json}"
        );
        // No raw newline may survive inside any string literal.
        for line in json.lines() {
            assert!(!line.contains("quoted\"\nmessage"), "{json}");
        }
    }
}
