//! `mvq_lint` — the workspace invariant checker.
//!
//! Clippy's `-D warnings` gate cannot express this repo's
//! project-specific correctness rules, and the offline container rules
//! out syn/miri/loom, so the pass is hand-rolled: a small comment- and
//! string-aware lexer ([`lexer`]) feeds six rule passes ([`rules`]):
//!
//! | rule | scope | invariant |
//! |------|-------|-----------|
//! | `determinism` | `mvq_core` search-state modules | `HashMap`/`HashSet` name `FnvBuildHasher`; no `Instant`/`SystemTime`/randomness |
//! | `panic` | `crates/serve/src` request path | no `unwrap`/`expect`/`panic!`/`unreachable!` without `// lint: allow(panic) <reason>` |
//! | `unsafe` | workspace-wide (tests included) | every `unsafe` carries an adjacent `// SAFETY:` comment |
//! | `threads` | workspace-wide | `thread::spawn`/`scope` only in `par.rs` and the serve accept loop |
//! | `persistence` | snapshot codec | file publication goes through the durable-write helper, never bare `fs::write`/`File::create` |
//! | `obs` | `mvq_obs` increment path; registrations workspace-wide | no locks or allocations where counters bump; registered metric names are snake_case with a unit suffix (`_us`/`_bytes`/`_total`) |
//!
//! The binary (`cargo run -p mvq_lint --release -- --workspace`) exits
//! non-zero on any violation and is wired into CI as a hard gate; the
//! fixture corpus under `fixtures/` locks each rule from both sides.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use rules::{check_source, Rule, Violation, ALL_RULES};

/// Directory names never descended into: build output, the lint
/// fixture corpus (deliberately seeded with violations), and the
/// vendored third-party dependency shims (stand-ins for crates-io code,
/// not project code).
const SKIP_DIRS: [&str; 3] = ["target", "fixtures", "shims"];

/// The outcome of linting a tree.
#[derive(Debug)]
pub struct Report {
    /// `.rs` files scanned.
    pub files_scanned: usize,
    /// All findings, sorted by (file, line).
    pub violations: Vec<Violation>,
}

impl Report {
    /// `true` iff the tree is clean.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violation counts per rule (zero-count rules included, so the
    /// summary always shows the full gate).
    pub fn rule_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts: BTreeMap<&'static str, usize> =
            ALL_RULES.iter().map(|r| (r.name(), 0)).collect();
        for violation in &self.violations {
            *counts.entry(violation.rule.name()).or_default() += 1;
        }
        counts
    }
}

impl fmt::Display for Report {
    /// The CI-facing summary: every finding, then a per-rule count line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for violation in &self.violations {
            writeln!(f, "{violation}")?;
        }
        let counts: Vec<String> = self
            .rule_counts()
            .iter()
            .map(|(rule, n)| format!("{rule}: {n}"))
            .collect();
        write!(
            f,
            "mvq_lint: {} file(s) scanned, {} rule(s), {} violation(s) [{}]",
            self.files_scanned,
            ALL_RULES.len(),
            self.violations.len(),
            counts.join(", ")
        )
    }
}

/// Lints the workspace rooted at `root`: every `.rs` file under
/// `crates/`, `tests/`, and `examples/` (skipping [`SKIP_DIRS`]).
///
/// # Errors
///
/// Propagates filesystem errors; a missing top-level directory is not
/// an error (fixture trees carry only `crates/`).
pub fn check_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut violations = Vec::new();
    for path in &files {
        let rel = workspace_relative(root, path);
        let source = fs::read_to_string(path)?;
        violations.extend(check_source(&rel, &source));
    }
    violations.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    Ok(Report {
        files_scanned: files.len(),
        violations,
    })
}

fn workspace_relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_summary_lists_every_rule() {
        let report = Report {
            files_scanned: 3,
            violations: vec![],
        };
        let text = report.to_string();
        assert!(text.contains("3 file(s) scanned"), "{text}");
        assert!(text.contains("6 rule(s)"), "{text}");
        for rule in ALL_RULES {
            assert!(text.contains(&format!("{}: 0", rule.name())), "{text}");
        }
    }

    #[test]
    fn workspace_relative_uses_forward_slashes() {
        let root = Path::new("/repo");
        let path = Path::new("/repo/crates/core/src/engine.rs");
        assert_eq!(workspace_relative(root, path), "crates/core/src/engine.rs");
    }
}
