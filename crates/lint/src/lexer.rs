//! A small comment- and string-aware Rust lexer.
//!
//! The rule passes need far less than a real parser: identifiers and
//! single-character punctuation with line numbers, plus the comments
//! (which carry `SAFETY:` justifications and `// lint: allow(...)`
//! annotations). Everything the rules must *not* trip over — string
//! literals, char literals vs. lifetimes, raw strings, nested block
//! comments, doc comments quoting code — is consumed here so the rule
//! passes never see it.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `unsafe`, `fn`, …).
    Ident,
    /// One punctuation character (`<`, `:`, `#`, …). Multi-character
    /// operators arrive as consecutive tokens.
    Punct,
    /// A numeric literal (`10`, `0xFF`, `1_000u64`). The parser reads
    /// rank orders out of these; the token rules treat them as opaque.
    Number,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token text (one char for [`TokenKind::Punct`]).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// Identifier or punctuation.
    pub kind: TokenKind,
}

impl Token {
    /// `true` iff this is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// `true` iff this is the punctuation character `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct
            && self.text.len() == ch.len_utf8()
            && self.text.starts_with(ch)
    }
}

/// One comment (line `//`, block `/* */`, or doc variant).
#[derive(Debug, Clone)]
pub struct Comment {
    /// The comment text without the delimiters, trimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub start_line: u32,
    /// 1-based line the comment ends on (equal to `start_line` for line
    /// comments).
    pub end_line: u32,
}

/// The lexed view of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens, in source order.
    pub tokens: Vec<Token>,
    /// Comments, in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `source` into tokens and comments.
///
/// Unterminated strings or block comments are tolerated (the rest of
/// the file is treated as that literal): the linter must never panic on
/// the code it audits, and `rustc` will reject such a file anyway.
pub fn lex(source: &str) -> Lexed {
    Lexer {
        chars: source.char_indices().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<(usize, char)>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    /// Consumes one char, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                'r' | 'b' if self.raw_or_byte_string() => {}
                '\'' => self.char_or_lifetime(),
                c if c.is_alphabetic() || c == '_' => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                _ => {
                    let line = self.line;
                    let c = self.bump().unwrap_or(' ');
                    self.out.tokens.push(Token {
                        text: c.to_string(),
                        line,
                        kind: TokenKind::Punct,
                    });
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let start_line = self.line;
        let mut text = String::new();
        self.bump();
        self.bump(); // `//`
                     // Doc slashes / bang are part of the delimiter, not the text.
        while matches!(self.peek(0), Some('/' | '!')) {
            self.bump();
        }
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            text: text.trim().to_string(),
            start_line,
            end_line: start_line,
        });
    }

    fn block_comment(&mut self) {
        let start_line = self.line;
        let mut text = String::new();
        self.bump();
        self.bump(); // `/*`
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.out.comments.push(Comment {
            text: text.trim().to_string(),
            start_line,
            end_line: self.line,
        });
    }

    /// Consumes a plain `"…"` string (escapes honoured).
    fn string(&mut self) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => return,
                _ => {}
            }
        }
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `rb…` prefixes.
    /// Returns `false` (consuming nothing) when the `r`/`b` is just an
    /// identifier start.
    fn raw_or_byte_string(&mut self) -> bool {
        let mut ahead = 0;
        // Up to two prefix letters out of {r, b}.
        while matches!(self.peek(ahead), Some('r' | 'b')) && ahead < 2 {
            ahead += 1;
        }
        let mut hashes = 0;
        while self.peek(ahead + hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(ahead + hashes) != Some('"') {
            return false;
        }
        let raw = (0..ahead).any(|i| self.peek(i) == Some('r'));
        for _ in 0..ahead + hashes + 1 {
            self.bump();
        }
        // Body: raw strings ignore escapes and close on `"` + hashes.
        while let Some(c) = self.bump() {
            match c {
                '\\' if !raw => {
                    self.bump();
                }
                '"' if (0..hashes).all(|i| self.peek(i) == Some('#')) => {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    return true;
                }
                _ => {}
            }
        }
        true
    }

    /// Disambiguates `'a` (lifetime — emitted as punct `'` + ident) from
    /// `'x'` / `'\n'` (char literal — consumed silently).
    fn char_or_lifetime(&mut self) {
        match self.peek(1) {
            Some(c) if c.is_alphabetic() || c == '_' => {
                // Scan the identifier; a trailing `'` makes it a char
                // literal like `'a'`, otherwise it is a lifetime.
                let mut ahead = 2;
                while self
                    .peek(ahead)
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
                {
                    ahead += 1;
                }
                if self.peek(ahead) == Some('\'') {
                    for _ in 0..=ahead {
                        self.bump();
                    }
                } else {
                    // A lifetime: keep the tick as a punct so type
                    // normalization can tell `'a` from the type `a`;
                    // the ident lexes next round.
                    let line = self.line;
                    self.bump();
                    self.out.tokens.push(Token {
                        text: "'".to_string(),
                        line,
                        kind: TokenKind::Punct,
                    });
                }
            }
            Some('\\') => {
                self.bump(); // `'`
                self.bump(); // `\`
                             // The escaped char itself is consumed unconditionally so
                             // `'\''` does not stop at the escaped quote and leave the
                             // closing `'` to swallow code as a phantom char literal.
                self.bump();
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
            }
            Some(_) => {
                self.bump(); // `'`
                self.bump(); // the char
                self.bump(); // closing `'`
            }
            None => {
                self.bump();
            }
        }
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        // Raw identifier `r#name` lexes as the single ident `name`, not
        // the three tokens `r`, `#`, `name`.
        if self.peek(0) == Some('r')
            && self.peek(1) == Some('#')
            && self.peek(2).is_some_and(|c| c.is_alphabetic() || c == '_')
        {
            self.bump();
            self.bump();
        }
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.out.tokens.push(Token {
            text,
            line,
            kind: TokenKind::Ident,
        });
    }

    /// Numbers are emitted as [`TokenKind::Number`] tokens: the token
    /// rules skip them, while the item parser reads lock-rank orders out
    /// of them. Digits plus any suffix or float tail are one token so
    /// `1e5`, `0xFF`, `1_000u64` never shed ident fragments — but a `.`
    /// is only part of the number when a digit follows, so method calls
    /// on literals (`1.to_string()`) are not swallowed.
    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            let float_dot = c == '.' && self.peek(1).is_some_and(|n| n.is_ascii_digit());
            if c.is_alphanumeric() || c == '_' || float_dot {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.out.tokens.push(Token {
            text,
            line,
            kind: TokenKind::Number,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(source: &str) -> Vec<String> {
        lex(source)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn skips_strings_and_comments() {
        let lexed = lex(r#"let x = "unsafe panic!"; // unwrap in comment"#);
        assert_eq!(idents(r#"let x = "unsafe panic!";"#), ["let", "x"]);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].text, "unwrap in comment");
    }

    #[test]
    fn raw_strings_do_not_leak_tokens() {
        assert_eq!(
            idents(r##"let s = r#"thread::spawn "quoted" unsafe"#; end"##),
            ["let", "s", "end"]
        );
        assert_eq!(idents(r#"let b = b"unsafe"; end"#), ["let", "b", "end"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // `'scope` must not swallow code until the next apostrophe.
        assert_eq!(
            idents("fn f<'scope>(x: &'scope str) { let c = 'x'; let n = '\\n'; done() }"),
            ["fn", "f", "scope", "x", "scope", "str", "let", "c", "let", "n", "done"]
        );
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("a /* outer /* inner */ still comment */ b");
        assert_eq!(
            lexed
                .tokens
                .iter()
                .map(|t| t.text.as_str())
                .collect::<Vec<_>>(),
            ["a", "b"]
        );
        assert!(lexed.comments[0].text.contains("inner"));
    }

    #[test]
    fn line_numbers_are_tracked() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn doc_comment_markers_are_stripped() {
        let lexed = lex("/// doc text\n//! inner doc\nfn f() {}");
        assert_eq!(lexed.comments[0].text, "doc text");
        assert_eq!(lexed.comments[1].text, "inner doc");
    }

    #[test]
    fn numbers_are_opaque() {
        assert_eq!(
            idents("let x = 1_000u64 + 0xFFu8 + 1e5; f()"),
            ["let", "x", "f"]
        );
    }

    #[test]
    fn numbers_are_tokens_with_text() {
        let nums: Vec<String> = lex("const R: Rank = Rank { order: 10 }; let f = 2.5;")
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text)
            .collect();
        assert_eq!(nums, ["10", "2.5"]);
    }

    #[test]
    fn method_call_on_number_literal_is_visible() {
        // `1.to_string()` must lex as number `1`, `.`, ident — the old
        // lexer swallowed the whole call inside the number, blinding the
        // obs allocation rule.
        assert_eq!(idents("let s = 1.to_string();"), ["let", "s", "to_string"]);
    }

    #[test]
    fn escaped_quote_char_literal_does_not_swallow_code() {
        // `'\''` once broke at the escaped quote, leaving the closing `'`
        // to start a phantom literal that consumed real code.
        assert_eq!(
            idents(r"let q = '\''; let t = '\t'; after()"),
            ["let", "q", "let", "t", "after"]
        );
    }

    #[test]
    fn raw_identifiers_lex_as_one_ident() {
        assert_eq!(
            idents("let r#type = r#fn(); done()"),
            ["let", "type", "fn", "done"]
        );
    }
}
