//! A hand-rolled item/expression-level parser over the token stream.
//!
//! The interprocedural passes need just enough structure to build a
//! workspace call graph: function items (with impl/trait attribution
//! and parameter/return types), struct field types, type aliases, call
//! expressions with their receiver chains, and the lock-rank constants
//! plus the fields bound to them. Everything is recovered from the
//! [`crate::lexer`] token stream in one linear walk — no `syn`, no
//! allocation of a real AST. The parser is deliberately tolerant:
//! anything it cannot classify is skipped, and downstream resolution
//! treats missing information as "unknown" rather than guessing.

use std::collections::HashMap;

use crate::lexer::{Lexed, Token, TokenKind};
use crate::rules::find_test_spans;

/// A normalized type: smart pointers, lock wrappers, and `Result`/
/// `Option` layers are stripped so `Arc<RankedRwLock<SearchEngine<W>>>`
/// and `SearchEngine` compare equal; containers keep their element
/// shape so `.values()`/`.iter()` can be followed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeShape {
    /// The innermost type name (`SearchEngine`, `HashMap`, …).
    pub head: String,
    /// `Some` when `head` is a container: the normalized element (map
    /// value) shape.
    pub elem: Option<Box<TypeShape>>,
}

/// One segment of an expression chain (`self.hosts.lock()` is
/// `[SelfTok, Ident("hosts"), Call("lock")]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainSeg {
    /// The `self` receiver.
    SelfTok,
    /// A field access, local variable, or leading type name.
    Ident(String),
    /// A method call `.name(…)`.
    Call(String),
    /// A sub-expression the parser could not follow; poisons typing.
    Unknown,
}

/// What a call expression targets.
#[derive(Debug, Clone)]
pub enum Callee {
    /// `recv.name(…)` — `recv` is the receiver chain, innermost last.
    Method {
        /// The method name.
        name: String,
        /// The receiver chain.
        recv: Vec<ChainSeg>,
    },
    /// `Type::name(…)` / `module::name(…)`.
    Path {
        /// The qualifying segment right before the name, if any.
        qualifier: Option<String>,
        /// The called name.
        name: String,
    },
    /// A bare `name(…)` call.
    Free {
        /// The called name.
        name: String,
    },
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// What is being called.
    pub callee: Callee,
    /// 1-based source line of the callee name.
    pub line: u32,
    /// Token index of the callee name (liveness walks key on this).
    pub tok: usize,
    /// `true` when the argument list is empty (`.lock()` vs
    /// `.read(&mut buf)` — ranked acquisitions take no arguments).
    pub empty_args: bool,
}

/// How a local variable got its type.
#[derive(Debug, Clone)]
pub enum LocalHint {
    /// Explicit annotation or parameter type.
    Direct(TypeShape),
    /// Bound to the value of an expression chain.
    Chain(Vec<ChainSeg>),
    /// Bound to one *element* of an iterated chain (`for x in …`,
    /// iterator-adapter closure parameters).
    IterChain(Vec<ChainSeg>),
}

/// A typed local binding (parameter, `let`, `for`, or closure param).
#[derive(Debug, Clone)]
pub struct LocalBind {
    /// The bound name.
    pub name: String,
    /// Where its type comes from.
    pub hint: LocalHint,
}

/// One `fn` item.
#[derive(Debug)]
pub struct FnItem {
    /// The function name.
    pub name: String,
    /// The impl/trait self type (`None` for free and nested fns).
    pub self_type: Option<String>,
    /// The trait being implemented/declared, if any.
    pub trait_name: Option<String>,
    /// 1-based line of the `fn` name.
    pub line: u32,
    /// Token index of the name (for test-span membership).
    pub name_tok: usize,
    /// Token indices of the body's `{` and `}` (`None` for decls).
    pub body: Option<(usize, usize)>,
    /// Typed parameters and locals, in binding order.
    pub binds: Vec<LocalBind>,
    /// Normalized return type.
    pub ret_shape: Option<TypeShape>,
    /// `true` when the return type mentions a `*Guard*` identifier —
    /// the function hands a held lock guard back to its caller.
    pub ret_mentions_guard: bool,
    /// Call expressions in the body, in source order (excluding nested
    /// fn bodies, which get their own items).
    pub calls: Vec<CallSite>,
    /// Indices (into [`FileIndex::fns`]) of nested fn items.
    pub children: Vec<usize>,
    /// `true` when the item sits inside a `#[test]`/`#[cfg(test)]` span.
    pub is_test: bool,
}

/// A `const NAME: Rank = Rank { order: N, … }` lock-rank definition.
#[derive(Debug)]
pub struct RankConst {
    /// The constant's name.
    pub name: String,
    /// Its `order` value.
    pub order: u32,
}

/// Everything the parser recovered from one file.
#[derive(Debug, Default)]
pub struct FileIndex {
    /// All fn items, outer items before their nested children.
    pub fns: Vec<FnItem>,
    /// Struct name → field name → normalized field type.
    pub structs: HashMap<String, HashMap<String, TypeShape>>,
    /// Every type name defined here (structs, enums, impl self types,
    /// traits).
    pub types: Vec<String>,
    /// Trait names declared here.
    pub traits: Vec<String>,
    /// `type Alias = Target;` items, normalized.
    pub aliases: HashMap<String, TypeShape>,
    /// Lock-rank constants defined here (non-test code only).
    pub rank_consts: Vec<RankConst>,
    /// `field: RankedMutex::new(CONST, …)` bindings: field → const name
    /// (non-test code only).
    pub rank_fields: Vec<(String, String)>,
}

/// Identifiers that continue a pattern rather than bind a name.
const PATTERN_KEYWORDS: [&str; 8] = ["mut", "ref", "box", "Some", "Ok", "Err", "None", "_"];

/// Iterator adapters whose single-parameter closure receives one
/// element of the receiver chain.
const ADAPTERS: [&str; 14] = [
    "map",
    "filter",
    "filter_map",
    "flat_map",
    "for_each",
    "inspect",
    "find",
    "find_map",
    "any",
    "all",
    "retain",
    "position",
    "map_while",
    "and_then",
];

/// Parses one lexed file.
pub fn parse(lexed: &Lexed) -> FileIndex {
    let test_spans = find_test_spans(&lexed.tokens);
    let mut p = Parser {
        t: &lexed.tokens,
        i: 0,
        idx: FileIndex::default(),
        scopes: Vec::new(),
        pending: None,
        test_spans,
    };
    p.run();
    p.idx
}

/// What the next `{` opens.
enum Pending {
    /// An `impl`/`trait` block for `ty`.
    Impl {
        ty: String,
        trait_name: Option<String>,
    },
    /// The body of `fns[fn_id]`.
    Fn { fn_id: usize },
}

enum ScopeKind {
    Impl {
        ty: String,
        trait_name: Option<String>,
    },
    Fn {
        fn_id: usize,
    },
    Other,
}

struct Parser<'a> {
    t: &'a [Token],
    i: usize,
    idx: FileIndex,
    scopes: Vec<ScopeKind>,
    pending: Option<Pending>,
    test_spans: Vec<(usize, usize)>,
}

impl Parser<'_> {
    fn tok(&self, i: usize) -> Option<&Token> {
        self.t.get(i)
    }

    fn is_ident_at(&self, i: usize) -> bool {
        self.tok(i).is_some_and(|t| t.kind == TokenKind::Ident)
    }

    fn is_path_sep(&self, i: usize) -> bool {
        i >= 1
            && self.tok(i).is_some_and(|t| t.is_punct(':'))
            && self.tok(i + 1).is_some_and(|t| t.is_punct(':'))
    }

    fn in_test_span(&self, i: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| (s..=e).contains(&i))
    }

    /// The innermost enclosing fn item, if any.
    fn current_fn(&self) -> Option<usize> {
        self.scopes.iter().rev().find_map(|s| match s {
            ScopeKind::Fn { fn_id } => Some(*fn_id),
            _ => None,
        })
    }

    fn run(&mut self) {
        while self.i < self.t.len() {
            let tok = &self.t[self.i];
            if tok.is_punct('{') {
                let kind = match self.pending.take() {
                    Some(Pending::Impl { ty, trait_name }) => ScopeKind::Impl { ty, trait_name },
                    Some(Pending::Fn { fn_id }) => {
                        self.idx.fns[fn_id].body = Some((self.i, self.i));
                        ScopeKind::Fn { fn_id }
                    }
                    None => ScopeKind::Other,
                };
                self.scopes.push(kind);
                self.i += 1;
            } else if tok.is_punct('}') {
                if let Some(ScopeKind::Fn { fn_id }) = self.scopes.pop() {
                    if let Some((start, _)) = self.idx.fns[fn_id].body {
                        self.idx.fns[fn_id].body = Some((start, self.i));
                    }
                }
                self.i += 1;
            } else if tok.kind == TokenKind::Ident {
                match tok.text.as_str() {
                    "impl" => self.impl_header(),
                    "trait" => self.trait_header(),
                    "fn" => self.fn_header(),
                    "struct" => self.struct_item(),
                    "enum" | "union" => self.enum_item(),
                    "type" => self.type_alias(),
                    "const" => self.const_item(),
                    "let" => self.let_bind(),
                    "for" => self.for_bind(),
                    _ => self.maybe_call(),
                }
            } else {
                self.i += 1;
            }
        }
    }

    /// Skips a balanced `<…>` group starting at `j` (which holds `<`);
    /// returns the index just past the closing `>`. `->` arrows inside
    /// do not close the group.
    fn skip_angles(&self, mut j: usize) -> usize {
        let mut depth = 0i32;
        let limit = self.t.len().min(j + 512);
        while j < limit {
            let t = &self.t[j];
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                if j > 0 && self.t[j - 1].is_punct('-') {
                    j += 1;
                    continue;
                }
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        j
    }

    /// Skips a balanced paren/bracket/brace group starting at `j`;
    /// returns the index just past the closer.
    fn skip_group(&self, mut j: usize, open: char, close: char) -> usize {
        let mut depth = 0i32;
        while j < self.t.len() {
            let t = &self.t[j];
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        j
    }

    /// Parses a type path at `j` (`serve::lockrank::ReadGuard<'a, T>`),
    /// returning `(last_segment, index_past_path_and_generics)`.
    fn path_at(&self, mut j: usize) -> Option<(String, usize)> {
        if !self.is_ident_at(j) {
            return None;
        }
        let mut last = self.t[j].text.clone();
        j += 1;
        loop {
            if self.is_path_sep(j) {
                // `::<…>` turbofish between segments.
                if self.tok(j + 2).is_some_and(|t| t.is_punct('<')) {
                    j = self.skip_angles(j + 2);
                    if self.is_path_sep(j) && self.is_ident_at(j + 2) {
                        last = self.t[j + 2].text.clone();
                        j += 3;
                        continue;
                    }
                    break;
                }
                if self.is_ident_at(j + 2) {
                    last = self.t[j + 2].text.clone();
                    j += 3;
                    continue;
                }
                break;
            }
            if self.tok(j).is_some_and(|t| t.is_punct('<')) {
                j = self.skip_angles(j);
                // A path may continue after generics: `Foo<T>::bar`.
                if self.is_path_sep(j) && self.is_ident_at(j + 2) {
                    last = self.t[j + 2].text.clone();
                    j += 3;
                    continue;
                }
            }
            break;
        }
        Some((last, j))
    }

    /// `impl<…> Type {` / `impl<…> Trait for Type {`.
    fn impl_header(&mut self) {
        let mut j = self.i + 1;
        if self.tok(j).is_some_and(|t| t.is_punct('<')) {
            j = self.skip_angles(j);
        }
        // Skip leading `&`/`mut`/`dyn` on the (trait or self) type.
        while self
            .tok(j)
            .is_some_and(|t| t.is_punct('&') || t.is_ident("mut") || t.is_ident("dyn"))
        {
            j += 1;
        }
        let Some((first, after)) = self.path_at(j) else {
            self.i += 1;
            return;
        };
        j = after;
        let (ty, trait_name) = if self.tok(j).is_some_and(|t| t.is_ident("for")) {
            j += 1;
            while self
                .tok(j)
                .is_some_and(|t| t.is_punct('&') || t.is_ident("mut") || t.is_ident("dyn"))
            {
                j += 1;
            }
            match self.path_at(j) {
                Some((ty, after)) => {
                    j = after;
                    (ty, Some(first))
                }
                None => {
                    self.i += 1;
                    return;
                }
            }
        } else {
            (first, None)
        };
        // Skip a `where` clause (no braces inside).
        while j < self.t.len() && !self.t[j].is_punct('{') && !self.t[j].is_punct(';') {
            j += 1;
        }
        if self.tok(j).is_some_and(|t| t.is_punct('{')) {
            if !self.idx.types.contains(&ty) {
                self.idx.types.push(ty.clone());
            }
            self.pending = Some(Pending::Impl { ty, trait_name });
            self.i = j;
        } else {
            self.i = j;
        }
    }

    /// `trait Name … {` — treated as an impl of the trait for itself,
    /// so default method bodies resolve as `(TraitName, method)`.
    fn trait_header(&mut self) {
        let Some((name, mut j)) = self.path_at(self.i + 1) else {
            self.i += 1;
            return;
        };
        while j < self.t.len() && !self.t[j].is_punct('{') && !self.t[j].is_punct(';') {
            j += 1;
        }
        if self.tok(j).is_some_and(|t| t.is_punct('{')) {
            if !self.idx.types.contains(&name) {
                self.idx.types.push(name.clone());
            }
            if !self.idx.traits.contains(&name) {
                self.idx.traits.push(name.clone());
            }
            self.pending = Some(Pending::Impl {
                ty: name.clone(),
                trait_name: Some(name),
            });
            self.i = j;
        } else {
            self.i = j;
        }
    }

    /// `fn name<…>(params) -> Ret where … { body }`.
    fn fn_header(&mut self) {
        let name_tok = self.i + 1;
        if !self.is_ident_at(name_tok) {
            // `fn(…)` pointer type or `impl Fn…` bound.
            self.i += 1;
            return;
        }
        let name = self.t[name_tok].text.clone();
        let line = self.t[name_tok].line;
        let mut j = name_tok + 1;
        if self.tok(j).is_some_and(|t| t.is_punct('<')) {
            j = self.skip_angles(j);
        }
        if !self.tok(j).is_some_and(|t| t.is_punct('(')) {
            self.i = name_tok;
            return;
        }
        let params_start = j + 1;
        let params_end = self.skip_group(j, '(', ')') - 1; // index of `)`
        let binds = self.params(params_start, params_end);
        j = params_end + 1;
        // Return type: `-> Tokens` until `{`, `;`, or `where`.
        let mut ret_shape = None;
        let mut ret_mentions_guard = false;
        if self.tok(j).is_some_and(|t| t.is_punct('-'))
            && self.tok(j + 1).is_some_and(|t| t.is_punct('>'))
        {
            let ret_start = j + 2;
            let mut k = ret_start;
            while k < self.t.len() {
                let t = &self.t[k];
                if t.is_punct('{') || t.is_punct(';') || t.is_ident("where") {
                    break;
                }
                if t.kind == TokenKind::Ident && t.text.contains("Guard") {
                    ret_mentions_guard = true;
                }
                k += 1;
            }
            ret_shape = normalize_type(&self.t[ret_start..k]);
            j = k;
        }
        while j < self.t.len() && !self.t[j].is_punct('{') && !self.t[j].is_punct(';') {
            j += 1;
        }
        // Attribution: a method iff the *innermost* non-Other scope is
        // an impl/trait block (nested fns inside methods are free).
        let (self_type, trait_name) = match self
            .scopes
            .iter()
            .rev()
            .find(|s| !matches!(s, ScopeKind::Other))
        {
            Some(ScopeKind::Impl { ty, trait_name }) => (Some(ty.clone()), trait_name.clone()),
            _ => (None, None),
        };
        let fn_id = self.idx.fns.len();
        if let Some(parent) = self.current_fn() {
            self.idx.fns[parent].children.push(fn_id);
        }
        let is_test = self.in_test_span(name_tok);
        self.idx.fns.push(FnItem {
            name,
            self_type,
            trait_name,
            line,
            name_tok,
            body: None,
            binds,
            ret_shape,
            ret_mentions_guard,
            calls: Vec::new(),
            children: Vec::new(),
            is_test,
        });
        if self.tok(j).is_some_and(|t| t.is_punct('{')) {
            self.pending = Some(Pending::Fn { fn_id });
            self.i = j;
        } else {
            self.i = j.min(self.t.len());
            if self.tok(self.i).is_some_and(|t| t.is_punct(';')) {
                self.i += 1;
            }
        }
    }

    /// Parses the parameter list tokens in `[start, end)` into typed
    /// binds. Only simple `name: Type` params are typed.
    fn params(&self, start: usize, end: usize) -> Vec<LocalBind> {
        let mut out = Vec::new();
        let mut j = start;
        while j < end {
            // One parameter: up to the next top-level `,`.
            let mut k = j;
            let mut depth = 0i32;
            while k < end {
                let t = &self.t[k];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                } else if t.is_punct('>') {
                    if !(k > 0 && self.t[k - 1].is_punct('-')) {
                        depth -= 1;
                    }
                } else if t.is_punct(',') && depth == 0 {
                    break;
                }
                k += 1;
            }
            // `name : Type` (skip `mut`; `self` params carry no bind).
            let mut p = j;
            if self.tok(p).is_some_and(|t| t.is_ident("mut")) {
                p += 1;
            }
            if self.is_ident_at(p)
                && !self.t[p].is_ident("self")
                && self.tok(p + 1).is_some_and(|t| t.is_punct(':'))
                && !self.is_path_sep(p + 1)
            {
                if let Some(shape) = normalize_type(&self.t[p + 2..k]) {
                    out.push(LocalBind {
                        name: self.t[p].text.clone(),
                        hint: LocalHint::Direct(shape),
                    });
                }
            }
            j = k + 1;
        }
        out
    }

    /// `struct Name<…> { fields }` / tuple / unit struct.
    fn struct_item(&mut self) {
        let name_tok = self.i + 1;
        if !self.is_ident_at(name_tok) {
            self.i += 1;
            return;
        }
        let name = self.t[name_tok].text.clone();
        if !self.idx.types.contains(&name) {
            self.idx.types.push(name.clone());
        }
        let mut j = name_tok + 1;
        if self.tok(j).is_some_and(|t| t.is_punct('<')) {
            j = self.skip_angles(j);
        }
        while j < self.t.len()
            && !self.t[j].is_punct('{')
            && !self.t[j].is_punct('(')
            && !self.t[j].is_punct(';')
        {
            j += 1;
        }
        let mut fields = HashMap::new();
        match self.tok(j) {
            Some(t) if t.is_punct('{') => {
                let end = self.skip_group(j, '{', '}') - 1; // the `}`
                let mut k = j + 1;
                while k < end {
                    k = self.skip_visibility(k);
                    if self.is_ident_at(k)
                        && self.tok(k + 1).is_some_and(|t| t.is_punct(':'))
                        && !self.is_path_sep(k + 1)
                    {
                        let fname = self.t[k].text.clone();
                        let ty_start = k + 2;
                        let ty_end = self.field_end(ty_start, end);
                        if let Some(shape) = normalize_type(&self.t[ty_start..ty_end]) {
                            fields.insert(fname, shape);
                        }
                        k = ty_end + 1;
                    } else {
                        k += 1;
                    }
                }
                self.i = end + 1;
            }
            Some(t) if t.is_punct('(') => {
                let end = self.skip_group(j, '(', ')') - 1;
                let mut k = j + 1;
                let mut index = 0usize;
                while k < end {
                    k = self.skip_visibility(k);
                    let ty_end = self.field_end(k, end);
                    if let Some(shape) = normalize_type(&self.t[k..ty_end]) {
                        fields.insert(index.to_string(), shape);
                    }
                    index += 1;
                    k = ty_end + 1;
                }
                self.i = end + 1;
            }
            _ => {
                self.i = j + 1;
            }
        }
        self.idx.structs.insert(name, fields);
    }

    /// Skips `pub` / `pub(crate)` / attributes before a field.
    fn skip_visibility(&self, mut k: usize) -> usize {
        loop {
            if self.tok(k).is_some_and(|t| t.is_punct('#'))
                && self.tok(k + 1).is_some_and(|t| t.is_punct('['))
            {
                k = self.skip_group(k + 1, '[', ']');
            } else if self.tok(k).is_some_and(|t| t.is_ident("pub")) {
                k += 1;
                if self.tok(k).is_some_and(|t| t.is_punct('(')) {
                    k = self.skip_group(k, '(', ')');
                }
            } else {
                return k;
            }
        }
    }

    /// End of a field's type: the next `,` at depth 0, or `limit`.
    fn field_end(&self, start: usize, limit: usize) -> usize {
        let mut depth = 0i32;
        let mut k = start;
        while k < limit {
            let t = &self.t[k];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct('>') {
                if !(k > 0 && self.t[k - 1].is_punct('-')) {
                    depth -= 1;
                }
            } else if t.is_punct(',') && depth == 0 {
                return k;
            }
            k += 1;
        }
        limit
    }

    /// `enum`/`union` — register the name, skip the body.
    fn enum_item(&mut self) {
        let name_tok = self.i + 1;
        if !self.is_ident_at(name_tok) {
            self.i += 1;
            return;
        }
        let name = self.t[name_tok].text.clone();
        if !self.idx.types.contains(&name) {
            self.idx.types.push(name);
        }
        let mut j = name_tok + 1;
        while j < self.t.len() && !self.t[j].is_punct('{') && !self.t[j].is_punct(';') {
            j += 1;
        }
        if self.tok(j).is_some_and(|t| t.is_punct('{')) {
            self.i = self.skip_group(j, '{', '}');
        } else {
            self.i = j + 1;
        }
    }

    /// `type Alias<…> = Target;` (also catches associated types, which
    /// is harmless and occasionally useful).
    fn type_alias(&mut self) {
        let name_tok = self.i + 1;
        if !self.is_ident_at(name_tok) {
            self.i += 1;
            return;
        }
        let name = self.t[name_tok].text.clone();
        let mut j = name_tok + 1;
        if self.tok(j).is_some_and(|t| t.is_punct('<')) {
            j = self.skip_angles(j);
        }
        if !self.tok(j).is_some_and(|t| t.is_punct('=')) {
            self.i = name_tok;
            return;
        }
        let ty_start = j + 1;
        let mut k = ty_start;
        while k < self.t.len() && !self.t[k].is_punct(';') {
            k += 1;
        }
        if let Some(shape) = normalize_type(&self.t[ty_start..k]) {
            self.idx.aliases.insert(name, shape);
        }
        self.i = k + 1;
    }

    /// `const NAME: Rank = Rank { … order: N … }` rank definitions.
    /// Other consts just advance.
    fn const_item(&mut self) {
        let name_tok = self.i + 1;
        if self.is_ident_at(name_tok)
            && self.tok(name_tok + 1).is_some_and(|t| t.is_punct(':'))
            && self.tok(name_tok + 2).is_some_and(|t| t.is_ident("Rank"))
            && !self.in_test_span(self.i)
        {
            let limit = self.t.len().min(name_tok + 64);
            let mut k = name_tok + 3;
            while k < limit && !self.t[k].is_punct(';') {
                if self.t[k].is_ident("order")
                    && self.tok(k + 1).is_some_and(|t| t.is_punct(':'))
                    && self.tok(k + 2).is_some_and(|t| t.kind == TokenKind::Number)
                {
                    if let Ok(order) = self.t[k + 2].text.parse::<u32>() {
                        self.idx.rank_consts.push(RankConst {
                            name: self.t[name_tok].text.clone(),
                            order,
                        });
                    }
                    break;
                }
                k += 1;
            }
        }
        self.i += 1;
    }

    /// Records a typed `let` binding for the innermost fn, then lets the
    /// main loop re-walk the RHS tokens (so calls inside it are seen).
    fn let_bind(&mut self) {
        let let_tok = self.i;
        self.i += 1;
        let Some(fn_id) = self.current_fn() else {
            return;
        };
        // Pattern: tokens up to `=` at depth 0 (bail on `;`/`{`).
        let mut k = let_tok + 1;
        let limit = self.t.len().min(k + 32);
        let mut depth = 0i32;
        let mut pat_end = None;
        while k < limit {
            let t = &self.t[k];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
                depth -= 1;
            } else if t.is_punct('=') && depth == 0 {
                // `==` and `=>` never appear between a pattern and its
                // initializer.
                pat_end = Some(k);
                break;
            } else if t.is_punct(';') || t.is_punct('{') {
                break;
            }
            k += 1;
        }
        let Some(eq) = pat_end else {
            return;
        };
        // Supported shapes: `[mut] name [: Type]` and `Ok(name)` /
        // `Some(name)` (the let-else guard patterns).
        let mut p = let_tok + 1;
        if self.tok(p).is_some_and(|t| t.is_ident("mut")) {
            p += 1;
        }
        let (name, ann_start) = if self.is_ident_at(p)
            && (self.t[p].is_ident("Ok") || self.t[p].is_ident("Some"))
            && self.tok(p + 1).is_some_and(|t| t.is_punct('('))
        {
            let mut q = p + 2;
            if self.tok(q).is_some_and(|t| t.is_ident("mut")) {
                q += 1;
            }
            if self.is_ident_at(q) && self.tok(q + 1).is_some_and(|t| t.is_punct(')')) {
                (Some(self.t[q].text.clone()), q + 2)
            } else {
                (None, eq)
            }
        } else if self.is_ident_at(p) && !PATTERN_KEYWORDS.contains(&self.t[p].text.as_str()) {
            (Some(self.t[p].text.clone()), p + 1)
        } else {
            (None, eq)
        };
        let Some(name) = name else { return };
        // Explicit annotation wins.
        if self.tok(ann_start).is_some_and(|t| t.is_punct(':')) && ann_start + 1 < eq {
            if let Some(shape) = normalize_type(&self.t[ann_start + 1..eq]) {
                self.idx.fns[fn_id].binds.push(LocalBind {
                    name,
                    hint: LocalHint::Direct(shape),
                });
            }
            return;
        }
        if ann_start != eq {
            return; // unsupported pattern tail
        }
        // `let x = match … { Pat => expr, … }`: every arm yields the
        // same type, so the first arm's expression types the binding
        // (arms that diverge — `return`/`panic!` — make forward_chain
        // bail, which only costs precision, never soundness).
        let rhs = if self.tok(eq + 1).is_some_and(|t| t.is_ident("match")) {
            let Some(arm) = self.first_match_arm(eq + 1) else {
                return;
            };
            arm
        } else {
            eq + 1
        };
        if let Some(chain) = self.forward_chain(rhs) {
            self.idx.fns[fn_id].binds.push(LocalBind {
                name,
                hint: LocalHint::Chain(chain),
            });
        }
    }

    /// From the `match` keyword at `m`, the token index just after the
    /// first arm's `=>` (bounded scan; `None` if no arm is found).
    fn first_match_arm(&self, m: usize) -> Option<usize> {
        // Skip the scrutinee: everything up to the body `{` at depth 0.
        let mut k = m + 1;
        let mut depth = 0i32;
        let limit = self.t.len().min(m + 64);
        while k < limit {
            let t = &self.t[k];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct('{') && depth == 0 {
                break;
            } else if t.is_punct(';') {
                return None;
            }
            k += 1;
        }
        // Inside the body: the first `=>` at body depth.
        let limit = self.t.len().min(k + 64);
        let mut j = k + 1;
        depth = 0;
        while j + 1 < limit {
            let t = &self.t[j];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                if t.is_punct('}') && depth == 0 {
                    return None;
                }
                depth -= 1;
            } else if t.is_punct('=') && depth == 0 && self.t[j + 1].is_punct('>') {
                return Some(j + 2);
            }
            j += 1;
        }
        None
    }

    /// `for name in chain { … }` element bindings.
    fn for_bind(&mut self) {
        let for_tok = self.i;
        self.i += 1;
        // `for<'a>` higher-ranked bound / `impl Trait for Type` never
        // reach here (impl headers consume their own `for`).
        if self.tok(for_tok + 1).is_some_and(|t| t.is_punct('<')) {
            return;
        }
        let Some(fn_id) = self.current_fn() else {
            return;
        };
        let mut p = for_tok + 1;
        if self.tok(p).is_some_and(|t| t.is_ident("mut")) {
            p += 1;
        }
        if !self.is_ident_at(p) || !self.tok(p + 1).is_some_and(|t| t.is_ident("in")) {
            return;
        }
        let name = self.t[p].text.clone();
        if let Some(chain) = self.forward_chain(p + 2) {
            self.idx.fns[fn_id].binds.push(LocalBind {
                name,
                hint: LocalHint::IterChain(chain),
            });
        }
    }

    /// Reads an expression chain starting at `j` without consuming:
    /// `[&]* (self | ident) (.ident | .method(…) | ::ident)*`. Returns
    /// `None` when `j` does not start a chain (literals, `match`, …).
    fn forward_chain(&self, mut j: usize) -> Option<Vec<ChainSeg>> {
        while self
            .tok(j)
            .is_some_and(|t| t.is_punct('&') || t.is_punct('*') || t.is_ident("mut"))
        {
            j += 1;
        }
        if !self.is_ident_at(j) {
            return None;
        }
        let head = &self.t[j];
        if matches!(
            head.text.as_str(),
            "match" | "if" | "loop" | "while" | "unsafe" | "move" | "return" | "break"
        ) {
            return None;
        }
        let mut segs = vec![if head.is_ident("self") {
            ChainSeg::SelfTok
        } else {
            ChainSeg::Ident(head.text.clone())
        }];
        j += 1;
        loop {
            if self.is_path_sep(j) && self.is_ident_at(j + 2) {
                // Path segment: keep as Ident (type/module qualifier).
                segs.push(ChainSeg::Ident(self.t[j + 2].text.clone()));
                j += 3;
                continue;
            }
            if self.is_path_sep(j) && self.tok(j + 2).is_some_and(|t| t.is_punct('<')) {
                // Turbofish: the type arguments don't change the chain.
                j = self.skip_angles(j + 2);
                continue;
            }
            if self.tok(j).is_some_and(|t| t.is_punct('(')) {
                // Call on the last segment.
                let name = match segs.pop()? {
                    ChainSeg::Ident(n) => n,
                    other => {
                        segs.push(other);
                        return Some(segs);
                    }
                };
                segs.push(ChainSeg::Call(name));
                j = self.skip_group(j, '(', ')');
                continue;
            }
            if self.tok(j).is_some_and(|t| t.is_punct('?')) {
                j += 1;
                continue;
            }
            if self.tok(j).is_some_and(|t| t.is_punct('.'))
                && self
                    .tok(j + 1)
                    .is_some_and(|t| t.kind == TokenKind::Ident || t.kind == TokenKind::Number)
            {
                segs.push(ChainSeg::Ident(self.t[j + 1].text.clone()));
                j += 2;
                continue;
            }
            break;
        }
        Some(segs)
    }

    /// Call-expression detection at the current ident token.
    fn maybe_call(&mut self) {
        let i = self.i;
        self.i += 1;
        if !self.tok(i + 1).is_some_and(|t| t.is_punct('(')) {
            return;
        }
        let Some(fn_id) = self.current_fn() else {
            // Rank field bindings can sit in any fn (constructors) —
            // but `RankedMutex::new` outside a fn body is config, not
            // code; skip.
            return;
        };
        let name = self.t[i].text.clone();
        let empty_args = self.tok(i + 2).is_some_and(|t| t.is_punct(')'));
        let line = self.t[i].line;
        let callee = if i >= 1 && self.t[i - 1].is_punct('.') {
            let recv = self.recv_chain(i);
            // `recv.map(|x| …)`: the closure parameter binds one
            // element of the receiver chain.
            if is_adapter(&name)
                && self.tok(i + 2).is_some_and(|t| t.is_punct('|'))
                && self.is_ident_at(i + 3)
                && self
                    .tok(i + 4)
                    .is_some_and(|t| t.is_punct('|') || t.is_punct(':'))
            {
                let param = self.t[i + 3].text.clone();
                if param != "_" {
                    self.idx.fns[fn_id].binds.push(LocalBind {
                        name: param,
                        hint: LocalHint::IterChain(recv.clone()),
                    });
                }
            }
            Callee::Method { name, recv }
        } else if i >= 2 && self.is_path_sep(i - 2) {
            let qualifier = self.path_qualifier(i);
            // `field: RankedMutex::new(CONST, …)` rank bindings.
            if let Some(q) = &qualifier {
                if (q == "RankedMutex" || q == "RankedRwLock")
                    && self.t[i].is_ident("new")
                    && !self.in_test_span(i)
                {
                    self.record_rank_field(i);
                }
            }
            Callee::Path { qualifier, name }
        } else {
            Callee::Free { name }
        };
        self.idx.fns[fn_id].calls.push(CallSite {
            callee,
            line,
            tok: i,
            empty_args,
        });
    }

    /// The path segment qualifying `t[i]` (`Type::name` → `Type`),
    /// skipping a turbofish between them.
    fn path_qualifier(&self, i: usize) -> Option<String> {
        // i-2, i-1 are `::`. Before that: ident, or `>` closing a
        // turbofish/generic whose opener is preceded by the ident.
        if i < 3 {
            return None;
        }
        let j = i - 3;
        let t = &self.t[j];
        if t.kind == TokenKind::Ident {
            return Some(t.text.clone());
        }
        if t.is_punct('>') {
            // Walk back over the balanced `<…>`.
            let mut depth = 0i32;
            let mut k = j;
            loop {
                let tk = &self.t[k];
                if tk.is_punct('>') {
                    depth += 1;
                } else if tk.is_punct('<') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if k == 0 {
                    return None;
                }
                k -= 1;
            }
            // `Type::<…>` or `Type<…>`.
            if k >= 1 && self.t[k - 1].kind == TokenKind::Ident {
                return Some(self.t[k - 1].text.clone());
            }
            if k >= 3 && self.is_path_sep(k - 2) && self.t[k - 3].kind == TokenKind::Ident {
                return Some(self.t[k - 3].text.clone());
            }
        }
        None
    }

    /// At `RankedMutex::new` (name index `name_i`): if this initializes
    /// a struct-literal field (`field: RankedMutex::new(CONST, …)`),
    /// record the field → rank-const binding.
    fn record_rank_field(&mut self, name_i: usize) {
        if name_i < 5 {
            return;
        }
        let q = name_i - 3; // the qualifier ident of `Qual::new`
        if self.t[q].kind != TokenKind::Ident {
            return;
        }
        // Before the qualifier: a single `:` (struct-literal field
        // separator — not `::`), preceded by the field name.
        let colon = q - 1;
        if !self.t[colon].is_punct(':') || self.t[colon - 1].is_punct(':') {
            return;
        }
        let field = &self.t[colon - 1];
        if field.kind != TokenKind::Ident {
            return;
        }
        // First argument must be a bare constant name.
        if !self.tok(name_i + 1).is_some_and(|t| t.is_punct('(')) {
            return;
        }
        let Some(c) = self.tok(name_i + 2) else {
            return;
        };
        if c.kind != TokenKind::Ident {
            return;
        }
        self.idx
            .rank_fields
            .push((field.text.clone(), c.text.clone()));
    }

    /// Builds the receiver chain of the method call whose name sits at
    /// `i` (`t[i-1]` is `.`), walking backwards. Innermost receiver
    /// first in the returned vec.
    fn recv_chain(&self, i: usize) -> Vec<ChainSeg> {
        let mut segs: Vec<ChainSeg> = Vec::new();
        let mut j = i as isize - 2;
        loop {
            if j < 0 {
                break;
            }
            let t = &self.t[j as usize];
            if t.is_punct(')') {
                // Match backwards to the opening paren.
                let mut depth = 0i32;
                let mut k = j;
                loop {
                    let tk = &self.t[k as usize];
                    if tk.is_punct(')') {
                        depth += 1;
                    } else if tk.is_punct('(') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k -= 1;
                    if k < 0 {
                        segs.push(ChainSeg::Unknown);
                        segs.reverse();
                        return segs;
                    }
                }
                let open = k;
                if open >= 1 && self.t[(open - 1) as usize].kind == TokenKind::Ident {
                    segs.push(ChainSeg::Call(self.t[(open - 1) as usize].text.clone()));
                    j = open - 2;
                } else {
                    segs.push(ChainSeg::Unknown);
                    break;
                }
            } else if t.kind == TokenKind::Ident || t.kind == TokenKind::Number {
                if t.is_ident("self") {
                    segs.push(ChainSeg::SelfTok);
                } else {
                    segs.push(ChainSeg::Ident(t.text.clone()));
                }
                j -= 1;
            } else if t.is_punct('?') {
                j -= 1;
                continue;
            } else {
                segs.push(ChainSeg::Unknown);
                break;
            }
            if j >= 0 && self.t[j as usize].is_punct('.') {
                j -= 1;
                continue;
            }
            if j >= 1 && self.t[j as usize].is_punct(':') && self.t[(j - 1) as usize].is_punct(':')
            {
                j -= 2;
                continue;
            }
            break;
        }
        segs.reverse();
        segs
    }
}

/// The wrapper types normalization strips down to their (first
/// non-lifetime) type argument.
const WRAPPERS: [&str; 24] = [
    "Arc",
    "Rc",
    "Box",
    "Option",
    "Result",
    "Cell",
    "RefCell",
    "OnceLock",
    "Mutex",
    "RwLock",
    "RankedMutex",
    "RankedRwLock",
    "MutexGuard",
    "RwLockReadGuard",
    "RwLockWriteGuard",
    "RankedReadGuard",
    "RankedWriteGuard",
    "RankedMutexGuard",
    "ReadGuard",
    "WriteGuard",
    "LockGuard",
    "LockResult",
    "PoisonError",
    "ManuallyDrop",
];

/// Containers whose element shape is their first type argument.
const SEQ_CONTAINERS: [&str; 5] = ["Vec", "VecDeque", "BinaryHeap", "HashSet", "BTreeSet"];

/// Map containers whose element shape is their *second* type argument.
const MAP_CONTAINERS: [&str; 2] = ["HashMap", "BTreeMap"];

/// Normalizes a type's token slice into a [`TypeShape`]. `None` when
/// the tokens do not name a followable type (tuples, fn pointers,
/// bare generics the parser cannot see through).
pub fn normalize_type(tokens: &[Token]) -> Option<TypeShape> {
    let mut j = 0usize;
    // Strip references, raw pointers, lifetimes, `mut`/`dyn`/`impl`.
    loop {
        match tokens.get(j) {
            Some(t) if t.is_punct('&') || t.is_punct('*') => j += 1,
            Some(t) if t.is_punct('\'') => j += 2, // lifetime tick + name
            Some(t) if t.is_ident("mut") || t.is_ident("dyn") || t.is_ident("const") => j += 1,
            Some(t) if t.is_ident("impl") => j += 1,
            _ => break,
        }
    }
    let first = tokens.get(j)?;
    if first.is_punct('[') {
        // Slice/array: element type up to `;` or `]`.
        let inner_start = j + 1;
        let mut k = inner_start;
        let mut depth = 0i32;
        while k < tokens.len() {
            let t = &tokens[k];
            if t.is_punct('[') {
                depth += 1;
            } else if (t.is_punct(';') || t.is_punct(']')) && depth == 0 {
                break;
            } else if t.is_punct(']') {
                depth -= 1;
            }
            k += 1;
        }
        let elem = normalize_type(&tokens[inner_start..k])?;
        return Some(TypeShape {
            head: "slice".to_string(),
            elem: Some(Box::new(elem)),
        });
    }
    if first.kind != TokenKind::Ident {
        return None; // tuple, macro type, …
    }
    // Path: collect segments, remember the last.
    let mut head = first.text.clone();
    let mut k = j + 1;
    while k + 1 < tokens.len()
        && tokens[k].is_punct(':')
        && tokens[k + 1].is_punct(':')
        && tokens
            .get(k + 2)
            .is_some_and(|t| t.kind == TokenKind::Ident)
    {
        head = tokens[k + 2].text.clone();
        k += 3;
    }
    // Generic arguments, split at top level.
    let mut args: Vec<&[Token]> = Vec::new();
    if tokens.get(k).is_some_and(|t| t.is_punct('<')) {
        let open = k;
        let mut depth = 0i32;
        let mut arg_start = open + 1;
        let mut m = open;
        while m < tokens.len() {
            let t = &tokens[m];
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                if m > 0 && tokens[m - 1].is_punct('-') {
                    m += 1;
                    continue;
                }
                depth -= 1;
                if depth == 0 {
                    if arg_start < m {
                        args.push(&tokens[arg_start..m]);
                    }
                    break;
                }
            } else if t.is_punct(',') && depth == 1 {
                args.push(&tokens[arg_start..m]);
                arg_start = m + 1;
            }
            m += 1;
        }
    }
    fn non_lifetime(slice: &[Token]) -> bool {
        slice
            .iter()
            .any(|t| (t.kind == TokenKind::Ident && !t.is_ident("static")) || t.is_punct('['))
            && !matches!(slice.first(), Some(t) if t.is_punct('\'') && slice.len() <= 2)
    }
    if WRAPPERS.contains(&head.as_str()) {
        let inner = args.iter().find(|a| non_lifetime(a))?;
        return normalize_type(inner);
    }
    if SEQ_CONTAINERS.contains(&head.as_str()) {
        let elem = args
            .iter()
            .find(|a| non_lifetime(a))
            .and_then(|a| normalize_type(a));
        return Some(TypeShape {
            head,
            elem: elem.map(Box::new),
        });
    }
    if MAP_CONTAINERS.contains(&head.as_str()) {
        let typed: Vec<&&[Token]> = args.iter().filter(|a| non_lifetime(a)).collect();
        let elem = typed.get(1).and_then(|a| normalize_type(a));
        return Some(TypeShape {
            head,
            elem: elem.map(Box::new),
        });
    }
    Some(TypeShape { head, elem: None })
}

/// Whether `name` is an iterator adapter whose closure parameter binds
/// one element of the receiver.
pub fn is_adapter(name: &str) -> bool {
    ADAPTERS.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn index(src: &str) -> FileIndex {
        parse(&lex(src))
    }

    fn shape(ty: &str) -> Option<TypeShape> {
        normalize_type(&lex(ty).tokens)
    }

    #[test]
    fn normalize_strips_wrappers_and_lifetimes() {
        assert_eq!(
            shape("Arc<RwLock<SearchEngine<W>>>").unwrap().head,
            "SearchEngine"
        );
        assert_eq!(
            shape("Result<WriteGuard<'_, SearchEngine<W>>, HostError>")
                .unwrap()
                .head,
            "SearchEngine"
        );
        assert_eq!(
            shape("Option<&'a mut HostTables>").unwrap().head,
            "HostTables"
        );
    }

    #[test]
    fn normalize_containers_carry_elements() {
        let s = shape("Vec<Arc<EngineHost>>").unwrap();
        assert_eq!(s.head, "Vec");
        assert_eq!(s.elem.unwrap().head, "EngineHost");
        let m = shape("HashMap<CostModel, Arc<EngineHost<Wide>>>").unwrap();
        assert_eq!(m.head, "HashMap");
        assert_eq!(m.elem.unwrap().head, "EngineHost");
    }

    #[test]
    fn fns_register_under_impl_type_with_generics() {
        let idx =
            index("impl<W: SearchWidth> EngineHost<W> {\n    fn probe(&self) -> u32 { 0 }\n}\n");
        assert_eq!(idx.fns.len(), 1);
        assert_eq!(idx.fns[0].name, "probe");
        assert_eq!(idx.fns[0].self_type.as_deref(), Some("EngineHost"));
    }

    #[test]
    fn trait_default_methods_register_under_trait_name() {
        let idx = index("trait Probe {\n    fn on(&self) { self.fire(); }\n}\n");
        assert_eq!(idx.fns[0].self_type.as_deref(), Some("Probe"));
        assert_eq!(idx.fns[0].trait_name.as_deref(), Some("Probe"));
    }

    #[test]
    fn let_bindings_capture_chains_and_match_arms() {
        let idx = index(
            "impl Host {\n fn f(&self) {\n  let g = self.engine.read();\n  let e = match x {\n   Some(v) => Engine::<W>::load(v).map_err(E::from)?,\n   None => return,\n  };\n  e.go();\n }\n}\n",
        );
        let binds = &idx.fns[0].binds;
        let g = binds.iter().find(|b| b.name == "g").unwrap();
        assert!(matches!(&g.hint, LocalHint::Chain(c) if c.len() == 3));
        let e = binds.iter().find(|b| b.name == "e").unwrap();
        match &e.hint {
            LocalHint::Chain(c) => {
                assert_eq!(c[0], ChainSeg::Ident("Engine".to_string()));
                assert_eq!(c[1], ChainSeg::Call("load".to_string()));
                assert_eq!(c[2], ChainSeg::Call("map_err".to_string()));
            }
            other => panic!("wanted chain, got {other:?}"),
        }
    }

    #[test]
    fn adapter_closures_bind_the_element() {
        let idx = index(
            "impl R {\n fn f(&self) {\n  let Ok(hosts) = self.hosts.lock() else { return; };\n  for h in hosts.narrow.values() { h.go(); }\n  hosts.wide.values().map(|w| w.go());\n }\n}\n",
        );
        let binds = &idx.fns[0].binds;
        assert!(binds.iter().any(|b| b.name == "hosts"));
        let h = binds.iter().find(|b| b.name == "h").unwrap();
        assert!(matches!(&h.hint, LocalHint::IterChain(_)));
        let w = binds.iter().find(|b| b.name == "w").unwrap();
        assert!(matches!(&w.hint, LocalHint::IterChain(_)));
    }

    #[test]
    fn rank_consts_and_fields_are_discovered() {
        let idx = index(
            "pub const ENGINE_RANK: Rank = Rank { order: 20, name: \"engine\" };\nstruct H { engine: RankedRwLock<Engine> }\nimpl H {\n fn new() -> Self {\n  Self { engine: RankedRwLock::new(ENGINE_RANK, Engine::new()) }\n }\n}\n",
        );
        assert_eq!(idx.rank_consts.len(), 1);
        assert_eq!(idx.rank_consts[0].name, "ENGINE_RANK");
        assert_eq!(idx.rank_consts[0].order, 20);
        assert!(idx
            .rank_fields
            .iter()
            .any(|(f, c)| f == "engine" && c == "ENGINE_RANK"));
    }

    #[test]
    fn guard_returning_fns_are_flagged() {
        let idx = index(
            "impl H {\n fn flight_lock(&self) -> Result<LockGuard<'_, Flight>, E> {\n  self.flight.lock().map_err(E::from)\n }\n fn plain(&self) -> u32 { 0 }\n}\n",
        );
        assert!(idx.fns[0].ret_mentions_guard);
        assert!(!idx.fns[1].ret_mentions_guard);
    }

    #[test]
    fn nested_fns_are_children_not_own_tokens() {
        let idx = index("fn outer() {\n fn inner() { helper(); }\n inner();\n}\n");
        let outer = idx.fns.iter().find(|f| f.name == "outer").unwrap();
        assert_eq!(outer.children.len(), 1);
        assert!(outer
            .calls
            .iter()
            .all(|c| !matches!(&c.callee, Callee::Free { name } if name == "helper")));
    }

    #[test]
    fn test_span_fns_are_marked() {
        let idx = index(
            "fn real() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { real(); }\n}\n",
        );
        assert!(!idx.fns.iter().find(|f| f.name == "real").unwrap().is_test);
        assert!(idx.fns.iter().find(|f| f.name == "t").unwrap().is_test);
    }

    #[test]
    fn call_sites_record_receiver_chains() {
        let idx = index(
            "impl H {\n fn f(&self) {\n  self.tables.narrow.get(&k).go();\n  free(1);\n  Path::with(2);\n }\n}\n",
        );
        let calls = &idx.fns[0].calls;
        assert!(calls.iter().any(|c| matches!(&c.callee,
            Callee::Method { name, recv } if name == "go" && recv.len() == 4)));
        assert!(calls.iter().any(|c| matches!(&c.callee,
            Callee::Free { name } if name == "free")));
        assert!(calls.iter().any(|c| matches!(&c.callee,
            Callee::Path { qualifier: Some(q), name } if q == "Path" && name == "with")));
    }
}
