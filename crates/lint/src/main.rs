//! The `mvq_lint` binary: lints the workspace and exits non-zero on any
//! violation.
//!
//! ```text
//! cargo run -p mvq_lint --release -- --workspace                # lint the repo (CI gate)
//! cargo run -p mvq_lint --release -- PATH                       # lint a tree rooted at PATH
//! cargo run -p mvq_lint --release -- --workspace --format json  # machine-readable report
//! ```
//!
//! With `--format json` the report goes to stdout as JSON (pipe it to
//! an artifact) while the findings still print as clickable
//! `file:line` text on stderr, so CI logs stay readable.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

/// The workspace root when invoked through cargo: two levels above this
/// crate's manifest.
fn default_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

fn main() -> ExitCode {
    let mut root = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => root = Some(default_root()),
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!(
                        "mvq_lint: --format takes `json` or `text`, got `{}`",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: mvq_lint [--workspace | PATH] [--format json|text]");
                println!("lints the mvq workspace invariants; exits 1 on any violation");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => root = Some(PathBuf::from(other)),
            other => {
                eprintln!("mvq_lint: unknown flag `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(default_root);
    match mvq_lint::check_workspace(&root) {
        Ok(report) => {
            if json {
                print!("{}", report.to_json());
                eprint!("{report}");
                eprintln!();
            } else {
                println!("{report}");
            }
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("mvq_lint: cannot lint {}: {err}", root.display());
            ExitCode::from(2)
        }
    }
}
