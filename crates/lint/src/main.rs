//! The `mvq_lint` binary: lints the workspace and exits non-zero on any
//! violation.
//!
//! ```text
//! cargo run -p mvq_lint --release -- --workspace   # lint the repo (CI gate)
//! cargo run -p mvq_lint --release -- PATH          # lint a tree rooted at PATH
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

/// The workspace root when invoked through cargo: two levels above this
/// crate's manifest.
fn default_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

fn main() -> ExitCode {
    let mut root = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--workspace" => root = Some(default_root()),
            "--help" | "-h" => {
                println!("usage: mvq_lint [--workspace | PATH]");
                println!("lints the mvq workspace invariants; exits 1 on any violation");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => root = Some(PathBuf::from(other)),
            other => {
                eprintln!("mvq_lint: unknown flag `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(default_root);
    match mvq_lint::check_workspace(&root) {
        Ok(report) => {
            println!("{report}");
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("mvq_lint: cannot lint {}: {err}", root.display());
            ExitCode::from(2)
        }
    }
}
