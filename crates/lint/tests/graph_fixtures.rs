//! Both-sides corpus for the interprocedural passes: `graph_bad` seeds
//! one finding per pass, `graph_clean` uses every sanctioned shape —
//! ascending ranks, conditional guards dying with their body, and
//! `// lint: allow(...)` suppression at the site *and* at a call-chain
//! frame. The golden assertions pin the renderer: stable ordering,
//! `file:line` anchors, and the `via` call-chain frames in both the
//! text and JSON output.

use std::path::PathBuf;

use mvq_lint::{check_workspace, Report, Rule};

fn fixture_root(tree: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(tree)
}

fn bad_report() -> Report {
    check_workspace(&fixture_root("graph_bad")).unwrap()
}

#[test]
fn graph_bad_flags_one_finding_per_pass() {
    let report = bad_report();
    assert_eq!(report.files_scanned, 7);
    let counts = report.rule_counts();
    assert_eq!(counts["lock_order"], 1, "{:#?}", report.violations);
    assert_eq!(counts["panic_path"], 1, "{:#?}", report.violations);
    assert_eq!(counts["obs_purity"], 1, "{:#?}", report.violations);
    assert_eq!(counts["determinism_taint"], 1, "{:#?}", report.violations);
    // The seeded trees are clean under every per-file rule: the new
    // passes see what those rules cannot.
    assert_eq!(report.violations.len(), 4, "{:#?}", report.violations);
}

#[test]
fn lock_order_finding_carries_the_call_chain() {
    let report = bad_report();
    let v = report
        .violations
        .iter()
        .find(|v| v.rule == Rule::LockOrder)
        .unwrap();
    assert_eq!(v.file, "crates/serve/src/host.rs");
    assert!(v.message.contains("rank 20"), "{}", v.message);
    assert!(v.message.contains("rank 30"), "{}", v.message);
    // Outermost frame: the call in `flight_op` made while holding the
    // flight guard; innermost: the acquisition in `touch_engine`.
    assert_eq!(v.frames.len(), 2, "{:#?}", v.frames);
    assert_eq!(v.frames[0].function, "flight_op");
    assert_eq!(v.frames[1].function, "touch_engine");
    assert_eq!(v.frames[1].line, v.line);
}

#[test]
fn panic_path_finding_names_root_and_site() {
    let report = bad_report();
    let v = report
        .violations
        .iter()
        .find(|v| v.rule == Rule::PanicPath)
        .unwrap();
    assert_eq!(v.file, "crates/core/src/helper.rs");
    assert!(v.message.contains(".unwrap()"), "{}", v.message);
    assert_eq!(v.frames.first().unwrap().function, "handle");
    assert_eq!(v.frames.first().unwrap().file, "crates/serve/src/host.rs");
    assert_eq!(v.frames.last().unwrap().function, "boom");
}

#[test]
fn purity_and_taint_point_at_the_reached_helper() {
    let report = bad_report();
    let purity = report
        .violations
        .iter()
        .find(|v| v.rule == Rule::ObsPurity)
        .unwrap();
    assert_eq!(purity.file, "crates/obs/src/helper.rs");
    assert!(purity.message.contains("format!"), "{}", purity.message);
    let taint = report
        .violations
        .iter()
        .find(|v| v.rule == Rule::DeterminismTaint)
        .unwrap();
    assert_eq!(taint.file, "crates/core/src/util.rs");
    assert!(taint.message.contains("Instant"), "{}", taint.message);
    assert_eq!(taint.frames.first().unwrap().function, "expand");
}

#[test]
fn graph_clean_passes_via_every_sanctioned_shape() {
    let report = check_workspace(&fixture_root("graph_clean")).unwrap();
    assert_eq!(report.files_scanned, 7);
    assert!(
        report.clean(),
        "clean graph tree must lint clean, got: {:#?}",
        report.violations
    );
}

#[test]
fn text_rendering_is_stable_and_clickable() {
    let report = bad_report();
    let text = report.to_string();
    let lines: Vec<&str> = text.lines().collect();
    // Findings sort by (file, line, rule): core/helper.rs, core/util.rs,
    // obs/helper.rs, serve/host.rs — each followed by its `via` frames.
    let anchors: Vec<&&str> = lines
        .iter()
        .filter(|l| !l.starts_with(' ') && l.contains(": ["))
        .collect();
    assert_eq!(anchors.len(), 4, "{text}");
    assert!(
        anchors[0].starts_with("crates/core/src/helper.rs:6: [panic_path]"),
        "{text}"
    );
    assert!(
        anchors[1].starts_with("crates/core/src/util.rs:6: [determinism_taint]"),
        "{text}"
    );
    assert!(
        anchors[2].starts_with("crates/obs/src/helper.rs:4: [obs_purity]"),
        "{text}"
    );
    assert!(
        anchors[3].starts_with("crates/serve/src/host.rs:27: [lock_order]"),
        "{text}"
    );
    assert!(
        text.contains("    via crates/serve/src/host.rs:33 in `handle`"),
        "{text}"
    );
    assert!(
        text.contains("    via crates/serve/src/host.rs:22 in `flight_op`"),
        "{text}"
    );
    // Summary line pins the full gate.
    assert!(
        text.contains("mvq_lint: 7 file(s) scanned, 10 rule(s), 4 violation(s)"),
        "{text}"
    );
}

#[test]
fn json_rendering_matches_the_text_findings() {
    let report = bad_report();
    let json = report.to_json();
    assert!(json.contains("\"files_scanned\": 7"), "{json}");
    assert!(
        json.contains("\"lock_order\": 1") && json.contains("\"panic_path\": 1"),
        "{json}"
    );
    assert!(
        json.contains(
            "\"file\": \"crates/core/src/helper.rs\", \"line\": 6, \"rule\": \"panic_path\""
        ),
        "{json}"
    );
    assert!(
        json.contains(
            "{\"file\": \"crates/serve/src/host.rs\", \"line\": 33, \"function\": \"handle\"}"
        ),
        "{json}"
    );
    // JSON and text agree on ordering: the same four findings in the
    // same (file, line, rule) order.
    let order: Vec<usize> = [
        "helper.rs\", \"line\": 6",
        "util.rs\", \"line\": 6",
        "obs/src/helper.rs",
        "host.rs\", \"line\": 27",
    ]
    .iter()
    .map(|needle| {
        json.find(needle)
            .unwrap_or_else(|| panic!("missing {needle}: {json}"))
    })
    .collect();
    assert!(order.windows(2).all(|w| w[0] < w[1]), "{json}");
}
