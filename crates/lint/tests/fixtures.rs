//! The fixture corpus locks each rule from both sides: every file
//! under `fixtures/bad` seeds at least one violation the checker must
//! flag, every `fixtures/clean` counterpart uses the sanctioned escape
//! hatch and must pass — and the committed workspace itself must be
//! clean, since CI gates on it.

use std::path::PathBuf;

use mvq_lint::{check_workspace, Rule};

fn fixture_root(tree: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(tree)
}

#[test]
fn bad_tree_flags_every_seeded_violation() {
    let report = check_workspace(&fixture_root("bad")).unwrap();
    assert_eq!(report.files_scanned, 7);
    let expected = [
        ("crates/core/src/engine.rs", Rule::Determinism),
        ("crates/core/src/census.rs", Rule::Determinism),
        ("crates/core/src/snapshot.rs", Rule::Persistence),
        ("crates/serve/src/http.rs", Rule::PanicFreedom),
        ("crates/logic/src/lib.rs", Rule::UnsafeAudit),
        ("crates/sim/src/state.rs", Rule::Concurrency),
        ("crates/obs/src/metrics.rs", Rule::Obs),
    ];
    for (file, rule) in expected {
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.file == file && v.rule == rule),
            "expected a {rule:?} violation in {file}, got: {:#?}",
            report.violations
        );
    }
    // The exact census: 2 hashing + 1 clock, unwrap + panic!, one
    // unsafe, one spawn, one bare write + one bare create, and on the
    // obs side one lock type + one lock call + two bad metric names. A
    // change here means a rule got looser or stricter — make it
    // deliberate.
    let counts = report.rule_counts();
    assert_eq!(counts["determinism"], 3, "{:#?}", report.violations);
    assert_eq!(counts["panic"], 2, "{:#?}", report.violations);
    assert_eq!(counts["unsafe"], 1, "{:#?}", report.violations);
    assert_eq!(counts["threads"], 1, "{:#?}", report.violations);
    assert_eq!(counts["persistence"], 2, "{:#?}", report.violations);
    assert_eq!(counts["obs"], 4, "{:#?}", report.violations);
    assert!(!report.clean());
}

#[test]
fn clean_tree_passes_via_the_sanctioned_escape_hatches() {
    let report = check_workspace(&fixture_root("clean")).unwrap();
    assert_eq!(report.files_scanned, 8);
    assert!(
        report.clean(),
        "clean fixtures must lint clean, got: {:#?}",
        report.violations
    );
}

#[test]
fn bad_violations_are_sorted_and_render_with_locations() {
    let report = check_workspace(&fixture_root("bad")).unwrap();
    let keys: Vec<(&str, u32)> = report
        .violations
        .iter()
        .map(|v| (v.file.as_str(), v.line))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
    let rendered = report.to_string();
    assert!(rendered.contains("crates/serve/src/http.rs:"), "{rendered}");
    assert!(rendered.contains("violation(s)"), "{rendered}");
}

/// CI runs `mvq_lint --workspace` as a hard gate; this is the same
/// check in-process, so a violation fails the test suite even before
/// the lint job runs.
#[test]
fn committed_workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let report = check_workspace(&root).unwrap();
    assert!(
        report.files_scanned > 50,
        "workspace walk looks wrong: only {} files",
        report.files_scanned
    );
    assert!(
        report.clean(),
        "the committed tree must lint clean: {:#?}",
        report.violations
    );
}
