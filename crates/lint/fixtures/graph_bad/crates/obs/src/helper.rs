//! Allocation on the increment path, one call away from the counter.

pub fn describe() -> String {
    format!("counter bumped")
}
