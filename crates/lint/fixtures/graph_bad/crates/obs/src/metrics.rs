//! A metric increment module (per-file obs rules apply and pass); the
//! impurity hides in the helper it calls.

pub struct Counter {
    value: u64,
}

impl Counter {
    pub fn bump(&self) {
        describe();
    }
}
