//! Seeded lock-order inversion: a flight guard (rank 30) is held across
//! a call chain that acquires the engine lock (rank 20).

pub struct Host {
    registry: RankedMutex<Tables>,
    engine: RankedRwLock<Engine>,
    flight: RankedMutex<Flight>,
}

impl Host {
    pub fn new() -> Self {
        Self {
            registry: RankedMutex::new(REGISTRY_RANK, Tables::new()),
            engine: RankedRwLock::new(ENGINE_RANK, Engine::new()),
            flight: RankedMutex::new(FLIGHT_RANK, Flight::new()),
        }
    }

    /// BAD: holds rank 30 while the callee takes rank 20.
    pub fn flight_op(&self) {
        let f = self.flight.lock();
        self.touch_engine();
        drop(f);
    }

    fn touch_engine(&self) {
        let e = self.engine.write();
        drop(e);
    }

    /// Serve request path: reaches a panicking core helper.
    pub fn handle(&self) -> u32 {
        boom()
    }
}
