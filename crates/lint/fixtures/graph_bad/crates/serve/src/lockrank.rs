//! Fixture lock ranks mirroring the real serve tier's total order.

pub struct Rank {
    pub order: u32,
    pub name: &'static str,
}

pub const REGISTRY_RANK: Rank = Rank {
    order: 10,
    name: "registry",
};

pub const ENGINE_RANK: Rank = Rank {
    order: 20,
    name: "engine",
};

pub const FLIGHT_RANK: Rank = Rank {
    order: 30,
    name: "flight",
};
