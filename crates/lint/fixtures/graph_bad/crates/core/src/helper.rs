//! A core helper that panics — invisible to the per-file serve rule,
//! caught by the interprocedural panic-reachability pass.

pub fn boom() -> u32 {
    let v: Option<u32> = parse_input();
    v.unwrap()
}

fn parse_input() -> Option<u32> {
    Some(3)
}
