//! A search-state module (per-file determinism rules apply and pass);
//! the taint it picks up comes from the helper it calls.

pub struct Engine {
    level: u32,
}

impl Engine {
    pub fn expand(&mut self) {
        self.level += stamp();
    }
}
