//! Not a search-state module, so the per-file determinism rule is
//! silent here — but `stamp` is called *from* one, which the taint pass
//! must flag.

pub fn stamp() -> u32 {
    let t = Instant::now();
    t.elapsed().subsec_micros()
}
