//! Fixture counterpart: the deterministic-hashing idiom the rule
//! demands — an explicit `FnvBuildHasher` in the type, constructed via
//! `default()` (never `new()`, which pins `RandomState`).

use std::collections::HashMap;

type Seen = HashMap<u64, u32, FnvBuildHasher>;

pub struct LevelTable {
    seen: Seen,
}

impl LevelTable {
    pub fn fresh() -> Self {
        Self {
            seen: HashMap::default(),
        }
    }

    pub fn with_capacity(n: usize) -> Self {
        Self {
            seen: HashMap::with_capacity_and_hasher(n, FnvBuildHasher::default()),
        }
    }

    pub fn insert(&mut self, key: u64, cost: u32) {
        self.seen.insert(key, cost);
    }

    pub fn shallower_than(&self, bound: u32) -> usize {
        // `<` here is a comparison, not a generic-argument list.
        self.seen.values().filter(|&&c| c < bound).count()
    }
}
