//! Fixture counterpart: `par.rs` is the allowlisted home of thread
//! creation — the same call that is a violation anywhere else.

pub fn run_sharded(shards: usize) -> usize {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards).map(|i| scope.spawn(move || i)).collect();
        handles.into_iter().map(|h| h.join().unwrap_or(0)).sum()
    })
}
