//! Fixture counterpart: the one sanctioned bare `File::create` is the
//! durable-write helper itself, annotated with its justification; all
//! other publication routes through it.

use std::io::{self, Write};
use std::path::Path;

fn durable_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    // lint: allow(persistence) the durable-write helper: fsynced and renamed below
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    std::fs::rename(&tmp, path)
}

pub fn save(path: &Path, bytes: &[u8]) -> io::Result<()> {
    durable_write(path, bytes)
}
