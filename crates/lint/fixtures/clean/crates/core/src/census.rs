//! Fixture counterpart: search state stays clock-free; wall-clock
//! measurement lives with the caller, and test code is exempt anyway.

pub fn count(levels: &[usize]) -> usize {
    levels.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_can_be_timed_in_tests() {
        let start = std::time::Instant::now();
        assert_eq!(count(&[1, 6, 24]), 31);
        assert!(start.elapsed().as_secs() < 60);
    }
}
