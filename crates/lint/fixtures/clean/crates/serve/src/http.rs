//! Fixture counterpart: request-path code returns typed errors, and
//! the one intentional panic site carries an annotated justification.

pub fn content_length(header: Option<&str>) -> Result<usize, String> {
    let raw = header.ok_or("missing Content-Length")?;
    raw.parse().map_err(|_| format!("bad Content-Length {raw}"))
}

pub fn route(path: &str) -> Result<&'static str, u16> {
    match path {
        "/healthz" => Ok("ok"),
        _ => Err(404),
    }
}

pub fn queue_guard(lock: &std::sync::Mutex<u32>) -> u32 {
    // lint: allow(panic) the queue mutex is never poisoned: no panic occurs under it
    *lock.lock().expect("queue mutex intact")
}
