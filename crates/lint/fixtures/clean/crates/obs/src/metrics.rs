//! Clean counterpart: atomic increments, contract-following metric
//! names, and the sanctioned escape hatch for scrape-time code.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

pub fn register(registry: &Registry) {
    registry.counter("requests_total", "counted events carry `_total`");
    registry.histogram("latency_us", "durations carry `_us`");
    registry.gauge("frontier_words", "gauges are instantaneous readings: no suffix");
}

pub fn scrape(counter: &Counter) -> u64 {
    // lint: allow(obs) scrape path: runs once per scrape, not per increment
    let values = Vec::from([counter.get()]);
    values[0]
}
