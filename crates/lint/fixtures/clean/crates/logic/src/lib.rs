//! Fixture counterpart: every `unsafe` carries an adjacent `SAFETY`
//! justification.

pub fn truth_table_bit(table: &[u8], index: usize) -> u8 {
    assert!(index < table.len());
    // SAFETY: the assert above establishes `index < table.len()`, so
    // the unchecked access is in bounds.
    unsafe { *table.get_unchecked(index) }
}
