//! Fixture counterpart: production code routes parallel work through
//! the worker pool; only test code may spawn ad hoc.

pub fn evolve(state: &[f64]) -> Vec<f64> {
    state.iter().map(|x| x * 2.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evolution_is_thread_safe() {
        let state = vec![1.0, 2.0];
        let handle = std::thread::spawn(move || evolve(&state));
        assert_eq!(handle.join().unwrap(), vec![2.0, 4.0]);
    }
}
