//! Helpers on the serve path with reasoned panic pins (or none needed).

pub fn safe_value() -> u32 {
    let v: Option<u32> = Some(3);
    // lint: allow(panic) the constant above is always Some
    v.unwrap()
}

/// No annotation here: the single call site in serve carries it.
pub fn vetted() -> u32 {
    let v: Option<u32> = Some(7);
    v.unwrap()
}
