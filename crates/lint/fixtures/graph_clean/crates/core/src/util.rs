//! Deterministic helper plus a pinned outbound-only timing read.

pub fn seeded() -> u32 {
    7
}

pub fn observe_latency() {
    // lint: allow(determinism) outbound-only timing: feeds metrics, never search state
    let t = Instant::now();
    let _ = t;
}
