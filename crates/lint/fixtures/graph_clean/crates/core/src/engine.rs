//! Search-state module calling only deterministic helpers (one of
//! which pins its clock read with a reason).

pub struct Engine {
    level: u32,
}

impl Engine {
    pub fn expand(&mut self) {
        self.level += seeded();
        observe_latency();
    }
}
