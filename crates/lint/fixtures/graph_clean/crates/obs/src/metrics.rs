//! Increment path calling a pure helper and a pinned cold path.

pub struct Counter {
    value: u64,
}

impl Counter {
    pub fn bump(&self) {
        pure_add(1);
        cold_describe();
    }
}
