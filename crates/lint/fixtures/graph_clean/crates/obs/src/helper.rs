//! A pure helper and a reasoned cold-path allocation.

pub fn pure_add(n: u64) -> u64 {
    n + 1
}

pub fn cold_describe() -> String {
    // lint: allow(obs) cold path: runs once at startup, never per-increment
    format!("counter registered")
}
