//! The sanctioned shapes: ascending acquisition, conditional guards
//! that die with their body, and reasoned suppressions.

pub struct Host {
    registry: RankedMutex<Tables>,
    engine: RankedRwLock<Engine>,
    flight: RankedMutex<Flight>,
}

impl Host {
    pub fn new() -> Self {
        Self {
            registry: RankedMutex::new(REGISTRY_RANK, Tables::new()),
            engine: RankedRwLock::new(ENGINE_RANK, Engine::new()),
            flight: RankedMutex::new(FLIGHT_RANK, Flight::new()),
        }
    }

    /// Ascending ranks: 10 then 20 — fine.
    pub fn ordered(&self) {
        let r = self.registry.lock();
        let e = self.engine.write();
        drop(e);
        drop(r);
    }

    /// The engine guard lives only inside the `if let` body, so the
    /// registry acquisition in `heal` happens with nothing held.
    pub fn read_or_heal(&self) {
        if let Ok(g) = self.engine.read() {
            let _ = g;
            return;
        }
        self.heal();
    }

    fn heal(&self) {
        let r = self.registry.lock();
        drop(r);
    }

    /// A vetted inversion, suppressed at the acquisition site.
    pub fn pinned(&self) {
        let f = self.flight.lock();
        // lint: allow(lock_order) startup-only path, runs before any other thread exists
        let e = self.engine.write();
        drop(e);
        drop(f);
    }

    /// Serve request path reaching a helper whose panic is pinned at
    /// the site.
    pub fn handle(&self) -> u32 {
        safe_value()
    }

    /// Serve request path whose *call edge* carries the suppression —
    /// the helper itself has no annotation.
    pub fn audited(&self) -> u32 {
        // lint: allow(panic) helper is vetted: its input is a compile-time constant
        vetted()
    }
}
