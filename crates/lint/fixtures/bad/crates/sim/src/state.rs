//! Fixture: ad-hoc threading outside the worker pool.
//! Seeded violation: `thread::spawn` in a non-allowlisted module.

pub fn evolve_in_background(state: Vec<f64>) -> std::thread::JoinHandle<Vec<f64>> {
    std::thread::spawn(move || state.iter().map(|x| x * 2.0).collect())
}
