//! Fixture: an `unsafe` block with no adjacent justification.
//! Seeded violation: missing `SAFETY` comment.

pub fn truth_table_bit(table: &[u8], index: usize) -> u8 {
    unsafe { *table.get_unchecked(index) }
}
