//! Seeded `obs` violations: a lock on the increment path, and
//! registrations that break the metric naming contract.

pub struct Counter {
    value: std::sync::Mutex<u64>,
}

impl Counter {
    pub fn inc(&self) {
        let mut value = self.value.lock().unwrap();
        *value += 1;
    }
}

pub fn register(registry: &Registry) {
    registry.counter("BadName", "not snake_case");
    registry.histogram("latency", "no unit suffix");
}
