//! Fixture: a search-state module reading the ambient clock.
//! Seeded violation: `Instant::now()` inside reproducible state.

pub fn timed_count(levels: &[usize]) -> (usize, std::time::Duration) {
    let start = std::time::Instant::now();
    let total = levels.iter().sum();
    (total, start.elapsed())
}
