//! Fixture: a search-state module hashing with the std default.
//! Seeded violations: `HashMap` without a deterministic hasher (field
//! type) and `HashMap::new()` (RandomState constructor).

use std::collections::HashMap;

pub struct LevelTable {
    seen: HashMap<u64, u32>,
}

impl LevelTable {
    pub fn new() -> Self {
        Self {
            seen: HashMap::new(),
        }
    }

    pub fn insert(&mut self, key: u64, cost: u32) {
        self.seen.insert(key, cost);
    }
}
