//! Fixture: the snapshot codec publishing files non-durably.
//! Seeded violations: a bare `fs::write` and a bare `File::create` —
//! neither fsyncs nor rotates the `.bak`, so a crash can publish a torn
//! snapshot with no last-good fallback.

use std::io;
use std::path::Path;

pub fn save(path: &Path, bytes: &[u8]) -> io::Result<()> {
    std::fs::write(path, bytes)
}

pub fn open_for_save(path: &Path) -> io::Result<std::fs::File> {
    std::fs::File::create(path)
}
