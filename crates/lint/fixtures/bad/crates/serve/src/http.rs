//! Fixture: serve request-path code that can take a worker down.
//! Seeded violations: an unannotated `.unwrap()` and a `panic!`.

pub fn content_length(header: Option<&str>) -> usize {
    header.unwrap().parse().unwrap_or(0)
}

pub fn route(path: &str) -> &'static str {
    match path {
        "/healthz" => "ok",
        other => panic!("no handler for {other}"),
    }
}
