//! Property-based tests: the quaternary algebra is a faithful shadow of
//! the matrix algebra, gates permute every domain, and banned sets exactly
//! characterize when the multiple-valued semantics is trustworthy.

use mvq_logic::{Gate, Pattern, PatternDomain, Value};
use proptest::prelude::*;

fn value() -> impl Strategy<Value = Value> {
    prop::sample::select(Value::ALL.to_vec())
}

fn pattern3() -> impl Strategy<Value = Pattern> {
    prop::collection::vec(value(), 3).prop_map(Pattern::new)
}

/// Any of the 18 two-qubit gates on 3 wires.
fn gate3() -> impl Strategy<Value = Gate> {
    let pairs = [(0, 1), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1)];
    (0usize..3, prop::sample::select(pairs.to_vec())).prop_map(|(kind, (d, c))| match kind {
        0 => Gate::v(d, c),
        1 => Gate::v_dagger(d, c),
        _ => Gate::feynman(d, c),
    })
}

proptest! {
    #[test]
    fn gate_application_is_invertible_on_the_full_domain(g in gate3()) {
        // Each gate is a bijection of all 64 patterns.
        let d = PatternDomain::full(3);
        let p = g.perm(&d);
        prop_assert!((p.clone() * p.inverse()).is_identity());
    }

    #[test]
    fn v_and_v_dagger_perms_are_mutually_inverse(
        pair in prop::sample::select(vec![(0usize, 1usize), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1)])
    ) {
        let d = PatternDomain::permutable(3);
        let v = Gate::v(pair.0, pair.1).perm(&d);
        let vd = Gate::v_dagger(pair.0, pair.1).perm(&d);
        prop_assert!((v * vd).is_identity());
    }

    #[test]
    fn applying_v_four_times_is_identity(p in pattern3(), g in gate3()) {
        if let Gate::V { .. } | Gate::VDagger { .. } = g {
            let mut cur = p.clone();
            for _ in 0..4 {
                cur = g.apply(&cur);
            }
            prop_assert_eq!(cur, p);
        }
    }

    #[test]
    fn no_one_patterns_are_fixed(p in pattern3(), g in gate3()) {
        if !p.contains_one() {
            prop_assert_eq!(g.apply(&p), p);
        }
    }

    #[test]
    fn pattern_code_roundtrip(p in pattern3()) {
        prop_assert_eq!(Pattern::from_code(p.code(), 3), p);
    }

    #[test]
    fn domain_index_roundtrip(code in 0usize..64) {
        let d = PatternDomain::permutable(3);
        let p = Pattern::from_code(code, 3);
        match d.index(&p) {
            Some(idx) => prop_assert_eq!(d.pattern(idx), &p),
            None => prop_assert!(!p.contains_one() && p.code() != 0),
        }
    }

    #[test]
    fn gate_perm_matches_pointwise_application(g in gate3()) {
        let d = PatternDomain::permutable(3);
        let perm = g.perm(&d);
        for (idx, p) in d.iter() {
            let image_pattern = g.apply(p);
            prop_assert_eq!(d.index(&image_pattern), Some(perm.image(idx)));
        }
    }

    #[test]
    fn unitary_is_always_unitary(g in gate3()) {
        prop_assert!(g.unitary(3).is_unitary());
    }

    #[test]
    fn adjoint_gate_has_adjoint_unitary(g in gate3()) {
        prop_assert_eq!(g.adjoint().unitary(3), g.unitary(3).adjoint());
    }

    #[test]
    fn value_algebra_tracks_amplitudes(v in value()) {
        use mvq_matrix::CMatrix;
        let (a0, a1) = v.amplitudes();
        // V action.
        let out = CMatrix::v_gate().apply(&[a0, a1]);
        let (w0, w1) = v.apply_v().amplitudes();
        prop_assert_eq!(out, vec![w0, w1]);
        // NOT action.
        let out = CMatrix::not_gate().apply(&[a0, a1]);
        let (w0, w1) = v.apply_not().amplitudes();
        prop_assert_eq!(out, vec![w0, w1]);
    }

    #[test]
    fn banned_masks_cover_exactly_the_mixed_patterns(wire in 0usize..3) {
        let d = PatternDomain::permutable(3);
        let banned = d.banned_for_wire(wire);
        for (idx, p) in d.iter() {
            prop_assert_eq!(banned.contains(&idx), p.value(wire).is_mixed());
        }
    }

    #[test]
    fn table_ordering_and_plain_ordering_agree_on_binary_prefix(n in 1usize..=3) {
        let table = PatternDomain::table_ordered(n);
        let perm = PatternDomain::permutable(n);
        for idx in 1..=(1usize << n) {
            prop_assert_eq!(table.pattern(idx), perm.pattern(idx));
        }
    }
}
