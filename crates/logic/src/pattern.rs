use std::fmt;

use crate::Value;

/// A joint assignment of [`Value`]s to `n` wires — one row of the paper's
/// truth tables.
///
/// Wire 0 is the paper's `A` (most significant in the base-4 code), wire 1
/// is `B`, and so on. The base-4 code induced by the value ordering
/// `0 < 1 < V0 < V1` is the paper's "from small to big" pattern order.
///
/// # Examples
///
/// ```
/// use mvq_logic::{Pattern, Value};
///
/// let p = Pattern::new(vec![Value::One, Value::V0, Value::Zero]);
/// assert_eq!(p.code(), 1 * 16 + 2 * 4 + 0);
/// assert_eq!(p.to_string(), "[1,V0,0]");
/// assert!(p.contains_one());
/// ```
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pattern {
    values: Vec<Value>,
}

impl Pattern {
    /// Creates a pattern from wire values (wire `A` first).
    pub fn new(values: Vec<Value>) -> Self {
        Self { values }
    }

    /// The all-zeros pattern on `n` wires.
    pub fn zeros(n: usize) -> Self {
        Self {
            values: vec![Value::Zero; n],
        }
    }

    /// Decodes a base-4 code into a pattern on `n` wires (wire `A` is the
    /// most significant digit).
    ///
    /// # Examples
    ///
    /// ```
    /// use mvq_logic::{Pattern, Value};
    /// let p = Pattern::from_code(0b100100 /* 36 = (2,1,0) base 4 */, 3);
    /// assert_eq!(p.values(), &[Value::V0, Value::One, Value::Zero]);
    /// ```
    pub fn from_code(code: usize, n: usize) -> Self {
        let values = (0..n)
            .map(|wire| {
                let shift = 2 * (n - 1 - wire);
                // lint: allow(panic) the 2-bit mask keeps every rank below 4
                Value::from_rank((code >> shift) & 0b11).expect("rank < 4")
            })
            .collect();
        Self { values }
    }

    /// Builds a pattern from the bits of `bits` (`A` = most significant of
    /// the low `n` bits), yielding a pure binary pattern.
    ///
    /// # Examples
    ///
    /// ```
    /// use mvq_logic::{Pattern, Value};
    /// let p = Pattern::from_bits(0b110, 3);
    /// assert_eq!(p.values(), &[Value::One, Value::One, Value::Zero]);
    /// ```
    pub fn from_bits(bits: usize, n: usize) -> Self {
        let values = (0..n)
            .map(|wire| {
                if (bits >> (n - 1 - wire)) & 1 == 1 {
                    Value::One
                } else {
                    Value::Zero
                }
            })
            .collect();
        Self { values }
    }

    /// The number of wires.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` iff the pattern has no wires.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The wire values, `A` first.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The value on `wire`.
    ///
    /// # Panics
    ///
    /// Panics if `wire` is out of range.
    pub fn value(&self, wire: usize) -> Value {
        self.values[wire]
    }

    /// Returns a copy with `wire` set to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `wire` is out of range.
    pub fn with_value(&self, wire: usize, value: Value) -> Self {
        let mut values = self.values.clone();
        values[wire] = value;
        Self { values }
    }

    /// The base-4 code of the pattern (paper sort key).
    pub fn code(&self) -> usize {
        self.values.iter().fold(0, |acc, v| (acc << 2) | v.rank())
    }

    /// `true` iff every wire is binary.
    pub fn is_binary(&self) -> bool {
        self.values.iter().all(|v| v.is_binary())
    }

    /// For a binary pattern, its bit encoding (`A` most significant).
    ///
    /// Returns `None` if any wire is mixed.
    pub fn to_bits(&self) -> Option<usize> {
        self.values.iter().try_fold(0usize, |acc, v| match v {
            Value::Zero => Some(acc << 1),
            Value::One => Some((acc << 1) | 1),
            _ => None,
        })
    }

    /// `true` iff some wire carries the value `1`.
    ///
    /// Patterns without a `1` are fixed by every gate in the library
    /// (Section 3: "every pattern must contain a 1, otherwise this pattern
    /// will not change after any quantum gate").
    pub fn contains_one(&self) -> bool {
        self.values.contains(&Value::One)
    }

    /// `true` iff some wire carries a mixed value.
    pub fn contains_mixed(&self) -> bool {
        self.values.iter().any(|v| v.is_mixed())
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_roundtrip_all_three_wire_patterns() {
        for code in 0..64 {
            let p = Pattern::from_code(code, 3);
            assert_eq!(p.code(), code);
            assert_eq!(p.len(), 3);
        }
    }

    #[test]
    fn bits_roundtrip() {
        for bits in 0..8 {
            let p = Pattern::from_bits(bits, 3);
            assert!(p.is_binary());
            assert_eq!(p.to_bits(), Some(bits));
        }
    }

    #[test]
    fn mixed_pattern_has_no_bits() {
        let p = Pattern::new(vec![Value::V0, Value::One]);
        assert_eq!(p.to_bits(), None);
        assert!(!p.is_binary());
        assert!(p.contains_mixed());
    }

    #[test]
    fn contains_one_detects_fixity() {
        assert!(!Pattern::new(vec![Value::Zero, Value::V0, Value::V1]).contains_one());
        assert!(Pattern::new(vec![Value::Zero, Value::One, Value::V1]).contains_one());
        assert!(!Pattern::zeros(3).contains_one());
    }

    #[test]
    fn ordering_follows_code() {
        let a = Pattern::from_code(5, 3);
        let b = Pattern::from_code(9, 3);
        assert!(a < b);
    }

    #[test]
    fn with_value_replaces_one_wire() {
        let p = Pattern::zeros(3).with_value(1, Value::V1);
        assert_eq!(p.value(1), Value::V1);
        assert_eq!(p.value(0), Value::Zero);
    }

    #[test]
    fn display() {
        let p = Pattern::new(vec![Value::One, Value::V1, Value::Zero]);
        assert_eq!(p.to_string(), "[1,V1,0]");
    }
}
