use std::fmt;

use mvq_perm::Perm;

use crate::{wire_name, Gate, Pattern, PatternDomain};

/// One row of a gate truth table: input pattern, output pattern, and their
/// 1-based labels (the paper's Table 1 layout).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruthTableRow {
    /// 1-based input label.
    pub input_label: usize,
    /// The input pattern.
    pub input: Pattern,
    /// The output pattern.
    pub output: Pattern,
    /// 1-based label of the output pattern (the permutation image).
    pub output_label: usize,
}

/// A complete truth table of a gate over a pattern domain, with the
/// permutation representation the paper derives from it.
///
/// # Examples
///
/// ```
/// use mvq_logic::{Gate, PatternDomain, TruthTable};
///
/// // Table 1: the 2-qubit controlled-V gate, and its permutation (3,7,4,8).
/// let table = TruthTable::new(Gate::v(1, 0), PatternDomain::table_ordered(2));
/// assert_eq!(table.perm().to_string(), "(3,7,4,8)");
/// assert_eq!(table.rows().len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct TruthTable {
    gate: Gate,
    domain: PatternDomain,
    rows: Vec<TruthTableRow>,
    perm: Perm,
}

impl TruthTable {
    /// Builds the truth table of `gate` over `domain`.
    pub fn new(gate: Gate, domain: PatternDomain) -> Self {
        let rows: Vec<TruthTableRow> = domain
            .iter()
            .map(|(idx, pattern)| {
                let output = gate.apply(pattern);
                let output_label = domain
                    .index(&output)
                    .expect("gate output stays inside the domain");
                TruthTableRow {
                    input_label: idx,
                    input: pattern.clone(),
                    output,
                    output_label,
                }
            })
            .collect();
        let perm = gate.perm(&domain);
        Self {
            gate,
            domain,
            rows,
            perm,
        }
    }

    /// The tabulated gate.
    pub fn gate(&self) -> Gate {
        self.gate
    }

    /// The pattern domain the table is enumerated over.
    pub fn domain(&self) -> &PatternDomain {
        &self.domain
    }

    /// All rows in domain order.
    pub fn rows(&self) -> &[TruthTableRow] {
        &self.rows
    }

    /// The permutation representation of the table.
    pub fn perm(&self) -> &Perm {
        &self.perm
    }
}

impl fmt::Display for TruthTable {
    /// Renders in the paper's Table 1 layout.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.domain.wires();
        writeln!(
            f,
            "Truth table of {} ({} patterns)",
            self.gate,
            self.rows.len()
        )?;
        write!(f, "{:>5} ", "Label")?;
        for w in 0..n {
            write!(f, "{:>3} ", wire_name(w))?;
        }
        write!(f, "| ")?;
        for w in 0..n {
            write!(f, "{:>3} ", wire_name((w as u8 + b'P' - b'A') as usize))?;
        }
        writeln!(f, "{:>5}", "Label")?;
        for row in &self.rows {
            write!(f, "{:>5} ", row.input_label)?;
            for v in row.input.values() {
                write!(f, "{:>3} ", v.to_string())?;
            }
            write!(f, "| ")?;
            for v in row.output.values() {
                write!(f, "{:>3} ", v.to_string())?;
            }
            writeln!(f, "{:>5}", row.output_label)?;
        }
        write!(f, "Permutation: {}", self.perm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    #[test]
    fn table_1_permutation() {
        let t = TruthTable::new(Gate::v(1, 0), PatternDomain::table_ordered(2));
        assert_eq!(t.perm().to_string(), "(3,7,4,8)");
    }

    #[test]
    fn table_1_rows_match_paper() {
        // Spot-check the paper's Table 1 rows (label → output label).
        let t = TruthTable::new(Gate::v(1, 0), PatternDomain::table_ordered(2));
        let expected_outputs = [1, 2, 7, 8, 5, 6, 4, 3, 9, 10, 11, 12, 13, 14, 15, 16];
        for (row, &want) in t.rows().iter().zip(&expected_outputs) {
            assert_eq!(
                row.output_label, want,
                "row {} ({})",
                row.input_label, row.input
            );
        }
    }

    #[test]
    fn table_1_row_7_detail() {
        // Row 7: input (1, V0) → output (1, 1) = label 4.
        let t = TruthTable::new(Gate::v(1, 0), PatternDomain::table_ordered(2));
        let row = &t.rows()[6];
        assert_eq!(row.input.values(), &[Value::One, Value::V0]);
        assert_eq!(row.output.values(), &[Value::One, Value::One]);
        assert_eq!(row.output_label, 4);
    }

    #[test]
    fn dont_care_rows_are_fixed() {
        // Rows 9–16 of Table 1 (mixed control) map to themselves.
        let t = TruthTable::new(Gate::v(1, 0), PatternDomain::table_ordered(2));
        for row in &t.rows()[8..] {
            assert_eq!(row.input_label, row.output_label);
        }
    }

    #[test]
    fn display_contains_permutation() {
        let t = TruthTable::new(Gate::v(1, 0), PatternDomain::table_ordered(2));
        let s = t.to_string();
        assert!(s.contains("(3,7,4,8)"));
        assert!(s.contains("V0"));
    }

    #[test]
    fn three_wire_table_has_38_rows() {
        let t = TruthTable::new(Gate::v(1, 0), PatternDomain::permutable(3));
        assert_eq!(t.rows().len(), 38);
        assert_eq!(
            t.perm().to_string(),
            "(5,17,7,21)(6,18,8,22)(13,19,15,23)(14,20,16,24)"
        );
    }
}
