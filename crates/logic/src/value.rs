use std::fmt;

use mvq_arith::CDyadic;

/// One of the four signal values a quantum wire can carry when the primary
/// inputs are pure binary (Section 2 of the paper).
///
/// `V0` is the state `V|0⟩` and `V1` is `V|1⟩`. The paper's six candidate
/// values collapse to these four because `V0 = V⁺1` and `V1 = V⁺0`.
///
/// The ordering `Zero < One < V0 < V1` is the paper's pattern ordering
/// ("from small to big") and determines every index in the permutation
/// encoding.
///
/// # Examples
///
/// ```
/// use mvq_logic::Value;
///
/// assert_eq!(Value::Zero.apply_v(), Value::V0);
/// assert_eq!(Value::V0.apply_v(), Value::One);      // V·V = NOT
/// assert_eq!(Value::V0.apply_v_dagger(), Value::Zero); // V⁺·V = I
/// ```
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Value {
    /// The pure state `|0⟩`.
    #[default]
    Zero,
    /// The pure state `|1⟩`.
    One,
    /// The mixed state `V|0⟩ = ((1+i)|0⟩ + (1−i)|1⟩)/2`.
    V0,
    /// The mixed state `V|1⟩ = ((1−i)|0⟩ + (1+i)|1⟩)/2`.
    V1,
}

impl Value {
    /// All four values in paper order.
    pub const ALL: [Value; 4] = [Value::Zero, Value::One, Value::V0, Value::V1];

    /// The value's rank in the paper ordering: 0, 1, 2, 3.
    pub fn rank(self) -> usize {
        match self {
            Value::Zero => 0,
            Value::One => 1,
            Value::V0 => 2,
            Value::V1 => 3,
        }
    }

    /// Builds a value from its rank.
    ///
    /// # Examples
    ///
    /// ```
    /// use mvq_logic::Value;
    /// assert_eq!(Value::from_rank(2), Some(Value::V0));
    /// assert_eq!(Value::from_rank(4), None);
    /// ```
    pub fn from_rank(rank: usize) -> Option<Self> {
        Value::ALL.get(rank).copied()
    }

    /// `true` for the pure binary values `0` and `1`.
    pub fn is_binary(self) -> bool {
        matches!(self, Value::Zero | Value::One)
    }

    /// `true` for the mixed values `V0` and `V1`.
    pub fn is_mixed(self) -> bool {
        !self.is_binary()
    }

    /// The action of the V gate: `0 → V0`, `1 → V1`, `V0 → 1`, `V1 → 0`.
    ///
    /// Applying it twice gives [`Value::apply_not`] — V is the square root
    /// of NOT.
    pub fn apply_v(self) -> Self {
        match self {
            Value::Zero => Value::V0,
            Value::One => Value::V1,
            Value::V0 => Value::One,
            Value::V1 => Value::Zero,
        }
    }

    /// The action of the V⁺ gate: `0 → V1`, `1 → V0`, `V0 → 0`, `V1 → 1`.
    pub fn apply_v_dagger(self) -> Self {
        match self {
            Value::Zero => Value::V1,
            Value::One => Value::V0,
            Value::V0 => Value::Zero,
            Value::V1 => Value::One,
        }
    }

    /// The action of the NOT (Pauli-X) gate: `0 ↔ 1`, `V0 ↔ V1`.
    ///
    /// The mixed case follows from `X·V|0⟩ = V|1⟩` at the matrix level,
    /// although the paper only ever applies NOT to binary wires.
    pub fn apply_not(self) -> Self {
        match self {
            Value::Zero => Value::One,
            Value::One => Value::Zero,
            Value::V0 => Value::V1,
            Value::V1 => Value::V0,
        }
    }

    /// Binary XOR; `None` if either operand is mixed (the paper's
    /// synthesis constraint forbids that situation).
    ///
    /// # Examples
    ///
    /// ```
    /// use mvq_logic::Value;
    /// assert_eq!(Value::One.xor(Value::One), Some(Value::Zero));
    /// assert_eq!(Value::V0.xor(Value::One), None);
    /// ```
    pub fn xor(self, other: Self) -> Option<Self> {
        match (self, other) {
            (Value::Zero, b) if b.is_binary() => Some(b),
            (Value::One, Value::Zero) => Some(Value::One),
            (Value::One, Value::One) => Some(Value::Zero),
            _ => None,
        }
    }

    /// The exact amplitude vector `(⟨0|ψ⟩, ⟨1|ψ⟩)` of the value.
    ///
    /// # Examples
    ///
    /// ```
    /// use mvq_logic::Value;
    /// use mvq_arith::CDyadic;
    /// let (a0, a1) = Value::V0.amplitudes();
    /// assert_eq!(a0, CDyadic::HALF_ONE_PLUS_I);
    /// assert_eq!(a1, CDyadic::HALF_ONE_MINUS_I);
    /// ```
    pub fn amplitudes(self) -> (CDyadic, CDyadic) {
        match self {
            Value::Zero => (CDyadic::ONE, CDyadic::ZERO),
            Value::One => (CDyadic::ZERO, CDyadic::ONE),
            Value::V0 => (CDyadic::HALF_ONE_PLUS_I, CDyadic::HALF_ONE_MINUS_I),
            Value::V1 => (CDyadic::HALF_ONE_MINUS_I, CDyadic::HALF_ONE_PLUS_I),
        }
    }

    /// The probability of measuring `|1⟩`, as an exact dyadic.
    ///
    /// `0` for `Zero`, `1` for `One`, `½` for both mixed values.
    pub fn prob_one(self) -> mvq_arith::Dyadic {
        self.amplitudes().1.norm_sqr()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Zero => write!(f, "0"),
            Value::One => write!(f, "1"),
            Value::V0 => write!(f, "V0"),
            Value::V1 => write!(f, "V1"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvq_arith::Dyadic;

    #[test]
    fn v_twice_is_not() {
        for v in Value::ALL {
            assert_eq!(v.apply_v().apply_v(), v.apply_not());
        }
    }

    #[test]
    fn v_dagger_twice_is_not() {
        for v in Value::ALL {
            assert_eq!(v.apply_v_dagger().apply_v_dagger(), v.apply_not());
        }
    }

    #[test]
    fn v_dagger_inverts_v() {
        for v in Value::ALL {
            assert_eq!(v.apply_v().apply_v_dagger(), v);
            assert_eq!(v.apply_v_dagger().apply_v(), v);
        }
    }

    #[test]
    fn not_is_involution() {
        for v in Value::ALL {
            assert_eq!(v.apply_not().apply_not(), v);
        }
    }

    #[test]
    fn paper_value_identities() {
        // V0 = V⁺1 and V1 = V⁺0 (Section 2).
        assert_eq!(Value::One.apply_v_dagger(), Value::V0);
        assert_eq!(Value::Zero.apply_v_dagger(), Value::V1);
        // V(V1) = V⁺(V0) = 0 and V(V0) = V⁺(V1) = 1 (Section 3).
        assert_eq!(Value::V1.apply_v(), Value::Zero);
        assert_eq!(Value::V0.apply_v_dagger(), Value::Zero);
        assert_eq!(Value::V0.apply_v(), Value::One);
        assert_eq!(Value::V1.apply_v_dagger(), Value::One);
    }

    #[test]
    fn ordering_matches_paper() {
        let mut sorted = Value::ALL;
        sorted.sort();
        assert_eq!(sorted, Value::ALL);
    }

    #[test]
    fn rank_roundtrip() {
        for v in Value::ALL {
            assert_eq!(Value::from_rank(v.rank()), Some(v));
        }
        assert_eq!(Value::from_rank(7), None);
    }

    #[test]
    fn xor_table() {
        use Value::*;
        assert_eq!(Zero.xor(Zero), Some(Zero));
        assert_eq!(Zero.xor(One), Some(One));
        assert_eq!(One.xor(Zero), Some(One));
        assert_eq!(One.xor(One), Some(Zero));
        assert_eq!(V0.xor(Zero), None);
        assert_eq!(One.xor(V1), None);
    }

    #[test]
    fn amplitudes_are_unit_vectors() {
        for v in Value::ALL {
            let (a0, a1) = v.amplitudes();
            assert_eq!(a0.norm_sqr() + a1.norm_sqr(), Dyadic::ONE);
        }
    }

    #[test]
    fn amplitudes_match_matrix_action() {
        use mvq_matrix::CMatrix;
        // V applied to the amplitude vector of x equals amplitudes of
        // x.apply_v(), for every value x — the quaternary algebra is a
        // faithful shadow of the matrix algebra.
        let v = CMatrix::v_gate();
        for x in Value::ALL {
            let (a0, a1) = x.amplitudes();
            let out = v.apply(&[a0, a1]);
            let (b0, b1) = x.apply_v().amplitudes();
            assert_eq!(out, vec![b0, b1], "V on {x}");
        }
        let vd = CMatrix::v_dagger_gate();
        for x in Value::ALL {
            let (a0, a1) = x.amplitudes();
            let out = vd.apply(&[a0, a1]);
            let (b0, b1) = x.apply_v_dagger().amplitudes();
            assert_eq!(out, vec![b0, b1], "V⁺ on {x}");
        }
    }

    #[test]
    fn prob_one_values() {
        assert_eq!(Value::Zero.prob_one(), Dyadic::ZERO);
        assert_eq!(Value::One.prob_one(), Dyadic::ONE);
        assert_eq!(Value::V0.prob_one(), Dyadic::HALF);
        assert_eq!(Value::V1.prob_one(), Dyadic::HALF);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::V0.to_string(), "V0");
        assert_eq!(Value::Zero.to_string(), "0");
    }
}
