use mvq_perm::Perm;

use crate::{Gate, PatternDomain};

/// A library gate: an elementary gate together with its precomputed
/// permutation and banned-set mask on a fixed [`PatternDomain`].
///
/// The banned set is the paper's `N` set for the gate's wire constraint;
/// the gate may be cascaded after a circuit `f` iff `f(S)` avoids it
/// (Definition 1, the *reasonable product*).
#[derive(Debug, Clone)]
pub struct LibraryGate {
    gate: Gate,
    perm: Perm,
    /// 1-based banned indices, ascending (authoritative at any domain
    /// size).
    banned: Vec<usize>,
    /// `banned` as a one-word bitmask, when the domain fits 64 indices.
    banned_mask: Option<u64>,
}

impl LibraryGate {
    /// The underlying gate.
    pub fn gate(&self) -> Gate {
        self.gate
    }

    /// The gate's permutation of the library's domain.
    pub fn perm(&self) -> &Perm {
        &self.perm
    }

    /// Bitmask over 1-based domain indices (bit `i−1` set ⇔ index `i`
    /// banned).
    ///
    /// # Panics
    ///
    /// Panics if the library's domain exceeds 64 indices (a 4-wire
    /// library) — use [`LibraryGate::banned_indices`] there; the
    /// synthesis engine builds its width-appropriate masks from it.
    pub fn banned_mask(&self) -> u64 {
        self.banned_mask
            .expect("domain exceeds 64 indices; use banned_indices()")
    }

    /// The 1-based banned indices (the paper's `N` set for the gate's
    /// wire constraint), ascending — valid at any domain size.
    pub fn banned_indices(&self) -> &[usize] {
        &self.banned
    }

    /// `true` iff the gate may be cascaded after a circuit whose image of
    /// the binary set `S` is `image_mask` (same bit convention).
    ///
    /// # Examples
    ///
    /// ```
    /// use mvq_logic::GateLibrary;
    ///
    /// let lib = GateLibrary::standard(3);
    /// let identity_image = lib.binary_set_mask();
    /// // Every gate is reasonable after the empty circuit.
    /// assert!(lib.gates().iter().all(|g| g.is_reasonable_after(identity_image)));
    /// ```
    /// # Panics
    ///
    /// Panics if the library's domain exceeds 64 indices (see
    /// [`LibraryGate::banned_mask`]).
    pub fn is_reasonable_after(&self, image_mask: u64) -> bool {
        image_mask & self.banned_mask() == 0
    }
}

/// The paper's banned sets for a 3-wire domain, exposed for inspection and
/// tests (`N_A`, `N_B`, `N_C`, `N_AB`, `N_AC`, `N_BC` of Section 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BannedSets {
    /// Indices whose pattern is mixed on wire A.
    pub n_a: Vec<usize>,
    /// Indices whose pattern is mixed on wire B.
    pub n_b: Vec<usize>,
    /// Indices whose pattern is mixed on wire C.
    pub n_c: Vec<usize>,
    /// Mixed on A or B.
    pub n_ab: Vec<usize>,
    /// Mixed on A or C.
    pub n_ac: Vec<usize>,
    /// Mixed on B or C.
    pub n_bc: Vec<usize>,
}

/// The paper's quantum gate library **L** on an `n`-wire register: all
/// controlled-V, controlled-V⁺ and Feynman placements (`6 + 6 + 6 = 18`
/// gates for `n = 3`, `12 + 12 + 12 = 36` for `n = 4`), with precomputed
/// permutations and banned sets on the permutable domain.
///
/// # Examples
///
/// ```
/// use mvq_logic::GateLibrary;
///
/// let lib = GateLibrary::standard(3);
/// assert_eq!(lib.gates().len(), 18);
/// assert_eq!(lib.domain().len(), 38);
/// assert_eq!(lib.not_gates().len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct GateLibrary {
    domain: PatternDomain,
    gates: Vec<LibraryGate>,
    binary_set: Vec<usize>,
    binary_set_mask: u64,
}

impl GateLibrary {
    /// Builds the standard library (all V, V⁺ and Feynman placements) on
    /// the permutable domain for `n` wires (`n = 3` gives 38 indices,
    /// `n = 4` gives 176 — the latter needs the wide engine width
    /// downstream).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not 2, 3 or 4.
    pub fn standard(n: usize) -> Self {
        assert!(
            (2..=4).contains(&n),
            "standard library supports 2, 3 or 4 wires"
        );
        Self::with_domain(PatternDomain::permutable(n))
    }

    /// Builds the library over an explicit domain (e.g.
    /// [`PatternDomain::full`] for the domain-reduction ablation).
    ///
    /// # Panics
    ///
    /// Panics if the domain has more than 255 indices (the permutation
    /// substrate stores images as `u8`).
    pub fn with_domain(domain: PatternDomain) -> Self {
        assert!(
            domain.len() <= 255,
            "domain exceeds the 255-point permutation substrate"
        );
        let n = domain.wires();
        let mask_of = |indices: &[usize]| -> Option<u64> {
            (domain.len() <= 64).then(|| indices.iter().map(|&i| 1u64 << (i - 1)).sum())
        };
        let make = |gate: Gate, banned: Vec<usize>| -> LibraryGate {
            LibraryGate {
                gate,
                perm: gate.perm(&domain),
                banned_mask: mask_of(&banned),
                banned,
            }
        };
        let mut gates = Vec::new();
        for data in 0..n {
            for control in 0..n {
                if data == control {
                    continue;
                }
                for gate in [Gate::v(data, control), Gate::v_dagger(data, control)] {
                    gates.push(make(gate, domain.banned_for_wire(control)));
                }
            }
        }
        // Feynman gates: banned when either wire is mixed.
        for data in 0..n {
            for control in 0..n {
                if data == control {
                    continue;
                }
                let gate = Gate::feynman(data, control);
                gates.push(make(gate, domain.banned_for_pair(data, control)));
            }
        }
        let binary_set = domain.binary_set();
        // Binary patterns always sit in the low indices, so the `S` mask
        // fits a u64 at every supported wire count.
        let binary_set_mask = binary_set.iter().map(|&i| 1u64 << (i - 1)).sum();
        Self {
            domain,
            gates,
            binary_set,
            binary_set_mask,
        }
    }

    /// The pattern domain the library acts on.
    pub fn domain(&self) -> &PatternDomain {
        &self.domain
    }

    /// All 2-qubit library gates.
    pub fn gates(&self) -> &[LibraryGate] {
        &self.gates
    }

    /// The NOT gates (cost 0, used for the Theorem 2 coset layer).
    pub fn not_gates(&self) -> Vec<Gate> {
        (0..self.domain.wires()).map(Gate::not).collect()
    }

    /// The paper's `S`: indices of the pure binary patterns.
    pub fn binary_set(&self) -> &[usize] {
        &self.binary_set
    }

    /// `S` as a bitmask (bit `i−1` ⇔ index `i`).
    pub fn binary_set_mask(&self) -> u64 {
        self.binary_set_mask
    }

    /// Looks up the library gate for `gate`, if present.
    pub fn find(&self, gate: Gate) -> Option<&LibraryGate> {
        self.gates.iter().find(|lg| lg.gate == gate)
    }

    /// The banned sets in the paper's notation (3-wire domains only).
    ///
    /// # Panics
    ///
    /// Panics if the domain does not have exactly 3 wires.
    pub fn banned_sets(&self) -> BannedSets {
        assert_eq!(self.domain.wires(), 3, "banned-set notation is 3-wire");
        BannedSets {
            n_a: self.domain.banned_for_wire(0),
            n_b: self.domain.banned_for_wire(1),
            n_c: self.domain.banned_for_wire(2),
            n_ab: self.domain.banned_for_pair(0, 1),
            n_ac: self.domain.banned_for_pair(0, 2),
            n_bc: self.domain.banned_for_pair(1, 2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_library_has_18_gates() {
        let lib = GateLibrary::standard(3);
        assert_eq!(lib.gates().len(), 18);
        let v_count = lib
            .gates()
            .iter()
            .filter(|g| matches!(g.gate(), Gate::V { .. }))
            .count();
        assert_eq!(v_count, 6);
    }

    #[test]
    fn two_wire_library() {
        let lib = GateLibrary::standard(2);
        assert_eq!(lib.gates().len(), 6); // 2 V + 2 V⁺ + 2 F
        assert_eq!(lib.domain().len(), 8);
        assert_eq!(lib.binary_set(), &[1, 2, 3, 4]);
    }

    #[test]
    fn binary_set_mask_is_low_bits() {
        let lib = GateLibrary::standard(3);
        assert_eq!(lib.binary_set_mask(), 0xFF);
    }

    #[test]
    fn banned_sets_match_paper() {
        let lib = GateLibrary::standard(3);
        let b = lib.banned_sets();
        assert_eq!(b.n_a, (25..=38).collect::<Vec<_>>());
        assert_eq!(
            b.n_b,
            vec![11, 12, 17, 18, 19, 20, 21, 22, 23, 24, 30, 31, 37, 38]
        );
        assert_eq!(
            b.n_c,
            vec![9, 10, 13, 14, 15, 16, 19, 20, 23, 24, 28, 29, 35, 36]
        );
        // Pair sets are unions of the wire sets.
        let union = |x: &[usize], y: &[usize]| {
            let mut u: Vec<usize> = x.iter().chain(y).copied().collect();
            u.sort_unstable();
            u.dedup();
            u
        };
        assert_eq!(b.n_ab, union(&b.n_a, &b.n_b));
        assert_eq!(b.n_ac, union(&b.n_a, &b.n_c));
        assert_eq!(b.n_bc, union(&b.n_b, &b.n_c));
    }

    #[test]
    fn identity_image_allows_all_gates() {
        let lib = GateLibrary::standard(3);
        let s = lib.binary_set_mask();
        for g in lib.gates() {
            assert!(g.is_reasonable_after(s), "{} blocked at identity", g.gate());
        }
    }

    #[test]
    fn v_gate_image_blocks_dependent_gates() {
        // After VBA, binary patterns with A=1 have a mixed B; gates
        // controlled by B (or XOR-touching B) must be banned.
        let lib = GateLibrary::standard(3);
        let vba = lib.find(Gate::v(1, 0)).unwrap();
        let image_mask: u64 = lib
            .binary_set()
            .iter()
            .map(|&p| 1u64 << (vba.perm().image(p) - 1))
            .sum();
        // V controlled by B: banned.
        assert!(!lib
            .find(Gate::v(0, 1))
            .unwrap()
            .is_reasonable_after(image_mask));
        // Feynman touching B: banned.
        assert!(!lib
            .find(Gate::feynman(1, 2))
            .unwrap()
            .is_reasonable_after(image_mask));
        // V *on data* B controlled by A: allowed (control A stays binary).
        assert!(lib
            .find(Gate::v(1, 0))
            .unwrap()
            .is_reasonable_after(image_mask));
        // Feynman on A and C: allowed.
        assert!(lib
            .find(Gate::feynman(2, 0))
            .unwrap()
            .is_reasonable_after(image_mask));
    }

    #[test]
    fn with_full_domain_works() {
        let lib = GateLibrary::with_domain(PatternDomain::full(3));
        assert_eq!(lib.domain().len(), 64);
        assert_eq!(lib.gates().len(), 18);
        // Binary set in the full domain is sparse but has 8 entries.
        assert_eq!(lib.binary_set().len(), 8);
    }

    #[test]
    fn four_wire_library_has_36_gates() {
        let lib = GateLibrary::standard(4);
        assert_eq!(lib.gates().len(), 36);
        assert_eq!(lib.domain().len(), 176); // 4^4 − 3^4 + 1
        assert_eq!(lib.binary_set().len(), 16);
        assert_eq!(lib.binary_set_mask(), 0xFFFF);
        assert_eq!(lib.not_gates().len(), 4);
        // Banned sets are exposed as indices at any width; some reach
        // past the u64 mask range.
        for g in lib.gates() {
            assert!(!g.banned_indices().is_empty());
            assert!(g.banned_indices().windows(2).all(|w| w[0] < w[1]));
        }
        assert!(lib
            .gates()
            .iter()
            .any(|g| g.banned_indices().iter().any(|&i| i > 64)));
    }

    #[test]
    #[should_panic(expected = "use banned_indices")]
    fn wide_domain_banned_mask_panics() {
        let lib = GateLibrary::standard(4);
        let _ = lib.gates()[0].banned_mask();
    }

    #[test]
    fn banned_indices_agree_with_masks_on_narrow_domains() {
        let lib = GateLibrary::standard(3);
        for g in lib.gates() {
            let from_indices: u64 = g.banned_indices().iter().map(|&i| 1u64 << (i - 1)).sum();
            assert_eq!(from_indices, g.banned_mask(), "{}", g.gate());
        }
    }

    #[test]
    fn find_locates_gates() {
        let lib = GateLibrary::standard(3);
        assert!(lib.find(Gate::v(2, 1)).is_some());
        assert!(lib.find(Gate::not(0)).is_none());
        assert_eq!(lib.not_gates().len(), 3);
    }
}
