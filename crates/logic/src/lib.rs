//! Quaternary signal algebra, pattern domains and the quantum-gate →
//! permutation encoding of the reproduced paper.
//!
//! With pure binary primary inputs, every wire of a circuit built from
//! controlled-V, controlled-V⁺, Feynman (CNOT) and NOT gates carries one of
//! only four values ([`Value`]): `0`, `1`, `V0 = V|0⟩`, `V1 = V|1⟩`
//! (Section 2 of the paper; `V0 = V⁺1` and `V1 = V⁺0` collapse the six
//! seemingly-possible values to four). A joint assignment to `n` wires is a
//! [`Pattern`]; the paper's index encoding of patterns is captured by
//! [`PatternDomain`]:
//!
//! * [`PatternDomain::full`] — all `4^n` patterns (Table 1 uses `n = 2`),
//! * [`PatternDomain::permutable`] — the paper's reduced domain: patterns
//!   that contain a `1`, plus the all-zero pattern (`4^n − 3^n + 1`
//!   patterns; **38** for `n = 3`), with the `2^n` binary patterns first.
//!
//! Every [`Gate`] then becomes a permutation of the domain
//! ([`Gate::perm`]), cascading constraints become banned sets
//! ([`GateLibrary`]), and the synthesis problem is handed over to group
//! theory exactly as in Section 3.
//!
//! # Examples
//!
//! ```
//! use mvq_logic::{Gate, PatternDomain};
//!
//! let domain = PatternDomain::permutable(3);
//! assert_eq!(domain.len(), 38);
//!
//! // The paper's formula: VBA = (5,17,7,21)(6,18,8,22)(13,19,15,23)(14,20,16,24).
//! let vba = Gate::v(1, 0); // data wire B, control wire A
//! assert_eq!(
//!     vba.perm(&domain).to_string(),
//!     "(5,17,7,21)(6,18,8,22)(13,19,15,23)(14,20,16,24)",
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod domain;
mod gate;
mod library;
mod pattern;
mod table;
mod value;

pub use domain::PatternDomain;
pub use gate::{Gate, ParseGateError};
pub use library::{BannedSets, GateLibrary, LibraryGate};
pub use pattern::Pattern;
pub use table::{TruthTable, TruthTableRow};
pub use value::Value;

/// Returns the conventional wire name for a wire index: `A`, `B`, `C`, …
///
/// # Examples
///
/// ```
/// assert_eq!(mvq_logic::wire_name(0), 'A');
/// assert_eq!(mvq_logic::wire_name(2), 'C');
/// ```
pub fn wire_name(wire: usize) -> char {
    (b'A' + wire as u8) as char
}
