use std::collections::HashMap;

use crate::Pattern;

/// An indexed set of patterns — the domain on which gates act as
/// permutations.
///
/// Indices are **1-based**, matching every formula in the paper.
///
/// Two domains matter:
///
/// * [`PatternDomain::full`]: all `4^n` patterns in base-4 order. Used for
///   the 16-row Table 1 (`n = 2`) and for the domain-reduction ablation.
/// * [`PatternDomain::permutable`]: the paper's reduction. Patterns with no
///   `1` anywhere are fixed by every gate, so only the `4^n − 3^n` patterns
///   containing a `1`, plus the all-zero pattern, are kept:
///   `4^n − 3^n + 1` indices (38 for `n = 3`). The `2^n` binary patterns
///   come first ("the 8 binary patterns will appear first, from small to
///   big, then the other 30 patterns also from small to big").
///
/// # Examples
///
/// ```
/// use mvq_logic::{Pattern, PatternDomain, Value};
///
/// let d = PatternDomain::permutable(3);
/// assert_eq!(d.len(), 38);
/// // Index 5 is the binary pattern [1,0,0] …
/// assert_eq!(d.pattern(5).to_bits(), Some(0b100));
/// // … and index 17 is [1,V0,0], its image under VBA.
/// assert_eq!(
///     d.pattern(17).values(),
///     &[Value::One, Value::V0, Value::Zero],
/// );
/// ```
#[derive(Debug, Clone)]
pub struct PatternDomain {
    wires: usize,
    patterns: Vec<Pattern>,
    index_of: HashMap<Pattern, usize>,
}

impl PatternDomain {
    /// All `4^n` patterns on `n` wires, ascending base-4.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or larger than 3 (the permutation substrate
    /// stores indices as `u8`; `4^4 = 256` would exceed it by one).
    pub fn full(n: usize) -> Self {
        assert!((1..=3).contains(&n), "full domain supports 1..=3 wires");
        let patterns = (0..4usize.pow(n as u32))
            .map(|code| Pattern::from_code(code, n))
            .collect();
        Self::from_patterns(n, patterns)
    }

    /// The paper's reduced domain: the `2^n` binary patterns first
    /// (ascending), then every pattern that contains both a `1` and a mixed
    /// value (ascending). Total `4^n − 3^n + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or larger than 4.
    pub fn permutable(n: usize) -> Self {
        assert!(
            (1..=4).contains(&n),
            "permutable domain supports 1..=4 wires"
        );
        let mut patterns: Vec<Pattern> = (0..2usize.pow(n as u32))
            .map(|bits| Pattern::from_bits(bits, n))
            .collect();
        let mixed = (0..4usize.pow(n as u32))
            .map(|code| Pattern::from_code(code, n))
            .filter(|p| p.contains_one() && p.contains_mixed());
        patterns.extend(mixed);
        Self::from_patterns(n, patterns)
    }

    /// The row ordering of the paper's **Table 1**: all `4^n` patterns,
    /// grouped by *which* wires are mixed (pure binary rows first, then
    /// data-mixed, then control-mixed, then both), ascending within each
    /// group.
    ///
    /// Formally the sort key is `(mixed-mask, base-4 code)` where the
    /// mixed-mask has a 1-bit for every mixed wire, wire `A` most
    /// significant.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or larger than 3.
    ///
    /// # Examples
    ///
    /// ```
    /// use mvq_logic::{PatternDomain, Value};
    /// let d = PatternDomain::table_ordered(2);
    /// // Row 7 of Table 1 is (1, V0).
    /// assert_eq!(d.pattern(7).values(), &[Value::One, Value::V0]);
    /// ```
    pub fn table_ordered(n: usize) -> Self {
        assert!((1..=3).contains(&n), "table ordering supports 1..=3 wires");
        let mut patterns: Vec<Pattern> = (0..4usize.pow(n as u32))
            .map(|code| Pattern::from_code(code, n))
            .collect();
        let mask = |p: &Pattern| -> usize {
            p.values()
                .iter()
                .fold(0, |acc, v| (acc << 1) | usize::from(v.is_mixed()))
        };
        patterns.sort_by_key(|p| (mask(p), p.code()));
        Self::from_patterns(n, patterns)
    }

    fn from_patterns(wires: usize, patterns: Vec<Pattern>) -> Self {
        let index_of = patterns
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i + 1))
            .collect();
        Self {
            wires,
            patterns,
            index_of,
        }
    }

    /// The number of wires `n`.
    pub fn wires(&self) -> usize {
        self.wires
    }

    /// The number of indexed patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// `true` iff the domain is empty (never happens for valid wire
    /// counts; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// The pattern at 1-based `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is 0 or exceeds [`PatternDomain::len`].
    pub fn pattern(&self, index: usize) -> &Pattern {
        &self.patterns[index - 1]
    }

    /// The 1-based index of `pattern`, or `None` if it is outside the
    /// domain (e.g. a no-`1` mixed pattern in the permutable domain).
    pub fn index(&self, pattern: &Pattern) -> Option<usize> {
        self.index_of.get(pattern).copied()
    }

    /// The indices of the pure binary patterns — the paper's set
    /// `S = {1, …, 2^n}` (ascending).
    pub fn binary_set(&self) -> Vec<usize> {
        self.patterns
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_binary())
            .map(|(i, _)| i + 1)
            .collect()
    }

    /// The paper's banned set for a single wire: all indices whose pattern
    /// carries a mixed value on `wire` (`N_A`, `N_B`, `N_C` for wires 0, 1,
    /// 2).
    pub fn banned_for_wire(&self, wire: usize) -> Vec<usize> {
        self.patterns
            .iter()
            .enumerate()
            .filter(|(_, p)| p.value(wire).is_mixed())
            .map(|(i, _)| i + 1)
            .collect()
    }

    /// The paper's banned set for a pair of wires: indices whose pattern is
    /// mixed on either wire (`N_AB`, `N_AC`, `N_BC`).
    pub fn banned_for_pair(&self, wire_a: usize, wire_b: usize) -> Vec<usize> {
        self.patterns
            .iter()
            .enumerate()
            .filter(|(_, p)| p.value(wire_a).is_mixed() || p.value(wire_b).is_mixed())
            .map(|(i, _)| i + 1)
            .collect()
    }

    /// Iterates over `(1-based index, pattern)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Pattern)> {
        self.patterns.iter().enumerate().map(|(i, p)| (i + 1, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    #[test]
    fn sizes_match_paper() {
        assert_eq!(PatternDomain::full(2).len(), 16); // Table 1
        assert_eq!(PatternDomain::full(3).len(), 64);
        assert_eq!(PatternDomain::permutable(3).len(), 38); // 64 − 27 + 1
        assert_eq!(PatternDomain::permutable(2).len(), 8); // 16 − 9 + 1
    }

    #[test]
    fn binary_patterns_come_first() {
        let d = PatternDomain::permutable(3);
        for (idx, bits) in (1..=8).zip(0..8) {
            assert_eq!(d.pattern(idx).to_bits(), Some(bits));
        }
        assert_eq!(d.binary_set(), (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn mixed_patterns_sorted_ascending() {
        let d = PatternDomain::permutable(3);
        let codes: Vec<usize> = (9..=38).map(|i| d.pattern(i).code()).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        assert_eq!(codes, sorted);
        // First mixed pattern is [0,1,V0] (code 6), per the hand encoding.
        assert_eq!(d.pattern(9).values(), &[Value::Zero, Value::One, Value::V0]);
    }

    #[test]
    fn banned_sets_match_paper() {
        let d = PatternDomain::permutable(3);
        // N_A = {25,…,38}.
        assert_eq!(d.banned_for_wire(0), (25..=38).collect::<Vec<_>>());
        // N_B (paper, Section 3).
        assert_eq!(
            d.banned_for_wire(1),
            vec![11, 12, 17, 18, 19, 20, 21, 22, 23, 24, 30, 31, 37, 38]
        );
        // N_C (paper, Section 3).
        assert_eq!(
            d.banned_for_wire(2),
            vec![9, 10, 13, 14, 15, 16, 19, 20, 23, 24, 28, 29, 35, 36]
        );
    }

    #[test]
    fn banned_pairs_match_paper() {
        let d = PatternDomain::permutable(3);
        // N_AB = N_A ∪ N_B.
        assert_eq!(
            d.banned_for_pair(0, 1),
            vec![
                11, 12, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33, 34, 35,
                36, 37, 38
            ]
        );
        // N_BC (paper, Section 3).
        assert_eq!(
            d.banned_for_pair(1, 2),
            vec![
                9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 28, 29, 30, 31, 35,
                36, 37, 38
            ]
        );
    }

    #[test]
    fn index_lookup_roundtrip() {
        let d = PatternDomain::permutable(3);
        for (idx, pattern) in d.iter() {
            assert_eq!(d.index(pattern), Some(idx));
        }
        // A no-1 mixed pattern is outside the permutable domain.
        let outside = Pattern::new(vec![Value::V0, Value::Zero, Value::V1]);
        assert_eq!(d.index(&outside), None);
    }

    #[test]
    fn full_domain_indexes_by_code() {
        let d = PatternDomain::full(2);
        for (idx, pattern) in d.iter() {
            assert_eq!(pattern.code(), idx - 1);
        }
    }

    #[test]
    fn full_domain_binary_set_is_sparse() {
        // In the full 2-wire domain the binary patterns are rows 1, 2, 5, 6
        // (codes 0, 1, 4, 5) — Table 1's first four rows after relabeling.
        let d = PatternDomain::full(2);
        assert_eq!(d.binary_set(), vec![1, 2, 5, 6]);
    }
}
