use std::fmt;

use mvq_matrix::CMatrix;
use mvq_perm::Perm;

use crate::{wire_name, Pattern, PatternDomain, Value};

/// An elementary quantum gate placed on specific wires of an `n`-qubit
/// register (Figure 2 of the paper).
///
/// The subscript convention follows the paper: the **first** wire index is
/// the data wire (the one that changes), the **second** is the control.
/// `Gate::v(1, 0)` is the paper's `V_BA` — V applied to `B`, controlled by
/// `A`.
///
/// # Examples
///
/// ```
/// use mvq_logic::{Gate, PatternDomain};
///
/// let domain = PatternDomain::permutable(3);
/// let feca = Gate::feynman(2, 0); // F_CA: C ^= A
/// assert_eq!(feca.perm(&domain).to_string(), "(5,6)(7,8)(17,18)(21,22)");
/// assert_eq!(feca.to_string(), "FCA");
/// ```
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Gate {
    /// Controlled-V: `data ← V(data)` when `control = 1`.
    V {
        /// The wire whose value changes.
        data: usize,
        /// The (binary-constrained) control wire.
        control: usize,
    },
    /// Controlled-V⁺: `data ← V⁺(data)` when `control = 1`.
    VDagger {
        /// The wire whose value changes.
        data: usize,
        /// The (binary-constrained) control wire.
        control: usize,
    },
    /// Feynman / CNOT: `data ← data ⊕ control` (both wires binary).
    Feynman {
        /// The wire receiving the XOR.
        data: usize,
        /// The other XOR operand.
        control: usize,
    },
    /// Single-qubit NOT (inverter) — quantum cost 0 in the paper's model.
    Not {
        /// The inverted wire.
        wire: usize,
    },
}

impl Gate {
    /// Controlled-V with the given data and control wires.
    ///
    /// # Panics
    ///
    /// Panics if `data == control`.
    pub fn v(data: usize, control: usize) -> Self {
        assert_ne!(data, control, "data and control must differ");
        Gate::V { data, control }
    }

    /// Controlled-V⁺ with the given data and control wires.
    ///
    /// # Panics
    ///
    /// Panics if `data == control`.
    pub fn v_dagger(data: usize, control: usize) -> Self {
        assert_ne!(data, control, "data and control must differ");
        Gate::VDagger { data, control }
    }

    /// Feynman (CNOT) with the given data (target) and control wires.
    ///
    /// # Panics
    ///
    /// Panics if `data == control`.
    pub fn feynman(data: usize, control: usize) -> Self {
        assert_ne!(data, control, "data and control must differ");
        Gate::Feynman { data, control }
    }

    /// NOT on `wire`.
    pub fn not(wire: usize) -> Self {
        Gate::Not { wire }
    }

    /// The wires the gate touches (data first).
    pub fn wires(&self) -> Vec<usize> {
        match *self {
            Gate::V { data, control }
            | Gate::VDagger { data, control }
            | Gate::Feynman { data, control } => vec![data, control],
            Gate::Not { wire } => vec![wire],
        }
    }

    /// `true` for the 2-qubit gates (cost 1); `false` for NOT (cost 0).
    pub fn is_two_qubit(&self) -> bool {
        !matches!(self, Gate::Not { .. })
    }

    /// The Hermitian adjoint of the gate: swaps V ↔ V⁺, fixes Feynman and
    /// NOT (both are self-adjoint).
    ///
    /// # Examples
    ///
    /// ```
    /// use mvq_logic::Gate;
    /// assert_eq!(Gate::v(1, 0).adjoint(), Gate::v_dagger(1, 0));
    /// assert_eq!(Gate::feynman(2, 1).adjoint(), Gate::feynman(2, 1));
    /// ```
    pub fn adjoint(&self) -> Self {
        match *self {
            Gate::V { data, control } => Gate::VDagger { data, control },
            Gate::VDagger { data, control } => Gate::V { data, control },
            other => other,
        }
    }

    /// Applies the gate to a pattern under the paper's multiple-valued
    /// semantics:
    ///
    /// * controlled-V / V⁺ act on the data wire when the control is `1`,
    ///   and leave the pattern unchanged when the control is `0` **or
    ///   mixed** (the paper's don't-care convention that makes the gate a
    ///   permutation);
    /// * Feynman XORs when both wires are binary, else leaves the pattern
    ///   unchanged;
    /// * NOT always inverts its wire.
    ///
    /// # Panics
    ///
    /// Panics if a referenced wire is out of range for the pattern.
    pub fn apply(&self, pattern: &Pattern) -> Pattern {
        match *self {
            Gate::V { data, control } => match pattern.value(control) {
                Value::One => pattern.with_value(data, pattern.value(data).apply_v()),
                _ => pattern.clone(),
            },
            Gate::VDagger { data, control } => match pattern.value(control) {
                Value::One => pattern.with_value(data, pattern.value(data).apply_v_dagger()),
                _ => pattern.clone(),
            },
            Gate::Feynman { data, control } => {
                match pattern.value(data).xor(pattern.value(control)) {
                    Some(x) => pattern.with_value(data, x),
                    None => pattern.clone(),
                }
            }
            Gate::Not { wire } => pattern.with_value(wire, pattern.value(wire).apply_not()),
        }
    }

    /// The gate's permutation of a pattern domain — the paper's
    /// representation `(3,7,4,8)`, `VBA = (5,17,7,21)…` etc.
    ///
    /// # Panics
    ///
    /// Panics if the gate maps some domain pattern outside the domain
    /// (cannot happen for [`PatternDomain::full`],
    /// [`PatternDomain::table_ordered`] or [`PatternDomain::permutable`]:
    /// gates fix every no-`1` pattern).
    pub fn perm(&self, domain: &PatternDomain) -> Perm {
        let images: Vec<usize> = (1..=domain.len())
            .map(|idx| {
                let out = self.apply(domain.pattern(idx));
                domain
                    .index(&out)
                    // lint: allow(panic) a gate maps domain patterns to domain patterns by construction
                    .expect("gate output stays inside the domain")
            })
            .collect();
        // lint: allow(panic) reversible gates are bijections on the pattern domain
        Perm::from_images(&images).expect("gates are bijections")
    }

    /// The exact `2^n × 2^n` unitary of the gate on an `n`-wire register
    /// (wire `A` is the most significant bit of the basis index).
    ///
    /// This is the bridge back from the multiple-valued abstraction to
    /// Hilbert space: cascades of these matrices are compared against
    /// target permutation matrices in the verification tests.
    ///
    /// # Panics
    ///
    /// Panics if a referenced wire is ≥ `n`.
    pub fn unitary(&self, n: usize) -> CMatrix {
        let dim = 1usize << n;
        let bit = |wire: usize| -> usize {
            assert!(wire < n, "wire out of range");
            1 << (n - 1 - wire)
        };
        match *self {
            Gate::V { data, control } | Gate::VDagger { data, control } => {
                let v = match self {
                    Gate::V { .. } => CMatrix::v_gate(),
                    _ => CMatrix::v_dagger_gate(),
                };
                let cm = bit(control);
                let dm = bit(data);
                let mut m = CMatrix::zeros(dim, dim);
                for col in 0..dim {
                    if col & cm == 0 {
                        m.set(col, col, mvq_arith::CDyadic::ONE);
                    } else {
                        let d_in = usize::from(col & dm != 0);
                        for d_out in 0..2 {
                            let row = (col & !dm) | if d_out == 1 { dm } else { 0 };
                            m.set(row, col, v[(d_out, d_in)]);
                        }
                    }
                }
                m
            }
            Gate::Feynman { data, control } => {
                let cm = bit(control);
                let dm = bit(data);
                let images: Vec<usize> = (0..dim)
                    .map(|col| (if col & cm != 0 { col ^ dm } else { col }) + 1)
                    .collect();
                CMatrix::permutation(&images)
            }
            Gate::Not { wire } => {
                let wm = bit(wire);
                let images: Vec<usize> = (0..dim).map(|col| (col ^ wm) + 1).collect();
                CMatrix::permutation(&images)
            }
        }
    }
}

/// Error returned when parsing a [`Gate`] from paper notation fails.
///
/// # Examples
///
/// ```
/// use mvq_logic::Gate;
/// assert!("VXX".parse::<Gate>().is_err());
/// assert!("QAB".parse::<Gate>().is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGateError {
    input: String,
}

impl fmt::Display for ParseGateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid gate `{}` (expected paper notation such as VBA, V+AB, FCA or NOT(B))",
            self.input
        )
    }
}

impl std::error::Error for ParseGateError {}

impl std::str::FromStr for Gate {
    type Err = ParseGateError;

    /// Parses the paper's notation: `VBA` / `V+AB` / `FCA` / `NOT(B)`.
    ///
    /// The first wire letter is the data wire, the second the control
    /// (Figure 2 convention). Case-sensitive; wires `A`–`Z`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mvq_logic::Gate;
    /// assert_eq!("VBA".parse::<Gate>().unwrap(), Gate::v(1, 0));
    /// assert_eq!("V+AB".parse::<Gate>().unwrap(), Gate::v_dagger(0, 1));
    /// assert_eq!("FCA".parse::<Gate>().unwrap(), Gate::feynman(2, 0));
    /// assert_eq!("NOT(B)".parse::<Gate>().unwrap(), Gate::not(1));
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseGateError { input: s.into() };
        let s = s.trim();
        let wire = |c: char| -> Result<usize, ParseGateError> {
            if c.is_ascii_uppercase() {
                Ok((c as u8 - b'A') as usize)
            } else {
                Err(err())
            }
        };
        if let Some(inner) = s.strip_prefix("NOT(").and_then(|r| r.strip_suffix(')')) {
            let mut chars = inner.chars();
            let (Some(w), None) = (chars.next(), chars.next()) else {
                return Err(err());
            };
            return Ok(Gate::not(wire(w)?));
        }
        let (kind, rest): (u8, &str) = if let Some(rest) = s.strip_prefix("V+") {
            (1, rest)
        } else if let Some(rest) = s.strip_prefix('V') {
            (0, rest)
        } else if let Some(rest) = s.strip_prefix("Fe") {
            // The paper occasionally writes "FeCA" for Feynman gates.
            (2, rest)
        } else if let Some(rest) = s.strip_prefix('F') {
            (2, rest)
        } else {
            return Err(err());
        };
        let mut chars = rest.chars();
        let (Some(d), Some(c), None) = (chars.next(), chars.next(), chars.next()) else {
            return Err(err());
        };
        let (data, control) = (wire(d)?, wire(c)?);
        if data == control {
            return Err(err());
        }
        Ok(match kind {
            0 => Gate::v(data, control),
            1 => Gate::v_dagger(data, control),
            _ => Gate::feynman(data, control),
        })
    }
}

impl fmt::Display for Gate {
    /// Paper notation: `VBA`, `V+AB`, `FCA`, `NOT(B)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Gate::V { data, control } => {
                write!(f, "V{}{}", wire_name(data), wire_name(control))
            }
            Gate::VDagger { data, control } => {
                write!(f, "V+{}{}", wire_name(data), wire_name(control))
            }
            Gate::Feynman { data, control } => {
                write!(f, "F{}{}", wire_name(data), wire_name(control))
            }
            Gate::Not { wire } => write!(f, "NOT({})", wire_name(wire)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_formula_vba() {
        let d = PatternDomain::permutable(3);
        assert_eq!(
            Gate::v(1, 0).perm(&d).to_string(),
            "(5,17,7,21)(6,18,8,22)(13,19,15,23)(14,20,16,24)"
        );
    }

    #[test]
    fn paper_formula_v_dagger_ab() {
        let d = PatternDomain::permutable(3);
        assert_eq!(
            Gate::v_dagger(0, 1).perm(&d).to_string(),
            "(3,33,7,26)(4,34,8,27)(9,35,15,28)(10,36,16,29)"
        );
    }

    #[test]
    fn paper_formula_feca() {
        let d = PatternDomain::permutable(3);
        assert_eq!(
            Gate::feynman(2, 0).perm(&d).to_string(),
            "(5,6)(7,8)(17,18)(21,22)"
        );
    }

    #[test]
    fn ctrl_v_2qubit_table_perm() {
        // Table 1's permutation representation: (3,7,4,8).
        let d = PatternDomain::table_ordered(2);
        assert_eq!(Gate::v(1, 0).perm(&d).to_string(), "(3,7,4,8)");
    }

    #[test]
    fn v_then_v_gives_not_on_patterns() {
        let d = PatternDomain::permutable(3);
        let v = Gate::v(1, 0);
        for (_, p) in d.iter() {
            let twice = v.apply(&v.apply(p));
            // When control is 1, two Vs equal a NOT on the data wire.
            if p.value(0) == Value::One {
                assert_eq!(twice.value(1), p.value(1).apply_not());
            } else {
                assert_eq!(&twice, p);
            }
        }
    }

    #[test]
    fn v_dagger_perm_is_inverse_of_v_perm() {
        let d = PatternDomain::permutable(3);
        for (data, control) in [(0, 1), (1, 0), (2, 0), (0, 2), (2, 1), (1, 2)] {
            let v = Gate::v(data, control).perm(&d);
            let vd = Gate::v_dagger(data, control).perm(&d);
            assert!((v * vd).is_identity());
        }
    }

    #[test]
    fn feynman_perm_is_involution() {
        let d = PatternDomain::permutable(3);
        let f = Gate::feynman(0, 2).perm(&d);
        assert!((f.clone() * f).is_identity());
    }

    #[test]
    fn gates_fix_no_one_patterns() {
        // "Every pattern must contain a 1. Otherwise, this pattern will not
        // change after any quantum gate."
        let d = PatternDomain::full(3);
        let gates = [Gate::v(1, 0), Gate::v_dagger(2, 1), Gate::feynman(0, 2)];
        for (_, p) in d.iter() {
            if !p.contains_one() {
                for g in gates {
                    assert_eq!(&g.apply(p), p, "{g} moved {p}");
                }
            }
        }
    }

    #[test]
    fn not_gate_acts_everywhere() {
        let p = Pattern::new(vec![Value::V0, Value::One, Value::Zero]);
        let out = Gate::not(0).apply(&p);
        assert_eq!(out.value(0), Value::V1);
    }

    #[test]
    fn unitary_of_feynman_is_cnot() {
        // F_CA on 3 wires: flip C when A = 1 — permutation (5,6)(7,8) of
        // basis states 1..8.
        let u = Gate::feynman(2, 0).unitary(3);
        assert_eq!(
            u.to_permutation_images().unwrap(),
            vec![1, 2, 3, 4, 6, 5, 8, 7]
        );
    }

    #[test]
    fn unitary_of_controlled_v_is_unitary_and_correct() {
        let u = Gate::v(1, 0).unitary(2);
        assert!(u.is_unitary());
        // Control 0 block is identity.
        assert!(u[(0, 0)].is_one());
        assert!(u[(1, 1)].is_one());
        // Control 1 block is V.
        let v = CMatrix::v_gate();
        assert_eq!(u[(2, 2)], v[(0, 0)]);
        assert_eq!(u[(2, 3)], v[(0, 1)]);
        assert_eq!(u[(3, 2)], v[(1, 0)]);
        assert_eq!(u[(3, 3)], v[(1, 1)]);
    }

    #[test]
    fn unitary_v_squares_to_cnot() {
        // Controlled-V twice = CNOT, at the full matrix level.
        let v = Gate::v(1, 0).unitary(3);
        let cnot = Gate::feynman(1, 0).unitary(3);
        assert_eq!(&v * &v, cnot);
    }

    #[test]
    fn unitary_adjoint_matches_gate_adjoint() {
        let g = Gate::v(2, 1);
        assert_eq!(g.unitary(3).adjoint(), g.adjoint().unitary(3));
    }

    #[test]
    fn unitary_agrees_with_pattern_semantics() {
        // For every gate and every domain pattern, applying the unitary to
        // the pattern's product-state amplitudes equals the amplitudes of
        // the pattern image. The MV algebra is exactly the unitary algebra
        // restricted to product states.
        let d = PatternDomain::permutable(3);
        let gates = [Gate::v(1, 0), Gate::v_dagger(0, 2), Gate::feynman(2, 1)];
        for g in gates {
            let u = g.unitary(3);
            for (_, p) in d.iter() {
                // Controlled gates with a mixed control are genuinely
                // entangling; the paper *defines* those cases as identity
                // (don't care). Skip them: the MV semantics is only
                // claimed on reachable (control-binary) patterns.
                if let Gate::V { control, .. } | Gate::VDagger { control, .. } = g {
                    if p.value(control).is_mixed() {
                        continue;
                    }
                }
                if let Gate::Feynman { data, control } = g {
                    if p.value(data).is_mixed() || p.value(control).is_mixed() {
                        continue;
                    }
                }
                let amps = pattern_amplitudes(p);
                let got = u.apply(&amps);
                let want = pattern_amplitudes(&g.apply(p));
                assert_eq!(got, want, "{g} on {p}");
            }
        }
    }

    fn pattern_amplitudes(p: &Pattern) -> Vec<mvq_arith::CDyadic> {
        // Tensor product left to right: wire A ends up most significant.
        let mut amps = vec![mvq_arith::CDyadic::ONE];
        for v in p.values() {
            let (a0, a1) = v.amplitudes();
            let mut next = Vec::with_capacity(amps.len() * 2);
            for &a in &amps {
                next.push(a * a0);
                next.push(a * a1);
            }
            amps = next;
        }
        amps
    }

    #[test]
    fn display_names() {
        assert_eq!(Gate::v(1, 0).to_string(), "VBA");
        assert_eq!(Gate::v_dagger(0, 1).to_string(), "V+AB");
        assert_eq!(Gate::feynman(2, 0).to_string(), "FCA");
        assert_eq!(Gate::not(1).to_string(), "NOT(B)");
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn same_wire_rejected() {
        let _ = Gate::v(1, 1);
    }

    #[test]
    fn parse_roundtrips_display() {
        let gates = [
            Gate::v(1, 0),
            Gate::v_dagger(0, 1),
            Gate::feynman(2, 0),
            Gate::not(1),
            Gate::v(2, 1),
            Gate::v_dagger(2, 0),
        ];
        for g in gates {
            let s = g.to_string();
            assert_eq!(s.parse::<Gate>().unwrap(), g, "roundtrip of {s}");
        }
    }

    #[test]
    fn parse_accepts_fe_prefix() {
        assert_eq!("FeCA".parse::<Gate>().unwrap(), Gate::feynman(2, 0));
    }

    #[test]
    fn parse_rejects_malformed_gates() {
        for bad in [
            "", "V", "VA", "VAA", "XAB", "NOT()", "NOT(AB)", "vba", "V+A",
        ] {
            assert!(bad.parse::<Gate>().is_err(), "should reject `{bad}`");
        }
    }
}
