//! Host crate for the workspace's criterion benchmarks (see `benches/`).
