//! Load generator for `mvq serve`: drives N client threads through the
//! HTTP JSON API and records throughput and latency percentiles into
//! `BENCH_serve.json`.
//!
//! By default it spins up an in-process [`mvq_serve::Server`] on a free
//! loopback port (optionally warm-started from `--snapshot`), so the
//! measurement needs no prior setup; point `--addr` at a running
//! `mvq serve` to measure an external process instead.
//!
//! After the load, the server is judged from its **own** `/metrics`
//! scrape (not client-side timing): `--slo` gates compare a server-side
//! latency quantile against a threshold, fail the run (non-zero exit)
//! when breached, and are recorded in the JSON artifact either way. A
//! default `request_us:p99 ≤ 250000` gate is always present.
//!
//! Usage:
//! `cargo run --release -p mvq_bench --bin serve_load -- \
//!     [out.json] [--addr HOST:PORT] [--clients N] [--requests M] [--snapshot FILE] \
//!     [--slo [HISTOGRAM:]p99_us=MICROS]...`

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use mvq_core::SynthesisEngine;
use mvq_serve::{HostConfig, HostRegistry, Server, ServerHandle};

/// One request shape of the workload mix.
#[derive(Clone, Copy)]
struct Shape {
    kind: &'static str,
    method: &'static str,
    path: &'static str,
    body: &'static str,
}

/// The steady-state mix: mostly warm synthesis lookups over a spread of
/// targets, two deep (cost-7) targets served past the warm frontier —
/// one forced bidirectional, one through the `auto` planner — a census
/// read, and a health probe.
const MIX: &[Shape] = &[
    Shape {
        kind: "synth_toffoli",
        method: "POST",
        path: "/synthesize",
        body: r#"{"target":"(7,8)","cb":6}"#,
    },
    Shape {
        kind: "synth_peres",
        method: "POST",
        path: "/synthesize",
        body: r#"{"target":"(5,7,6,8)","cb":5}"#,
    },
    Shape {
        kind: "synth_feynman",
        method: "POST",
        path: "/synthesize",
        body: r#"{"target":"(5,7)(6,8)","cb":3}"#,
    },
    Shape {
        kind: "synth_misc",
        method: "POST",
        path: "/synthesize",
        body: r#"{"target":"(2,3)(5,8)","cb":5}"#,
    },
    Shape {
        kind: "synth_fredkin_bidi",
        method: "POST",
        path: "/synthesize",
        body: r#"{"target":"(6,7)","cb":7,"strategy":"bidi"}"#,
    },
    Shape {
        kind: "synth_deep_auto",
        method: "POST",
        path: "/synthesize",
        body: r#"{"target":"(3,5)(4,6,8)","cb":7,"strategy":"auto"}"#,
    },
    Shape {
        kind: "census_cb5",
        method: "POST",
        path: "/census",
        body: r#"{"cb":5}"#,
    },
    Shape {
        kind: "healthz",
        method: "GET",
        path: "/healthz",
        body: "",
    },
];

struct Args {
    out: String,
    addr: Option<String>,
    clients: usize,
    requests: usize,
    snapshot: Option<String>,
    slo: Vec<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: "BENCH_serve.json".to_string(),
        addr: None,
        clients: 8,
        requests: 250,
        snapshot: None,
        slo: Vec::new(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(token) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .unwrap_or_else(|| panic!("--{name} needs a value"))
        };
        match token.as_str() {
            "--addr" => args.addr = Some(value("addr")),
            "--clients" => args.clients = value("clients").parse().expect("--clients"),
            "--requests" => args.requests = value("requests").parse().expect("--requests"),
            "--snapshot" => args.snapshot = Some(value("snapshot")),
            "--slo" => args.slo.push(value("slo")),
            other if !other.starts_with('-') => args.out = other.to_string(),
            other => panic!("unknown option `{other}`"),
        }
    }
    args
}

/// One server-side SLO gate, parsed from `--slo [HISTOGRAM:]pNN[_us]=MICROS`
/// (the histogram defaults to `request_us`). The quantile is evaluated on
/// the server's own `/metrics` scrape, so the gate judges what the server
/// measured about itself, not what the client happened to observe.
struct SloGate {
    histogram: String,
    label: String,
    quantile: f64,
    threshold_us: u64,
}

fn parse_slo(spec: &str) -> SloGate {
    let (lhs, rhs) = spec
        .split_once('=')
        .unwrap_or_else(|| panic!("--slo `{spec}`: expected [HISTOGRAM:]pNN_us=MICROS"));
    let threshold_us = rhs
        .parse()
        .unwrap_or_else(|_| panic!("--slo `{spec}`: threshold `{rhs}` is not a µs integer"));
    let (histogram, quantile_spec) = match lhs.split_once(':') {
        Some((histogram, rest)) => (histogram, rest),
        None => ("request_us", lhs),
    };
    let digits = quantile_spec
        .strip_prefix('p')
        .map(|rest| rest.strip_suffix("_us").unwrap_or(rest))
        .filter(|d| !d.is_empty() && d.bytes().all(|b| b.is_ascii_digit()))
        .unwrap_or_else(|| panic!("--slo `{spec}`: quantile `{quantile_spec}` is not pNN[_us]"));
    // p50 → 0.50, p99 → 0.99, p999 → 0.999: digits over 10^len.
    let quantile = digits.parse::<f64>().expect("digits") / 10f64.powi(digits.len() as i32);
    SloGate {
        histogram: histogram.to_string(),
        label: format!("{histogram}:p{digits}"),
        quantile,
        threshold_us,
    }
}

/// Sends one request on an open keep-alive connection and reads the full
/// response. Returns the status code and body.
fn roundtrip(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    shape: &Shape,
) -> std::io::Result<(u16, String)> {
    let request = format!(
        "{} {} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{}",
        shape.method,
        shape.path,
        shape.body.len(),
        shape.body
    );
    stream.write_all(request.as_bytes())?;
    stream.flush()?;
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("bad status line `{status_line}`")))?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(rest) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = rest.trim().parse().map_err(std::io::Error::other)?;
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((status, String::from_utf8_lossy(&body).into_owned()))
}

struct Recorded {
    kind: &'static str,
    latency: Duration,
    ok: bool,
}

fn percentile(sorted_us: &[u128], p: f64) -> u128 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[rank]
}

fn main() {
    let args = parse_args();
    // The default gate is always present; `--slo` adds to it.
    let mut gates = vec![parse_slo("request_us:p99=250000")];
    gates.extend(args.slo.iter().map(|spec| parse_slo(spec)));

    // In-process server unless an external address was given.
    let mut in_process: Option<(ServerHandle, std::thread::JoinHandle<std::io::Result<()>>)> = None;
    let addr = match &args.addr {
        Some(addr) => addr.clone(),
        None => {
            let registry = Arc::new(HostRegistry::new(HostConfig::default()));
            if let Some(path) = &args.snapshot {
                let engine = SynthesisEngine::load_snapshot(path).expect("load snapshot");
                registry.install(engine).expect("install snapshot host");
            }
            let server = Server::bind("127.0.0.1:0", registry).expect("bind loopback");
            let handle = server.handle().expect("server handle");
            let addr = server.local_addr().expect("local addr").to_string();
            let runner = std::thread::spawn(move || server.run(4));
            in_process = Some((handle, runner));
            addr
        }
    };
    println!(
        "driving {} clients × {} requests against {addr}{}",
        args.clients,
        args.requests,
        if args.snapshot.is_some() {
            " (snapshot-warm)"
        } else {
            " (cold start)"
        }
    );

    let wall_start = Instant::now();
    let all: Vec<Recorded> = std::thread::scope(|scope| {
        let addr = &addr;
        let handles: Vec<_> = (0..args.clients)
            .map(|client| {
                scope.spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    stream
                        .set_read_timeout(Some(Duration::from_secs(30)))
                        .expect("timeout");
                    stream.set_nodelay(true).expect("nodelay");
                    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
                    let mut recorded = Vec::with_capacity(args.requests);
                    for i in 0..args.requests {
                        // Stagger each client's walk through the mix so
                        // the endpoints interleave across clients.
                        let shape = &MIX[(client + i) % MIX.len()];
                        let start = Instant::now();
                        let result = roundtrip(&mut stream, &mut reader, shape);
                        let latency = start.elapsed();
                        let ok = matches!(result, Ok((200, _)));
                        if let Err(err) = &result {
                            eprintln!("client {client} request {i} failed: {err}");
                        }
                        recorded.push(Recorded {
                            kind: shape.kind,
                            latency,
                            ok,
                        });
                    }
                    recorded
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = wall_start.elapsed();

    // Scrape the server's own /metrics before shutting it down; the SLO
    // gates and the attribution block both read from this snapshot.
    const SCRAPE: Shape = Shape {
        kind: "metrics",
        method: "GET",
        path: "/metrics",
        body: "",
    };
    let scrape = {
        let mut stream = TcpStream::connect(&addr).expect("connect for /metrics scrape");
        let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
        let (status, body) = roundtrip(&mut stream, &mut reader, &SCRAPE).expect("scrape /metrics");
        assert_eq!(status, 200, "GET /metrics returned {status}");
        mvq_obs::parse_scrape(&body)
    };

    if let Some((handle, runner)) = in_process {
        handle.shutdown();
        runner.join().expect("server thread").expect("server run");
    }

    let total = all.len();
    let errors = all.iter().filter(|r| !r.ok).count();
    let mut sorted_us: Vec<u128> = all.iter().map(|r| r.latency.as_micros()).collect();
    sorted_us.sort_unstable();
    let mean_us = sorted_us.iter().sum::<u128>() / (total.max(1) as u128);
    let throughput = total as f64 / wall.as_secs_f64();
    let (p50, p90, p99) = (
        percentile(&sorted_us, 0.50),
        percentile(&sorted_us, 0.90),
        percentile(&sorted_us, 0.99),
    );
    println!(
        "{total} requests in {:.2}s → {throughput:.0} req/s; latency µs: p50 {p50}, p90 {p90}, p99 {p99}, max {}; errors {errors}",
        wall.as_secs_f64(),
        sorted_us.last().copied().unwrap_or(0),
    );

    let mut per_kind = String::new();
    for (i, shape) in MIX.iter().enumerate() {
        let mut kind_us: Vec<u128> = all
            .iter()
            .filter(|r| r.kind == shape.kind)
            .map(|r| r.latency.as_micros())
            .collect();
        kind_us.sort_unstable();
        let mean = kind_us.iter().sum::<u128>() / (kind_us.len().max(1) as u128);
        println!(
            "  {:<16} {:>6} reqs, mean {:>7} µs, p99 {:>7} µs",
            shape.kind,
            kind_us.len(),
            mean,
            percentile(&kind_us, 0.99)
        );
        per_kind.push_str(&format!(
            "    {{\"kind\": \"{}\", \"count\": {}, \"mean_us\": {}, \"p99_us\": {}}}{}\n",
            shape.kind,
            kind_us.len(),
            mean,
            percentile(&kind_us, 0.99),
            if i + 1 < MIX.len() { "," } else { "" }
        ));
    }

    // Evaluate the SLO gates against the server-side histograms.
    let mut slo_rows = String::new();
    let mut slo_failed = false;
    for (i, gate) in gates.iter().enumerate() {
        let hist = scrape.histograms.get(&gate.histogram).unwrap_or_else(|| {
            panic!(
                "SLO gate {}: histogram `{}` is not in /metrics",
                gate.label, gate.histogram
            )
        });
        let observed = hist.quantile(gate.quantile);
        let pass = observed <= gate.threshold_us;
        slo_failed |= !pass;
        println!(
            "  slo {:<20} observed {:>8} µs (server-side), threshold {:>8} µs → {}",
            gate.label,
            observed,
            gate.threshold_us,
            if pass { "pass" } else { "FAIL" }
        );
        slo_rows.push_str(&format!(
            "    {{\"gate\": \"{}\", \"threshold_us\": {}, \"observed_us\": {}, \"pass\": {}}}{}\n",
            gate.label,
            gate.threshold_us,
            observed,
            pass,
            if i + 1 < gates.len() { "," } else { "" }
        ));
    }

    // Server-side attribution block: where the wall time actually went
    // (queue vs engine) and what the request mix resolved to.
    let counter = |name: &str| scrape.counters.get(name).copied().unwrap_or(0);
    let hist_p99 = |name: &str| scrape.histograms.get(name).map_or(0, |h| h.quantile(0.99));
    let server_metrics = format!(
        "{{\"synthesize_requests_total\": {}, \"census_requests_total\": {}, \
         \"cache_hits_total\": {}, \"cache_misses_total\": {}, \"expansions_total\": {}, \
         \"sheds_total\": {}, \"queue_wait_p99_us\": {}, \"engine_p99_us\": {}}}",
        counter("synthesize_requests_total"),
        counter("census_requests_total"),
        counter("cache_hits_total"),
        counter("cache_misses_total"),
        counter("expansions_total"),
        counter("sheds_total"),
        hist_p99("queue_wait_us"),
        hist_p99("engine_us"),
    );

    let generated = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"generated_unix\": {generated},\n  \"available_parallelism\": {available},\n  \
         \"clients\": {},\n  \"requests_per_client\": {},\n  \"total_requests\": {total},\n  \
         \"snapshot_warm\": {},\n  \"wall_ms\": {},\n  \"throughput_rps\": {throughput:.1},\n  \
         \"errors\": {errors},\n  \"latency_us\": {{\"mean\": {mean_us}, \"p50\": {p50}, \
         \"p90\": {p90}, \"p99\": {p99}, \"max\": {}}},\n  \"per_kind\": [\n{per_kind}  ],\n  \
         \"server_metrics\": {server_metrics},\n  \"slo\": [\n{slo_rows}  ]\n}}\n",
        args.clients,
        args.requests,
        args.snapshot.is_some(),
        wall.as_millis(),
        sorted_us.last().copied().unwrap_or(0),
    );
    std::fs::write(&args.out, json).expect("write load snapshot");
    println!("wrote {}", args.out);
    assert_eq!(errors, 0, "load run saw non-200 responses");
    if slo_failed {
        eprintln!(
            "SLO gate(s) breached — see the \"slo\" block in {}",
            args.out
        );
        std::process::exit(1);
    }
}
