//! Quick perf snapshot for CI: times the headline synthesis paths and
//! writes `BENCH_synthesis.json` so successive PRs have a comparable
//! trajectory. Much faster than the full criterion suite — a handful of
//! samples per case, no statistics beyond mean/min/max.
//!
//! Usage: `cargo run --release -p mvq_bench --bin quick_bench [-- out.json]`

use std::time::{Instant, SystemTime, UNIX_EPOCH};

use mvq_core::{known, SynthesisEngine};

struct Sample {
    name: &'static str,
    samples: u32,
    mean_ns: u128,
    min_ns: u128,
    max_ns: u128,
}

fn time<F: FnMut() -> u32>(name: &'static str, samples: u32, mut f: F) -> Sample {
    // One warm-up run outside the timed window.
    let sink = f();
    std::hint::black_box(sink);
    let mut total = 0u128;
    let mut min = u128::MAX;
    let mut max = 0u128;
    for _ in 0..samples {
        let start = Instant::now();
        std::hint::black_box(f());
        let ns = start.elapsed().as_nanos();
        total += ns;
        min = min.min(ns);
        max = max.max(ns);
    }
    let mean_ns = total / u128::from(samples);
    println!(
        "{name:<32} mean {:>12.3} ms ({samples} samples)",
        mean_ns as f64 / 1e6
    );
    Sample {
        name,
        samples,
        mean_ns,
        min_ns: min,
        max_ns: max,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_synthesis.json".to_string());
    let mut rows = Vec::new();

    rows.push(time("peres_cold_unidirectional", 10, || {
        let mut e = SynthesisEngine::unit_cost();
        e.synthesize(&known::peres_perm(), 5).expect("cost 4").cost
    }));
    rows.push(time("peres_cold_bidirectional", 10, || {
        let mut e = SynthesisEngine::unit_cost();
        e.synthesize_bidirectional(&known::peres_perm(), 5)
            .expect("cost 4")
            .cost
    }));
    rows.push(time("toffoli_cold_unidirectional", 10, || {
        let mut e = SynthesisEngine::unit_cost();
        e.synthesize(&known::toffoli_perm(), 6)
            .expect("cost 5")
            .cost
    }));
    rows.push(time("toffoli_cold_bidirectional", 10, || {
        let mut e = SynthesisEngine::unit_cost();
        e.synthesize_bidirectional(&known::toffoli_perm(), 6)
            .expect("cost 5")
            .cost
    }));
    rows.push(time("fredkin_cold_unidirectional", 2, || {
        let mut e = SynthesisEngine::unit_cost();
        e.synthesize(&known::fredkin_perm(), 7)
            .expect("cost 7")
            .cost
    }));
    rows.push(time("fredkin_cold_bidirectional", 10, || {
        let mut e = SynthesisEngine::unit_cost();
        e.synthesize_bidirectional(&known::fredkin_perm(), 7)
            .expect("cost 7")
            .cost
    }));
    let mut warm = SynthesisEngine::unit_cost();
    warm.expand_to_cost(5);
    rows.push(time("toffoli_warm_unidirectional", 100, || {
        warm.synthesize(&known::toffoli_perm(), 6)
            .expect("cost 5")
            .cost
    }));
    rows.push(time("census_cb5", 5, || {
        let mut e = SynthesisEngine::unit_cost();
        e.expand_to_cost(5);
        e.g_counts().len() as u32
    }));

    let speedup = |uni: &str, bidi: &str| {
        let find = |n: &str| rows.iter().find(|r| r.name == n).map(|r| r.mean_ns);
        if let (Some(u), Some(b)) = (find(uni), find(bidi)) {
            if b > 0 {
                println!("{uni} / {bidi}: {:.2}x", u as f64 / b as f64);
            }
        }
    };
    println!();
    speedup("peres_cold_unidirectional", "peres_cold_bidirectional");
    speedup("toffoli_cold_unidirectional", "toffoli_cold_bidirectional");
    speedup("fredkin_cold_unidirectional", "fredkin_cold_bidirectional");

    let generated = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"generated_unix\": {generated},\n"));
    json.push_str("  \"benches\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"samples\": {}, \"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}{}\n",
            row.name,
            row.samples,
            row.mean_ns,
            row.min_ns,
            row.max_ns,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write perf snapshot");
    println!("\nwrote {out_path}");
}
