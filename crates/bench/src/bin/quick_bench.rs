//! Quick perf snapshot for CI: times the headline synthesis paths and
//! writes `BENCH_synthesis.json` so successive PRs have a comparable
//! trajectory. Much faster than the full criterion suite — a handful of
//! samples per case, no statistics beyond mean/min/max.
//!
//! The headline entries (`census_cb5`, `fredkin_cold_unidirectional`, …)
//! run at the default degree of parallelism (`MVQ_THREADS` or the
//! machine's available parallelism); explicit `*_serial` entries pin one
//! thread so the parallel speedup is measurable from the artifact alone.
//! Every row records the thread count it ran with, and the snapshot
//! records the runner's available parallelism — numbers from a 1-core
//! runner and a 16-core runner are distinguishable after the fact.
//!
//! Usage: `cargo run --release -p mvq_bench --bin quick_bench [-- out.json]`

use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use mvq_core::{known, resolve_threads, CostModel, SynthesisEngine, WideSynthesisEngine};
use mvq_logic::GateLibrary;

struct Sample {
    name: &'static str,
    threads: usize,
    samples: u32,
    mean_ns: u128,
    min_ns: u128,
    max_ns: u128,
}

/// Times `f` for a fixed number of samples (after one untimed warm-up).
fn time<F: FnMut() -> u32>(name: &'static str, threads: usize, samples: u32, f: F) -> Sample {
    time_boxed(name, threads, samples, samples, Duration::MAX, f)
}

/// Times `f` for at least `min_samples` and then keeps sampling until
/// `budget` wall-clock is spent or `max_samples` is reached — so slow
/// cases get as many samples as a time box affords instead of a noisy
/// fixed pair.
fn time_boxed<F: FnMut() -> u32>(
    name: &'static str,
    threads: usize,
    min_samples: u32,
    max_samples: u32,
    budget: Duration,
    mut f: F,
) -> Sample {
    // One warm-up run outside the timed window.
    let sink = f();
    std::hint::black_box(sink);
    let mut total = 0u128;
    let mut min = u128::MAX;
    let mut max = 0u128;
    let mut samples = 0u32;
    let box_start = Instant::now();
    while samples < min_samples || (samples < max_samples && box_start.elapsed() < budget) {
        let start = Instant::now();
        std::hint::black_box(f());
        let ns = start.elapsed().as_nanos();
        total += ns;
        min = min.min(ns);
        max = max.max(ns);
        samples += 1;
    }
    let mean_ns = total / u128::from(samples);
    println!(
        "{name:<36} mean {:>12.3} ms ({samples} samples, {threads} thread{})",
        mean_ns as f64 / 1e6,
        if threads == 1 { "" } else { "s" }
    );
    Sample {
        name,
        threads,
        samples,
        mean_ns,
        min_ns: min,
        max_ns: max,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_synthesis.json".to_string());
    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    let auto = resolve_threads(None);
    println!("available parallelism: {available}; default threads: {auto}\n");
    let mut rows = Vec::new();

    // Headline entries at the default degree of parallelism.
    rows.push(time("peres_cold_unidirectional", auto, 10, || {
        let mut e = SynthesisEngine::unit_cost();
        e.synthesize(&known::peres_perm(), 5).expect("cost 4").cost
    }));
    rows.push(time("peres_cold_bidirectional", auto, 10, || {
        let mut e = SynthesisEngine::unit_cost();
        e.synthesize_bidirectional(&known::peres_perm(), 5)
            .expect("cost 4")
            .cost
    }));
    rows.push(time("toffoli_cold_unidirectional", auto, 10, || {
        let mut e = SynthesisEngine::unit_cost();
        e.synthesize(&known::toffoli_perm(), 6)
            .expect("cost 5")
            .cost
    }));
    rows.push(time("toffoli_cold_bidirectional", auto, 10, || {
        let mut e = SynthesisEngine::unit_cost();
        e.synthesize_bidirectional(&known::toffoli_perm(), 6)
            .expect("cost 5")
            .cost
    }));
    rows.push(time_boxed(
        "fredkin_cold_unidirectional",
        auto,
        2,
        10,
        Duration::from_secs(15),
        || {
            let mut e = SynthesisEngine::unit_cost();
            e.synthesize(&known::fredkin_perm(), 7)
                .expect("cost 7")
                .cost
        },
    ));
    rows.push(time("fredkin_cold_bidirectional", auto, 10, || {
        let mut e = SynthesisEngine::unit_cost();
        e.synthesize_bidirectional(&known::fredkin_perm(), 7)
            .expect("cost 7")
            .cost
    }));
    let mut warm = SynthesisEngine::unit_cost();
    warm.expand_to_cost(5);
    // Warm lookups are ~1 µs; a large sample count keeps the mean from
    // being swamped by scheduler noise on loaded runners.
    rows.push(time("toffoli_warm_unidirectional", auto, 2000, || {
        warm.synthesize(&known::toffoli_perm(), 6)
            .expect("cost 5")
            .cost
    }));
    rows.push(time("census_cb5", auto, 5, || {
        let mut e = SynthesisEngine::unit_cost();
        e.expand_to_cost(5);
        e.g_counts().len() as u32
    }));

    // Probed twins: the same cold census and warm lookup with a live
    // `RegistryProbe` feeding an `mvq_obs::Registry`, exactly as `mvq
    // serve` installs it. The probe contract is "a single branch when
    // unset, atomics only when set"; the gate below holds the probed
    // rows to ≤2% over their unprobed counterparts.
    let obs_registry = mvq_obs::Registry::new();
    let probe = mvq_core::ProbeHandle::new(std::sync::Arc::new(mvq_obs::RegistryProbe::new(
        obs_registry.probe_metrics(),
    )));
    let census_probe = probe.clone();
    rows.push(time("census_cb5_probed", auto, 5, move || {
        let mut e = SynthesisEngine::unit_cost();
        e.set_probe(census_probe.clone());
        e.expand_to_cost(5);
        e.g_counts().len() as u32
    }));
    let mut warm_probed = SynthesisEngine::unit_cost();
    warm_probed.set_probe(probe.clone());
    warm_probed.expand_to_cost(5);
    rows.push(time("toffoli_warm_probed", auto, 2000, move || {
        warm_probed
            .synthesize(&known::toffoli_perm(), 6)
            .expect("cost 5")
            .cost
    }));

    // Snapshot-warm rows: build the level-cache snapshot once, then each
    // sample pays load + query only — the cold→warm win of persistent
    // level-cache serialization, measurable even on a 1-core runner
    // (compare against `census_cb5` / `toffoli_cold_unidirectional`).
    let snap_path =
        std::env::temp_dir().join(format!("mvq_quick_bench_{}.snap", std::process::id()));
    {
        let mut e = SynthesisEngine::unit_cost();
        e.expand_to_cost(5);
        e.save_snapshot(&snap_path).expect("write snapshot");
    }
    rows.push(time("census_snapshot_warm", auto, 10, || {
        let e = SynthesisEngine::load_snapshot_with_threads(&snap_path, auto).expect("load");
        e.g_counts().len() as u32
    }));
    rows.push(time("toffoli_snapshot_warm", auto, 10, || {
        let mut e = SynthesisEngine::load_snapshot_with_threads(&snap_path, auto).expect("load");
        e.synthesize(&known::toffoli_perm(), 6)
            .expect("cost 5")
            .cost
    }));
    std::fs::remove_file(&snap_path).ok();

    // 4-wire rows (wide width: 256-pattern words, u128 traces). The
    // 3-wire rows above double as the before/after guard for the
    // widening refactor: the narrow width keeps the [u8; 64]/u64 hot
    // representations (only the word length field widened to u16), so
    // `census_cb5` must track its committed baseline.
    rows.push(time("census_w4_cb3", auto, 5, || {
        let mut e = WideSynthesisEngine::new(GateLibrary::standard(4), CostModel::unit());
        e.expand_to_cost(3);
        e.g_counts().len() as u32
    }));
    rows.push(time("cnot_w4_cold_unidirectional", auto, 10, || {
        let target = known::parse_target_on("(9,10)(11,12)(13,14)(15,16)", 16).expect("valid");
        let mut e = WideSynthesisEngine::new(GateLibrary::standard(4), CostModel::unit());
        e.synthesize(&target, 2).expect("cost 1").cost
    }));
    let w4_snap_path =
        std::env::temp_dir().join(format!("mvq_quick_bench_w4_{}.snap", std::process::id()));
    {
        let mut e = WideSynthesisEngine::new(GateLibrary::standard(4), CostModel::unit());
        e.expand_to_cost(3);
        e.save_snapshot(&w4_snap_path).expect("write w4 snapshot");
    }
    rows.push(time("census_w4_snapshot_warm", auto, 5, || {
        let e = WideSynthesisEngine::load_snapshot_with_threads(&w4_snap_path, auto).expect("load");
        e.g_counts().len() as u32
    }));
    std::fs::remove_file(&w4_snap_path).ok();

    // Pinned-serial counterparts: the parallel-vs-serial comparison for
    // the expansion-dominated workloads.
    rows.push(time("census_cb5_serial", 1, 5, || {
        let mut e = SynthesisEngine::unit_cost_with_threads(1);
        e.expand_to_cost(5);
        e.g_counts().len() as u32
    }));
    rows.push(time_boxed(
        "fredkin_cold_unidirectional_serial",
        1,
        2,
        10,
        Duration::from_secs(15),
        || {
            let mut e = SynthesisEngine::unit_cost_with_threads(1);
            e.synthesize(&known::fredkin_perm(), 7)
                .expect("cost 7")
                .cost
        },
    ));

    // Full-workspace static analysis: the CI invariants job runs
    // `mvq-lint --workspace` on every push, so its wall time sits on the
    // pipeline's critical path. The untimed warm-up pays the cold parse;
    // timed samples then exercise the content-hash cache plus the
    // call-graph build and the four interprocedural passes, which re-run
    // in full every time. Gated at ≤ 5 s below.
    let repo_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("bench crate sits two levels below the workspace root");
    rows.push(time("lint_workspace", auto, 3, || {
        let report = mvq_lint::check_workspace(repo_root).expect("lint walk");
        u32::try_from(report.files_scanned).unwrap_or(u32::MAX)
    }));

    let find = |n: &str| rows.iter().find(|r| r.name == n).map(|r| r.mean_ns);
    let speedup = |slow: &str, fast: &str| {
        if let (Some(s), Some(f)) = (find(slow), find(fast)) {
            if f > 0 {
                println!("{slow} / {fast}: {:.2}x", s as f64 / f as f64);
            }
        }
    };
    println!();
    speedup("peres_cold_unidirectional", "peres_cold_bidirectional");
    speedup("toffoli_cold_unidirectional", "toffoli_cold_bidirectional");
    speedup("fredkin_cold_unidirectional", "fredkin_cold_bidirectional");
    speedup("census_cb5_serial", "census_cb5");
    speedup(
        "fredkin_cold_unidirectional_serial",
        "fredkin_cold_unidirectional",
    );
    speedup("census_cb5", "census_snapshot_warm");
    speedup("toffoli_cold_unidirectional", "toffoli_snapshot_warm");
    speedup("census_w4_cb3", "census_w4_snapshot_warm");

    // Probe-overhead gate: each probed row must stay within 2% of its
    // unprobed twin, by best-case (min) sample — the least
    // noise-contaminated number either row produced. The absolute
    // epsilon covers workloads so fast (the ~1 µs warm lookup) that 2%
    // is below timer/scheduler resolution on a busy 1-core runner.
    const PROBE_EPSILON_NS: u128 = 20_000;
    let mut probe_gate_failures: Vec<String> = Vec::new();
    let mut probe_gate = |base: &str, probed: &str| {
        let (Some(b), Some(p)) = (
            rows.iter().find(|r| r.name == base),
            rows.iter().find(|r| r.name == probed),
        ) else {
            probe_gate_failures.push(format!("probe gate rows missing: {base} / {probed}"));
            return;
        };
        let limit = b.min_ns + b.min_ns / 50 + PROBE_EPSILON_NS;
        let overhead = 100.0 * (p.min_ns as f64 / b.min_ns.max(1) as f64 - 1.0);
        println!(
            "{probed}: min {} ns vs {base} min {} ns ({overhead:+.2}%, limit {limit} ns)",
            p.min_ns, b.min_ns
        );
        if p.min_ns > limit {
            probe_gate_failures.push(format!(
                "{probed} min {} ns exceeds {base} min {} ns + 2% + {PROBE_EPSILON_NS} ns",
                p.min_ns, b.min_ns
            ));
        }
    };
    probe_gate("census_cb5", "census_cb5_probed");
    probe_gate("toffoli_warm_unidirectional", "toffoli_warm_probed");

    // Lint wall-time gate: the workspace-wide static analysis must stay
    // cheap enough to run on every push.
    const LINT_BUDGET_NS: u128 = 5_000_000_000;
    let mut lint_gate_failure: Option<String> = None;
    match rows.iter().find(|r| r.name == "lint_workspace") {
        Some(lint) if lint.mean_ns > LINT_BUDGET_NS => {
            lint_gate_failure = Some(format!(
                "lint_workspace mean {} ns exceeds the {LINT_BUDGET_NS} ns budget",
                lint.mean_ns
            ));
        }
        Some(_) => {}
        None => lint_gate_failure = Some("lint_workspace row missing".to_string()),
    }

    let generated = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"generated_unix\": {generated},\n"));
    json.push_str(&format!("  \"available_parallelism\": {available},\n"));
    json.push_str(&format!("  \"default_threads\": {auto},\n"));
    json.push_str("  \"benches\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"threads\": {}, \"samples\": {}, \"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}{}\n",
            row.name,
            row.threads,
            row.samples,
            row.mean_ns,
            row.min_ns,
            row.max_ns,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write perf snapshot");
    println!("\nwrote {out_path}");
    assert!(
        probe_gate_failures.is_empty(),
        "probe overhead gate: {}",
        probe_gate_failures.join("; ")
    );
    assert!(
        lint_gate_failure.is_none(),
        "lint wall-time gate: {}",
        lint_gate_failure.unwrap_or_default()
    );
}
