//! E5 / E6 / E7: regenerates Figures 4–9 (the Peres and Toffoli
//! syntheses) and benchmarks the end-to-end MCE runtimes — the paper's
//! "9 CPU seconds for Peres, 98 seconds for Toffoli" experiment. The
//! *shape* to reproduce is Toffoli ≫ Peres (cost 5 vs cost 4 levels).

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};
use mvq_core::{known, SynthesisEngine};

fn print_artifacts_once() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let mut engine = SynthesisEngine::unit_cost();

        println!("\n=== Figures 4 & 8: Peres implementations (reproduced) ===");
        let peres = engine.synthesize_all(&known::peres_perm(), 5);
        println!("cost {}, {} implementations:", peres[0].cost, peres.len());
        for syn in &peres {
            println!("  {}", syn.circuit);
            assert!(syn.circuit.verify_against_binary_perm(&known::peres_perm()));
        }

        println!("\n=== Figure 9: Toffoli implementations (reproduced) ===");
        let toffoli = engine.synthesize_all(&known::toffoli_perm(), 6);
        println!(
            "cost {}, {} implementations:",
            toffoli[0].cost,
            toffoli.len()
        );
        for syn in &toffoli {
            println!("  {}", syn.circuit);
            assert!(syn
                .circuit
                .verify_against_binary_perm(&known::toffoli_perm()));
        }

        println!("\n=== Figures 5–7: g2, g3, g4 (reproduced) ===");
        for (name, p) in [
            ("g2", known::g2_perm()),
            ("g3", known::g3_perm()),
            ("g4", known::g4_perm()),
        ] {
            let syn = engine.synthesize(&p, 5).expect("cost 4");
            println!("  {name} = {p}: cost {} via {}", syn.cost, syn.circuit);
        }
        println!();
    });
}

fn bench_synthesis(c: &mut Criterion) {
    print_artifacts_once();
    let mut group = c.benchmark_group("synthesis_e2e");
    group.sample_size(10);

    // Cold synthesis: a fresh engine each iteration — the honest analogue
    // of the paper's timing (which included building the levels).
    group.bench_function("peres_cold", |b| {
        b.iter(|| {
            let mut engine = SynthesisEngine::unit_cost();
            let syn = engine.synthesize(&known::peres_perm(), 5).expect("cost 4");
            assert_eq!(syn.cost, 4);
            syn.cost
        })
    });

    group.bench_function("toffoli_cold", |b| {
        b.iter(|| {
            let mut engine = SynthesisEngine::unit_cost();
            let syn = engine
                .synthesize(&known::toffoli_perm(), 6)
                .expect("cost 5");
            assert_eq!(syn.cost, 5);
            syn.cost
        })
    });

    // Bidirectional (meet-in-the-middle) cold syntheses: the forward
    // frontier only reaches about half the target cost, so the dominant
    // last level is never built.
    group.bench_function("peres_cold_bidi", |b| {
        b.iter(|| {
            let mut engine = SynthesisEngine::unit_cost();
            let syn = engine
                .synthesize_bidirectional(&known::peres_perm(), 5)
                .expect("cost 4");
            assert_eq!(syn.cost, 4);
            syn.cost
        })
    });

    group.bench_function("toffoli_cold_bidi", |b| {
        b.iter(|| {
            let mut engine = SynthesisEngine::unit_cost();
            let syn = engine
                .synthesize_bidirectional(&known::toffoli_perm(), 6)
                .expect("cost 5");
            assert_eq!(syn.cost, 5);
            syn.cost
        })
    });

    // Fredkin is the deep target (cost 7 under the binary-control
    // constraint): unidirectionally it needs the ~3M-state cost-7 level
    // set; bidirectionally both frontiers stop at cost 4.
    group.bench_function("fredkin_cold_bidi", |b| {
        b.iter(|| {
            let mut engine = SynthesisEngine::unit_cost();
            let syn = engine
                .synthesize_bidirectional(&known::fredkin_perm(), 7)
                .expect("cost 7");
            assert_eq!(syn.cost, 7);
            syn.cost
        })
    });

    // Warm synthesis: levels cached, only the lookup + reconstruction.
    let mut warm = SynthesisEngine::unit_cost();
    warm.expand_to_cost(5);
    group.bench_function("toffoli_warm", |b| {
        b.iter(|| {
            let syn = warm.synthesize(&known::toffoli_perm(), 6).expect("cost 5");
            assert_eq!(syn.cost, 5);
            syn.cost
        })
    });

    group.bench_function("g4_level_enumeration", |b| {
        b.iter(|| {
            let mut engine = SynthesisEngine::unit_cost();
            engine.reversible_circuits_at_cost(4).len()
        })
    });

    // Cold level expansion (the census workload), serial vs the default
    // degree of parallelism — the sharded rendezvous expansion must win
    // on multicore hardware and stay bit-identical everywhere.
    group.bench_function("census_cb5_serial", |b| {
        b.iter(|| {
            let mut engine = SynthesisEngine::unit_cost_with_threads(1);
            engine.expand_to_cost(5);
            engine.a_size()
        })
    });

    group.bench_function("census_cb5_parallel", |b| {
        let threads = mvq_core::resolve_threads(None);
        b.iter(|| {
            let mut engine = SynthesisEngine::unit_cost_with_threads(threads);
            engine.expand_to_cost(5);
            engine.a_size()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_synthesis);
criterion_main!(benches);
