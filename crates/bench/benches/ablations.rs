//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Domain reduction** — the paper's 38-pattern domain vs the naive
//!    64-pattern domain (same search, bigger words and tables).
//! 2. **Cost models** — unit costs vs weighted NMR-style costs (deeper,
//!    sparser level structure).
//! 3. **Coset factorization (Theorem 2)** — synthesizing a target that
//!    needs a NOT layer costs the same as its stabilizer part; without
//!    the factorization the search would need NOT gates in the library
//!    (an 8× larger reachable space).
//! 4. **Frontier dedup strategy** — hash-set dedup vs sort-and-dedup on
//!    the raw level expansion.

use std::collections::HashSet;
use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};
use mvq_core::{known, CostModel, SynthesisEngine};
use mvq_logic::{GateLibrary, PatternDomain};
use mvq_perm::Perm;

fn print_artifacts_once() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        println!("\n=== Ablation summary ===");
        // Domain reduction.
        let mut reduced = SynthesisEngine::unit_cost();
        reduced.expand_to_cost(3);
        let mut full = SynthesisEngine::new(
            GateLibrary::with_domain(PatternDomain::full(3)),
            CostModel::unit(),
        );
        full.expand_to_cost(3);
        println!(
            "domain reduction: |A[3]| identical ({} vs {}), word width 38 vs 64",
            reduced.a_size(),
            full.a_size()
        );
        assert_eq!(reduced.g_counts(), full.g_counts());

        // Cost models.
        let mut weighted =
            SynthesisEngine::new(GateLibrary::standard(3), CostModel::weighted(2, 2, 1));
        let syn = weighted
            .synthesize(&known::peres_perm(), 8)
            .expect("reachable");
        println!(
            "weighted NMR-style costs (V=2, F=1): Peres cost {} (unit model: 4)",
            syn.cost
        );

        // Coset factorization.
        let not_a = Perm::from_images(&[5, 6, 7, 8, 1, 2, 3, 4]).expect("valid");
        let mut engine = SynthesisEngine::unit_cost();
        let plain = engine
            .synthesize(&known::toffoli_perm(), 6)
            .expect("cost 5");
        let lifted = engine
            .synthesize(&(not_a * known::toffoli_perm()), 6)
            .expect("cost 5");
        println!(
            "coset factorization: Toffoli cost {} == NOT·Toffoli cost {} (NOT layer free)",
            plain.cost, lifted.cost
        );
        println!();
    });
}

fn bench_domain_reduction(c: &mut Criterion) {
    print_artifacts_once();
    let mut group = c.benchmark_group("ablation_domain_reduction");
    group.sample_size(10);

    group.bench_function("reduced_38_to_cost_3", |b| {
        b.iter(|| {
            let mut e = SynthesisEngine::unit_cost();
            e.expand_to_cost(3);
            e.a_size()
        })
    });

    group.bench_function("full_64_to_cost_3", |b| {
        b.iter(|| {
            let mut e = SynthesisEngine::new(
                GateLibrary::with_domain(PatternDomain::full(3)),
                CostModel::unit(),
            );
            e.expand_to_cost(3);
            e.a_size()
        })
    });

    group.finish();
}

fn bench_cost_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_cost_models");
    group.sample_size(10);

    group.bench_function("unit_peres", |b| {
        b.iter(|| {
            let mut e = SynthesisEngine::unit_cost();
            e.synthesize(&known::peres_perm(), 5).expect("cost 4").cost
        })
    });

    group.bench_function("weighted_peres", |b| {
        b.iter(|| {
            let mut e =
                SynthesisEngine::new(GateLibrary::standard(3), CostModel::weighted(2, 2, 1));
            e.synthesize(&known::peres_perm(), 8).expect("cost 7").cost
        })
    });

    group.finish();
}

fn bench_coset_factorization(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_coset");
    group.sample_size(10);

    // With Theorem 2 (implemented): NOT-layered targets reuse the same
    // NOT-free level structure.
    group.bench_function("with_theorem2_not_layered_toffoli", |b| {
        let not_a = Perm::from_images(&[5, 6, 7, 8, 1, 2, 3, 4]).expect("valid");
        let target = not_a * known::toffoli_perm();
        b.iter(|| {
            let mut e = SynthesisEngine::unit_cost();
            e.synthesize(&target, 6).expect("cost 5").cost
        })
    });

    group.finish();
}

fn bench_dedup_strategy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dedup");

    // Raw level expansion: all products of ≤3 library gates, deduped two
    // ways. (The engine uses the hash-set strategy.)
    let lib = GateLibrary::standard(3);
    let gate_perms: Vec<Vec<u8>> = lib
        .gates()
        .iter()
        .map(|g| g.perm().as_images().to_vec())
        .collect();
    let expand = |level: &[Vec<u8>]| -> Vec<Vec<u8>> {
        let mut out = Vec::with_capacity(level.len() * gate_perms.len());
        for word in level {
            for g in &gate_perms {
                out.push(word.iter().map(|&m| g[m as usize]).collect());
            }
        }
        out
    };
    let identity: Vec<u8> = (0..38).collect();
    let level1 = expand(std::slice::from_ref(&identity));
    let level2_raw = expand(&level1);

    group.bench_function("hashset_dedup", |b| {
        b.iter(|| {
            let set: HashSet<Vec<u8>> = level2_raw.iter().cloned().collect();
            set.len()
        })
    });

    group.bench_function("sort_dedup", |b| {
        b.iter(|| {
            let mut v = level2_raw.clone();
            v.sort_unstable();
            v.dedup();
            v.len()
        })
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_domain_reduction,
    bench_cost_models,
    bench_coset_factorization,
    bench_dedup_strategy
);
criterion_main!(benches);
