//! E1 / E2: regenerates **Table 1** (the 16-row Ctrl-V truth table and its
//! permutation `(3,7,4,8)`) and the Section 3 permutation formulae, then
//! benchmarks their construction.

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};
use mvq_logic::{Gate, GateLibrary, PatternDomain, TruthTable};

fn print_artifacts_once() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        println!("\n=== Table 1 (reproduced) ===");
        let table = TruthTable::new(Gate::v(1, 0), PatternDomain::table_ordered(2));
        println!("{table}");
        assert_eq!(table.perm().to_string(), "(3,7,4,8)");

        println!("\n=== Section 3 permutation formulae (reproduced) ===");
        let domain = PatternDomain::permutable(3);
        println!("VBA  = {}", Gate::v(1, 0).perm(&domain));
        println!("V+AB = {}", Gate::v_dagger(0, 1).perm(&domain));
        println!("FeCA = {}", Gate::feynman(2, 0).perm(&domain));
        println!();
    });
}

fn bench_table1(c: &mut Criterion) {
    print_artifacts_once();
    let mut group = c.benchmark_group("table1");

    group.bench_function("truth_table_ctrl_v_2q", |b| {
        b.iter(|| TruthTable::new(Gate::v(1, 0), PatternDomain::table_ordered(2)))
    });

    group.bench_function("domain_permutable_3q", |b| {
        b.iter(|| PatternDomain::permutable(3))
    });

    let domain = PatternDomain::permutable(3);
    group.bench_function("gate_perm_vba_38", |b| {
        b.iter(|| Gate::v(1, 0).perm(&domain))
    });

    group.bench_function("library_standard_3q", |b| {
        b.iter(|| GateLibrary::standard(3))
    });

    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
