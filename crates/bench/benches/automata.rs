//! E9: regenerates the Section 4 probabilistic-machine experiment — the
//! controlled quantum RNG's exact-vs-empirical statistics — and benchmarks
//! spec synthesis, exact distribution computation, and sampling
//! throughput.

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};
use mvq_automata::{ControlledRng, QuantumHmm};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn print_artifacts_once() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        println!("\n=== Section 4 (reproduced): controlled quantum RNG ===");
        let generator = ControlledRng::synthesize().expect("realizable");
        println!(
            "synthesized: {} (cost {})",
            generator.block().circuit(),
            generator.quantum_cost()
        );
        let d = generator.block().output_distribution(0b10);
        println!(
            "exact:     P(0) = {}, P(1) = {}",
            d.prob_of(0b10),
            d.prob_of(0b11)
        );
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let ones = generator
            .generate(&mut rng, n, true)
            .iter()
            .filter(|&&b| b)
            .count();
        println!(
            "empirical: P(1) ≈ {:.4} over {n} samples",
            ones as f64 / n as f64
        );

        let mut hmm = QuantumHmm::new();
        println!(
            "HMM transition row: P(0→0) = {}, P(0→1) = {}",
            hmm.transition_prob(0, 0),
            hmm.transition_prob(0, 1)
        );
        let obs = hmm.emit(&mut rng, n);
        let ones = obs.iter().filter(|&&b| b).count();
        println!("HMM emissions: P(1) ≈ {:.4}", ones as f64 / n as f64);
        println!();
    });
}

fn bench_automata(c: &mut Criterion) {
    print_artifacts_once();
    let mut group = c.benchmark_group("automata");

    group.bench_function("rng_spec_synthesis", |b| {
        b.iter(|| {
            ControlledRng::synthesize()
                .expect("realizable")
                .quantum_cost()
        })
    });

    let generator = ControlledRng::synthesize().expect("realizable");
    group.bench_function("exact_distribution", |b| {
        b.iter(|| generator.block().output_distribution(0b10))
    });

    let mut rng = StdRng::seed_from_u64(42);
    group.bench_function("sample_1000_bits", |b| {
        b.iter(|| generator.generate(&mut rng, 1000, true).len())
    });

    let mut hmm = QuantumHmm::new();
    group.bench_function("hmm_1000_steps", |b| {
        b.iter(|| hmm.emit(&mut rng, 1000).len())
    });

    group.finish();
}

criterion_group!(benches, bench_automata);
criterion_main!(benches);
