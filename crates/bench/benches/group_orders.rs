//! E8: regenerates the group-order facts of Section 3/5 — |S₈| = 40320,
//! |G| = 5040, the Theorem 2 coset count, and the universality closure of
//! the 24 cost-4 gates — and benchmarks the group machinery that replaces
//! GAP.

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};
use mvq_core::{known, universal};
use mvq_perm::{Group, Perm, StabilizerChain};

fn print_artifacts_once() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        println!("\n=== Group orders (reproduced) ===");
        let s8 = Group::symmetric(8);
        println!("|S8|                       = {}", s8.order());
        let g = universal::feynman_peres_group();
        println!("|G| = <Feynman, Peres>     = {}", g.order());
        println!("index [S8 : G]             = {}", s8.order() / g.order());
        assert_eq!(s8.order(), 40320);
        assert_eq!(g.order(), 5040);
        println!(
            "Peres universal w/ NOT+F   = {}",
            universal::is_universal_with_not_and_feynman(&known::peres_perm())
        );
        println!();
    });
}

fn bench_groups(c: &mut Criterion) {
    print_artifacts_once();
    let mut group = c.benchmark_group("group_orders");
    group.sample_size(10);

    group.bench_function("s8_closure_40320", |b| {
        b.iter(|| Group::symmetric(8).order())
    });

    group.bench_function("s8_schreier_sims", |b| {
        let gens = vec![
            "(1,2)".parse::<Perm>().expect("valid").extended(8),
            "(1,2,3,4,5,6,7,8)".parse::<Perm>().expect("valid"),
        ];
        b.iter(|| StabilizerChain::new(8, &gens).order())
    });

    group.bench_function("feynman_peres_closure_5040", |b| {
        b.iter(|| universal::feynman_peres_group().order())
    });

    group.bench_function("universality_check_per_gate", |b| {
        b.iter(|| universal::is_universal_with_not_and_feynman(&known::peres_perm()))
    });

    group.bench_function("not_group_closure", |b| {
        b.iter(|| Group::not_group(3).order())
    });

    group.finish();
}

criterion_group!(benches, bench_groups);
criterion_main!(benches);
