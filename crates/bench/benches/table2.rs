//! E3: regenerates **Table 2** — `|G[k]|` and `|S8[k]|` for k = 0..=7 —
//! then benchmarks the FMCF census at increasing cost bounds (the paper's
//! search-effort series).

use std::sync::Once;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvq_core::{Census, EXPECTED_TABLE_2, PAPER_TABLE_2};

fn print_artifacts_once() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        // The full paper bound (cb = 7) is printed once; criterion then
        // measures the smaller bounds repeatedly.
        let cb: u32 = std::env::var("MVQ_CENSUS_CB")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(7);
        println!("\n=== Table 2 (reproduced, cb = {cb}) ===");
        let census = Census::compute(cb);
        println!("{census}");
        println!("paper (printed): {PAPER_TABLE_2:?}");
        println!("verified:        {EXPECTED_TABLE_2:?}");
        for (k, mine, paper) in census.diff_vs_paper() {
            println!(
                "  k = {k}: measured {mine} vs paper {paper} (paper slip; see EXPERIMENTS.md)"
            );
        }
        assert!(census.matches_expected());
        println!();
    });
}

fn bench_census(c: &mut Criterion) {
    print_artifacts_once();
    let mut group = c.benchmark_group("table2_census");
    group.sample_size(10);
    for cb in [2u32, 3, 4, 5] {
        group.bench_with_input(BenchmarkId::new("fmcf_to_cost", cb), &cb, |b, &cb| {
            b.iter(|| {
                let census = Census::compute(cb);
                assert_eq!(
                    census.rows().last().expect("rows").g_count,
                    EXPECTED_TABLE_2[cb as usize]
                );
                census.a_size()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_census);
criterion_main!(benches);
