//! Deterministic failpoints for chaos testing.
//!
//! A failpoint is a named site in production code — `fault::point!("snapshot.rename")`
//! — that normally compiles to nothing. With the `fault-injection`
//! feature enabled, sites consult a process-global registry armed by an
//! explicit plan string:
//!
//! ```text
//! snapshot.rename=err@2;pool.task=panic;expand.level=delay(25)@4
//! ```
//!
//! Each clause is `site=action[@n]`. The action fires exactly once, on
//! the `n`-th hit of that site (1-based, default 1), and never again
//! until the plan is re-armed. Hit counting is the only state — there
//! is no ambient randomness and no clock, so a given plan against a
//! given workload is fully deterministic.
//!
//! Actions:
//! - `err` — the site's error arm runs (`point!(site, expr)` evaluates
//!   `expr`, typically an early `return Err(..)`); bare `point!(site)`
//!   ignores it.
//! - `panic` — the site panics with a recognizable message.
//! - `delay(ms)` — the site sleeps for `ms` milliseconds.
//!
//! Without the `fault-injection` feature, `point!` expands to an empty
//! block and the arming API stays callable but inert — except
//! [`arm_from_env`], which reports an error if `MVQ_FAULTS` is set in a
//! build that cannot honor it, so an operator never silently runs an
//! unarmed chaos drill.

#![forbid(unsafe_code)]

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Run the site's error arm (or nothing, for bare sites).
    Err,
    /// Panic at the site.
    Panic,
    /// Sleep for this many milliseconds at the site.
    Delay(u64),
}

/// A fault plan string failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError(pub String);

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid fault plan: {}", self.0)
    }
}

impl std::error::Error for PlanError {}

/// Environment variable consulted by [`arm_from_env`].
pub const ENV_VAR: &str = "MVQ_FAULTS";

#[cfg(feature = "fault-injection")]
mod registry {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    use super::{Action, PlanError};

    struct Site {
        action: Action,
        /// 1-based hit ordinal at which the action fires.
        at: u64,
        hits: u64,
    }

    fn sites() -> &'static Mutex<HashMap<String, Site>> {
        static SITES: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();
        SITES.get_or_init(|| Mutex::new(HashMap::new()))
    }

    fn parse_clause(clause: &str) -> Result<(String, Site), PlanError> {
        let (site, spec) = clause
            .split_once('=')
            .ok_or_else(|| PlanError(format!("clause `{clause}` is missing `=`")))?;
        let site = site.trim();
        if site.is_empty() {
            return Err(PlanError(format!(
                "clause `{clause}` has an empty site name"
            )));
        }
        let spec = spec.trim();
        let (action_text, at) = match spec.split_once('@') {
            Some((action, ordinal)) => {
                let at: u64 = ordinal
                    .trim()
                    .parse()
                    .map_err(|_| PlanError(format!("bad hit ordinal in `{clause}`")))?;
                if at == 0 {
                    return Err(PlanError(format!(
                        "hit ordinal in `{clause}` is 1-based; `@0` never fires"
                    )));
                }
                (action.trim(), at)
            }
            None => (spec, 1),
        };
        let action = if action_text == "err" {
            Action::Err
        } else if action_text == "panic" {
            Action::Panic
        } else if let Some(ms) = action_text
            .strip_prefix("delay(")
            .and_then(|rest| rest.strip_suffix(')'))
        {
            let ms: u64 = ms
                .trim()
                .parse()
                .map_err(|_| PlanError(format!("bad delay milliseconds in `{clause}`")))?;
            Action::Delay(ms)
        } else {
            return Err(PlanError(format!(
                "unknown action `{action_text}` in `{clause}` (want err | panic | delay(ms))"
            )));
        };
        Ok((
            site.to_owned(),
            Site {
                action,
                at,
                hits: 0,
            },
        ))
    }

    /// Parse and install `plan`, replacing any previously armed plan.
    /// Returns the number of armed sites.
    pub fn arm(plan: &str) -> Result<usize, PlanError> {
        let mut parsed = HashMap::new();
        for clause in plan.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (site, spec) = parse_clause(clause)?;
            parsed.insert(site, spec);
        }
        let count = parsed.len();
        let mut sites = sites().lock().unwrap_or_else(|poison| poison.into_inner());
        *sites = parsed;
        Ok(count)
    }

    /// Remove every armed site and reset all hit counters.
    pub fn disarm_all() {
        sites()
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .clear();
    }

    /// Record a hit at `site`; return the action if this hit is the
    /// armed ordinal. Called by the `point!` macro — production code
    /// should not need it directly.
    pub fn fire(site: &str) -> Option<Action> {
        let mut sites = sites().lock().unwrap_or_else(|poison| poison.into_inner());
        let entry = sites.get_mut(site)?;
        entry.hits += 1;
        (entry.hits == entry.at).then_some(entry.action)
    }

    /// Hit count for `site` since it was armed (`None` if not armed).
    pub fn hits(site: &str) -> Option<u64> {
        sites()
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .get(site)
            .map(|entry| entry.hits)
    }
}

#[cfg(feature = "fault-injection")]
pub use registry::{arm, disarm_all, fire, hits};

/// True when this build can honor fault plans.
#[cfg(feature = "fault-injection")]
pub const fn enabled() -> bool {
    true
}

/// Arm from the `MVQ_FAULTS` environment variable. Unset or empty is
/// `Ok(0)`; a set variable arms the plan it contains.
#[cfg(feature = "fault-injection")]
pub fn arm_from_env() -> Result<usize, PlanError> {
    match std::env::var(ENV_VAR) {
        Ok(plan) if !plan.trim().is_empty() => arm(&plan),
        _ => Ok(0),
    }
}

// ---------------------------------------------------------------------------
// Inert stubs: the same API surface with the feature off, so callers
// compile unconditionally and release builds carry no registry at all.
// ---------------------------------------------------------------------------

/// Inert stub — this build has no failpoint registry.
#[cfg(not(feature = "fault-injection"))]
pub fn arm(_plan: &str) -> Result<usize, PlanError> {
    Ok(0)
}

/// Inert stub — this build has no failpoint registry.
#[cfg(not(feature = "fault-injection"))]
pub fn disarm_all() {}

/// Inert stub — this build has no failpoint registry.
#[cfg(not(feature = "fault-injection"))]
pub fn fire(_site: &str) -> Option<Action> {
    None
}

/// Inert stub — this build has no failpoint registry.
#[cfg(not(feature = "fault-injection"))]
pub fn hits(_site: &str) -> Option<u64> {
    None
}

/// True when this build can honor fault plans.
#[cfg(not(feature = "fault-injection"))]
pub const fn enabled() -> bool {
    false
}

/// Arm from `MVQ_FAULTS`. In a build without `fault-injection` a set
/// variable is an error: the operator asked for faults this binary
/// cannot inject, and a silently unarmed chaos drill is worse than a
/// refusal to start.
#[cfg(not(feature = "fault-injection"))]
pub fn arm_from_env() -> Result<usize, PlanError> {
    match std::env::var(ENV_VAR) {
        Ok(plan) if !plan.trim().is_empty() => Err(PlanError(format!(
            "{ENV_VAR} is set but this binary was built without the \
             `fault-injection` feature"
        ))),
        _ => Ok(0),
    }
}

/// Mark a failpoint. `point!("site")` honors `panic` and `delay(ms)`
/// actions and ignores `err`; `point!("site", expr)` additionally
/// evaluates `expr` (typically `return Err(..)`) when an `err` action
/// fires. Expands to an empty block unless `fault-injection` is on.
#[cfg(feature = "fault-injection")]
#[macro_export]
macro_rules! point {
    ($site:expr) => {
        match $crate::fire($site) {
            Some($crate::Action::Panic) => {
                panic!("mvq_fault: injected panic at failpoint `{}`", $site)
            }
            Some($crate::Action::Delay(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms))
            }
            Some($crate::Action::Err) | None => {}
        }
    };
    ($site:expr, $on_err:expr) => {
        match $crate::fire($site) {
            Some($crate::Action::Panic) => {
                panic!("mvq_fault: injected panic at failpoint `{}`", $site)
            }
            Some($crate::Action::Delay(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms))
            }
            Some($crate::Action::Err) => $on_err,
            None => {}
        }
    };
}

/// Mark a failpoint (inert: this build has no `fault-injection`).
#[cfg(not(feature = "fault-injection"))]
#[macro_export]
macro_rules! point {
    ($site:expr $(, $on_err:expr)?) => {{}};
}

#[cfg(all(test, feature = "fault-injection"))]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// The registry is process-global; serialize tests that arm it.
    fn lock() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    #[test]
    fn plan_parses_and_counts_hits() {
        let _gate = lock();
        assert_eq!(arm("a=err;b=panic@3; c = delay(25) @ 2 ;").unwrap(), 3);
        assert_eq!(fire("a"), Some(Action::Err));
        assert_eq!(fire("a"), None, "err@1 fires exactly once");
        assert_eq!(fire("b"), None);
        assert_eq!(fire("b"), None);
        assert_eq!(fire("b"), Some(Action::Panic));
        assert_eq!(fire("b"), None, "one-shot even past the ordinal");
        assert_eq!(fire("c"), None);
        assert_eq!(fire("c"), Some(Action::Delay(25)));
        assert_eq!(hits("b"), Some(4));
        assert_eq!(hits("unarmed"), None);
        disarm_all();
    }

    #[test]
    fn unarmed_sites_never_fire() {
        let _gate = lock();
        disarm_all();
        assert_eq!(fire("anything"), None);
        assert_eq!(hits("anything"), None);
    }

    #[test]
    fn rearming_replaces_the_plan_and_resets_counters() {
        let _gate = lock();
        arm("a=err@2").unwrap();
        assert_eq!(fire("a"), None);
        arm("a=err@2").unwrap();
        assert_eq!(fire("a"), None, "re-arming reset the hit counter");
        assert_eq!(fire("a"), Some(Action::Err));
        arm("b=panic").unwrap();
        assert_eq!(fire("a"), None, "a is gone after re-arm with a new plan");
        disarm_all();
    }

    #[test]
    fn bad_plans_are_rejected() {
        let _gate = lock();
        for plan in [
            "missing-equals",
            "=err",
            "a=explode",
            "a=err@0",
            "a=err@x",
            "a=delay(ms)",
            "a=delay(5",
        ] {
            assert!(arm(plan).is_err(), "plan `{plan}` should not parse");
        }
        // A failed arm must not leave a partial plan behind.
        assert_eq!(fire("a"), None);
    }

    #[test]
    fn empty_plan_arms_nothing() {
        let _gate = lock();
        assert_eq!(arm("").unwrap(), 0);
        assert_eq!(arm(" ; ; ").unwrap(), 0);
    }

    #[test]
    fn point_macro_err_arm_runs_on_err_action() {
        let _gate = lock();
        arm("macro.site=err").unwrap();
        let result: Result<(), &str> = (|| {
            crate::point!("macro.site", return Err("injected"));
            Ok(())
        })();
        assert_eq!(result, Err("injected"));
        // Second call: the site no longer fires.
        let result: Result<(), &str> = (|| {
            crate::point!("macro.site", return Err("injected"));
            Ok(())
        })();
        assert_eq!(result, Ok(()));
        disarm_all();
    }

    #[test]
    fn enabled_reports_the_feature() {
        assert!(enabled());
    }
}
