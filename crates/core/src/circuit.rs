use std::fmt;

use mvq_logic::{wire_name, Gate, Pattern, PatternDomain};
use mvq_matrix::CMatrix;
use mvq_perm::Perm;
use mvq_sim::{adjoint_cascade, circuit_unitary, vswap_cascade};

use crate::CostModel;

/// A cascade of elementary quantum gates on an `n`-wire register, in
/// execution order (`gates()[0]` acts first — the paper's `d[0]`).
///
/// # Examples
///
/// ```
/// use mvq_core::Circuit;
/// use mvq_logic::Gate;
///
/// // Figure 4: the Peres circuit g1 = VCB * FBA * VCA * V⁺CB.
/// let peres = Circuit::new(3, vec![
///     Gate::v(2, 1),
///     Gate::feynman(1, 0),
///     Gate::v(2, 0),
///     Gate::v_dagger(2, 1),
/// ]);
/// assert_eq!(peres.quantum_cost(), 4);
/// assert_eq!(peres.binary_perm().unwrap().to_string(), "(5,7,6,8)");
/// ```
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Circuit {
    wires: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates a circuit from a gate cascade.
    ///
    /// # Panics
    ///
    /// Panics if a gate references a wire ≥ `wires`.
    pub fn new(wires: usize, gates: Vec<Gate>) -> Self {
        for g in &gates {
            for w in g.wires() {
                assert!(w < wires, "gate {g} references wire {w} of {wires}");
            }
        }
        Self { wires, gates }
    }

    /// The empty (identity) circuit.
    pub fn identity(wires: usize) -> Self {
        Self {
            wires,
            gates: Vec::new(),
        }
    }

    /// The number of wires.
    pub fn wires(&self) -> usize {
        self.wires
    }

    /// The gate cascade in execution order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The quantum cost under the paper's unit model (number of 2-qubit
    /// gates; NOT gates are free).
    pub fn quantum_cost(&self) -> u32 {
        CostModel::unit().cascade_cost(&self.gates)
    }

    /// The cost under an arbitrary model.
    pub fn cost_under(&self, model: &CostModel) -> u32 {
        model.cascade_cost(&self.gates)
    }

    /// Applies the whole cascade to a pattern under the multiple-valued
    /// semantics.
    pub fn apply(&self, pattern: &Pattern) -> Pattern {
        self.gates.iter().fold(pattern.clone(), |p, g| g.apply(&p))
    }

    /// The circuit's permutation of a pattern domain (NOT-free circuits
    /// only on the permutable domain; NOT gates can map a pattern outside
    /// it).
    ///
    /// # Panics
    ///
    /// Panics if some gate maps a domain pattern outside the domain.
    pub fn perm(&self, domain: &PatternDomain) -> Perm {
        self.gates
            .iter()
            .fold(Perm::identity(domain.len()), |acc, g| acc * g.perm(domain))
    }

    /// The circuit's action on pure binary patterns, as a permutation of
    /// `{1, …, 2^n}` — the paper's reversible-circuit view.
    ///
    /// Returns `None` if some binary input produces a non-binary output
    /// (the circuit is probabilistic, not permutative).
    ///
    /// # Examples
    ///
    /// ```
    /// use mvq_core::Circuit;
    /// use mvq_logic::Gate;
    ///
    /// // A bare controlled-V is not permutative.
    /// let c = Circuit::new(2, vec![Gate::v(1, 0)]);
    /// assert!(c.binary_perm().is_none());
    /// ```
    pub fn binary_perm(&self) -> Option<Perm> {
        let n = self.wires;
        let images: Option<Vec<usize>> = (0..1usize << n)
            .map(|bits| {
                let out = self.apply(&Pattern::from_bits(bits, n));
                out.to_bits().map(|b| b + 1)
            })
            .collect();
        Perm::from_images(&images?)
    }

    /// The exact `2^n × 2^n` unitary of the cascade.
    pub fn unitary(&self) -> CMatrix {
        circuit_unitary(&self.gates, self.wires)
    }

    /// Verifies at the **unitary level** that the circuit realizes the
    /// reversible function `target` (a permutation of `{1, …, 2^n}`).
    ///
    /// This is the reproduction's end-to-end soundness check: the
    /// group-theoretic synthesis result is recomputed in Hilbert space
    /// with exact arithmetic and compared by equality.
    pub fn verify_against_binary_perm(&self, target: &Perm) -> bool {
        if target.degree() != 1 << self.wires {
            return false;
        }
        let images: Vec<usize> = (1..=target.degree()).map(|p| target.image(p)).collect();
        self.unitary() == CMatrix::permutation(&images)
    }

    /// The Hermitian adjoint circuit: reversed gates, V ↔ V⁺.
    pub fn adjoint(&self) -> Circuit {
        Circuit {
            wires: self.wires,
            gates: adjoint_cascade(&self.gates),
        }
    }

    /// The paper's Figure 8 transform: same gate order, V ↔ V⁺ swapped.
    /// For a permutative circuit this realizes the same function.
    pub fn vswapped(&self) -> Circuit {
        Circuit {
            wires: self.wires,
            gates: vswap_cascade(&self.gates),
        }
    }

    /// Renders an ASCII circuit diagram in the style of the paper's
    /// figures.
    ///
    /// ```text
    /// A ───●──●──●─────
    /// B ───┼──⊕──┼──●──
    /// C ───V─────V──V+─
    /// ```
    pub fn diagram(&self) -> String {
        let mut rows: Vec<String> = (0..self.wires)
            .map(|w| format!("{} ──", wire_name(w)))
            .collect();
        for g in &self.gates {
            let (symbols, width) = match *g {
                Gate::V { data, control } => {
                    (vec![(data, "V".to_string()), (control, "●".to_string())], 2)
                }
                Gate::VDagger { data, control } => (
                    vec![(data, "V+".to_string()), (control, "●".to_string())],
                    3,
                ),
                Gate::Feynman { data, control } => {
                    (vec![(data, "⊕".to_string()), (control, "●".to_string())], 2)
                }
                Gate::Not { wire } => (vec![(wire, "X".to_string())], 2),
            };
            for (w, row) in rows.iter_mut().enumerate() {
                let sym = symbols
                    .iter()
                    .find(|(sw, _)| *sw == w)
                    .map(|(_, s)| s.clone());
                match sym {
                    Some(s) => {
                        let pad = width + 2 - s.chars().count();
                        row.push_str(&s);
                        row.push_str(&"─".repeat(pad));
                    }
                    None => {
                        // Vertical connector if the gate spans across this
                        // wire, else plain wire.
                        let touched: Vec<usize> = symbols.iter().map(|(sw, _)| *sw).collect();
                        let min = *touched.iter().min().expect("non-empty");
                        let max = *touched.iter().max().expect("non-empty");
                        let c = if w > min && w < max { "┼" } else { "─" };
                        row.push_str(c);
                        row.push_str(&"─".repeat(width + 1));
                    }
                }
            }
        }
        rows.join("\n")
    }
}

/// Error returned when parsing a [`Circuit`] from paper notation fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCircuitError {
    message: String,
}

impl fmt::Display for ParseCircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid circuit: {}", self.message)
    }
}

impl std::error::Error for ParseCircuitError {}

impl std::str::FromStr for Circuit {
    type Err = ParseCircuitError;

    /// Parses the paper's cascade notation, e.g. `"VCB*FBA*VCA*V+CB"`.
    /// `"( )"` denotes the identity. The wire count is the highest wire
    /// mentioned plus one (minimum 2).
    ///
    /// # Examples
    ///
    /// ```
    /// use mvq_core::Circuit;
    ///
    /// let peres: Circuit = "VCB*FBA*VCA*V+CB".parse()?;
    /// assert_eq!(peres.quantum_cost(), 4);
    /// assert_eq!(peres.binary_perm().unwrap().to_string(), "(5,7,6,8)");
    /// # Ok::<(), mvq_core::ParseCircuitError>(())
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s == "( )" || s == "()" || s.is_empty() {
            return Ok(Circuit::identity(2));
        }
        let gates: Vec<Gate> = s
            .split('*')
            .map(|tok| {
                tok.trim().parse::<Gate>().map_err(|e| ParseCircuitError {
                    message: e.to_string(),
                })
            })
            .collect::<Result<_, _>>()?;
        let wires = gates
            .iter()
            .flat_map(|g| g.wires())
            .max()
            .map_or(2, |w| (w + 1).max(2));
        Ok(Circuit::new(wires, gates))
    }
}

impl fmt::Display for Circuit {
    /// Paper notation: `VCB*FBA*VCA*V+CB`, or `( )` for the identity.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.gates.is_empty() {
            return write!(f, "( )");
        }
        for (i, g) in self.gates.iter().enumerate() {
            if i > 0 {
                write!(f, "*")?;
            }
            write!(f, "{g}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peres() -> Circuit {
        Circuit::new(
            3,
            vec![
                Gate::v(2, 1),
                Gate::feynman(1, 0),
                Gate::v(2, 0),
                Gate::v_dagger(2, 1),
            ],
        )
    }

    #[test]
    fn peres_binary_perm_matches_paper() {
        // g1 = (5,7,6,8) — Figure 4.
        assert_eq!(peres().binary_perm().unwrap().to_string(), "(5,7,6,8)");
    }

    #[test]
    fn peres_cost_is_4() {
        assert_eq!(peres().quantum_cost(), 4);
    }

    #[test]
    fn toffoli_figure_9a() {
        // To = FBA * V⁺CB * FBA * VCA * VCB.
        let to = Circuit::new(
            3,
            vec![
                Gate::feynman(1, 0),
                Gate::v_dagger(2, 1),
                Gate::feynman(1, 0),
                Gate::v(2, 0),
                Gate::v(2, 1),
            ],
        );
        assert_eq!(to.quantum_cost(), 5);
        assert_eq!(to.binary_perm().unwrap().to_string(), "(7,8)");
    }

    #[test]
    fn probabilistic_circuit_has_no_binary_perm() {
        let c = Circuit::new(3, vec![Gate::not(0), Gate::v(1, 0)]);
        assert!(c.binary_perm().is_none());
    }

    #[test]
    fn perm_on_domain_composes() {
        let d = PatternDomain::permutable(3);
        let c = Circuit::new(3, vec![Gate::v(1, 0), Gate::v(1, 0)]);
        // V twice = NOT on B when A = 1: binary part (5,7)(6,8).
        let p = c.perm(&d);
        let s: Vec<usize> = (1..=8).collect();
        assert_eq!(p.restricted(&s).unwrap().to_string(), "(5,7)(6,8)");
    }

    #[test]
    fn unitary_verification_accepts_correct_target() {
        let target = peres().binary_perm().unwrap();
        assert!(peres().verify_against_binary_perm(&target));
        // And rejects a wrong one.
        let wrong: Perm = "(7,8)".parse().unwrap();
        assert!(!peres().verify_against_binary_perm(&wrong.extended(8)));
    }

    #[test]
    fn adjoint_inverts_unitary() {
        let c = peres();
        assert_eq!(c.adjoint().unitary(), c.unitary().adjoint());
    }

    #[test]
    fn vswapped_realizes_same_permutation() {
        // Figure 8.
        let c = peres();
        let swapped = c.vswapped();
        assert_ne!(swapped, c);
        assert_eq!(swapped.unitary(), c.unitary());
    }

    #[test]
    fn not_layer_conjugates_binary_perm() {
        // NOT(A) * Toffoli-ish circuit still has a binary perm.
        let c = Circuit::new(3, vec![Gate::not(0), Gate::feynman(2, 0), Gate::not(0)]);
        // C ^= !A: patterns with A=0 flip C.
        assert_eq!(c.binary_perm().unwrap().to_string(), "(1,2)(3,4)");
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(peres().to_string(), "VCB*FBA*VCA*V+CB");
        assert_eq!(Circuit::identity(3).to_string(), "( )");
    }

    #[test]
    fn diagram_renders_all_wires() {
        let d = peres().diagram();
        let lines: Vec<&str> = d.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[2].contains('V'));
        assert!(lines[1].contains('⊕'));
    }

    #[test]
    #[should_panic(expected = "references wire")]
    fn out_of_range_wire_rejected() {
        let _ = Circuit::new(2, vec![Gate::v(2, 0)]);
    }

    #[test]
    fn parse_roundtrips_paper_notation() {
        for s in ["VCB*FBA*VCA*V+CB", "FBA*V+CB*FBA*VCA*VCB", "NOT(A)*FCA"] {
            let c: Circuit = s.parse().unwrap();
            assert_eq!(c.to_string(), s);
        }
    }

    #[test]
    fn parse_identity_and_errors() {
        assert!("( )".parse::<Circuit>().unwrap().gates().is_empty());
        assert!("VCB**FBA".parse::<Circuit>().is_err());
        assert!("VCB*QXY".parse::<Circuit>().is_err());
    }

    #[test]
    fn parsed_peres_verifies() {
        let c: Circuit = "VCB*FBA*VCA*V+CB".parse().unwrap();
        assert_eq!(c.wires(), 3);
        let target: Perm = "(5,7,6,8)".parse::<Perm>().unwrap().extended(8);
        assert!(c.verify_against_binary_perm(&target));
    }
}
