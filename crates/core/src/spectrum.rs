use std::fmt;

use crate::SynthesisEngine;

/// The cost spectrum of NOT-free reversible 3-qubit circuits: how many of
/// the `(2^n − 1)! = 5040` realizable classes first appear at each quantum
/// cost — Table 2 extended past the paper's memory bound of `cb = 7`.
///
/// # Examples
///
/// ```
/// use mvq_core::CostSpectrum;
///
/// let spectrum = CostSpectrum::compute(4);
/// assert_eq!(spectrum.counts(), &[1, 6, 24, 51, 84]);
/// assert_eq!(spectrum.cumulative(), 166);
/// assert!(!spectrum.is_complete());
/// ```
#[derive(Debug, Clone)]
pub struct CostSpectrum {
    counts: Vec<usize>,
    frontier_sizes: Vec<usize>,
    total_classes: usize,
}

impl CostSpectrum {
    /// The number of NOT-free reversible classes on 3 wires — the order of
    /// the stabilizer of the all-zeros pattern in S₈.
    pub const TOTAL_3_WIRE_CLASSES: usize = 5040;

    /// Expands FMCF to cost `cb` with the standard 3-wire library and
    /// returns the spectrum.
    ///
    /// Memory grows with roughly 4.5× per level past the paper's bound;
    /// `cb = 8` needs a few GB, `cb = 9` tens of GB.
    pub fn compute(cb: u32) -> Self {
        let mut engine = SynthesisEngine::unit_cost();
        Self::compute_with(&mut engine, cb)
    }

    /// Runs on an existing engine, reusing cached levels. Stops early when
    /// every class has been found.
    pub fn compute_with(engine: &mut SynthesisEngine, cb: u32) -> Self {
        for k in 0..=cb {
            engine.expand_to_cost(k);
            if engine.classes_found() == Self::TOTAL_3_WIRE_CLASSES {
                break;
            }
        }
        Self {
            counts: engine.g_counts().to_vec(),
            frontier_sizes: engine.b_counts().to_vec(),
            total_classes: engine.classes_found(),
        }
    }

    /// `|G[k]|` per cost level, starting at cost 0.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// `|B[k]|` (frontier sizes) per cost level.
    pub fn frontier_sizes(&self) -> &[usize] {
        &self.frontier_sizes
    }

    /// The cumulative number of classes found.
    pub fn cumulative(&self) -> usize {
        self.total_classes
    }

    /// Fraction of the 5040 classes covered, in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        self.total_classes as f64 / Self::TOTAL_3_WIRE_CLASSES as f64
    }

    /// `true` iff every reversible class has a known minimal cost.
    pub fn is_complete(&self) -> bool {
        self.total_classes == Self::TOTAL_3_WIRE_CLASSES
    }
}

impl fmt::Display for CostSpectrum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>4} {:>8} {:>10} {:>12}",
            "k", "|G[k]|", "Σ|G|", "|B[k]|"
        )?;
        let mut cumulative = 0usize;
        for (k, (&g, &b)) in self.counts.iter().zip(&self.frontier_sizes).enumerate() {
            cumulative += g;
            writeln!(f, "{k:>4} {g:>8} {cumulative:>10} {b:>12}")?;
        }
        write!(
            f,
            "coverage: {}/{} classes ({:.2}%)",
            self.total_classes,
            Self::TOTAL_3_WIRE_CLASSES,
            100.0 * self.coverage()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spectrum_matches_census_counts() {
        let s = CostSpectrum::compute(3);
        assert_eq!(s.counts(), &[1, 6, 24, 51]);
        assert_eq!(s.cumulative(), 82);
        assert!(s.coverage() > 0.016 && s.coverage() < 0.017);
    }

    #[test]
    fn paper_bound_covers_exactly_one_quarter() {
        // A pleasing coincidence: Σ|G[k]| for k ≤ 7 is 1260 = 5040 / 4.
        let s = CostSpectrum::compute(5);
        assert_eq!(s.cumulative(), 322);
        assert!(!s.is_complete());
    }

    #[test]
    fn display_lists_levels() {
        let s = CostSpectrum::compute(2);
        let text = s.to_string();
        assert!(text.contains("|G[k]|"));
        assert!(text.contains("coverage"));
    }

    #[test]
    fn reuses_engine_levels() {
        let mut engine = SynthesisEngine::unit_cost();
        engine.expand_to_cost(3);
        let before = engine.a_size();
        let s = CostSpectrum::compute_with(&mut engine, 3);
        assert_eq!(engine.a_size(), before, "no re-expansion");
        assert_eq!(s.counts().len(), 4);
    }
}
