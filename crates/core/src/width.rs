//! Width parameterization of the packed search core.
//!
//! The FMCF/MCE engine packs its three hot representations into fixed-
//! width machine types: circuit-permutations into inline byte arrays
//! ([`PackedWord`](crate::PackedWord)), S-traces into one integer (one
//! byte per binary pattern), and per-gate banned sets into one bitmask
//! word. The 3-wire library fits `[u8; 64]` / `u64` / `u64`; a 4-wire
//! library (176-pattern permutable domain, 16 binary patterns) does not.
//!
//! Rather than widening the narrow representations in place — which
//! would tax every 3-wire hot path with 4× the word bytes and double the
//! trace width — the engine is generic over a [`SearchWidth`]: a bundle
//! of the word, trace, and mask types sized together. Two widths are
//! provided:
//!
//! * [`Narrow`] — `[u8; 64]` words, `u64` traces, `u64` masks: the
//!   historical representation (the word's inline length field widened
//!   from `u8` to `u16` to share one struct with [`Wide`], so hashes
//!   and shard routing differ from pre-widening builds; all search
//!   *results* are unchanged, proptest-checked against the wide
//!   engine).
//! * [`Wide`] — `[u8; 256]` words, `u128` traces (16 packed bytes),
//!   [`Mask256`] banned masks: everything a 4-wire permutable library
//!   needs, with headroom to the `u8` permutation-substrate ceiling.
//!
//! [`SynthesisEngine`](crate::SynthesisEngine) and
//! [`WideSynthesisEngine`](crate::WideSynthesisEngine) are the two
//! instantiations of the generic [`SearchEngine`](crate::SearchEngine).

use std::fmt;
use std::hash::Hash;

use crate::word::{fnv1a, Packed};

/// Keys routable to `seen`-map shards: hashed once for shard selection
/// (the inner maps hash independently).
pub trait ShardKey: Copy + Eq + Hash + Send + Sync {
    /// A stable 64-bit hash used for shard routing only.
    fn shard_hash(&self) -> u64;
}

impl<const CAP: usize> ShardKey for Packed<CAP> {
    fn shard_hash(&self) -> u64 {
        self.fnv_hash()
    }
}

impl ShardKey for u64 {
    fn shard_hash(&self) -> u64 {
        fnv1a(&self.to_le_bytes())
    }
}

impl ShardKey for u128 {
    fn shard_hash(&self) -> u64 {
        fnv1a(&self.to_le_bytes())
    }
}

/// The packed circuit-permutation representation of a search width.
///
/// Implemented by [`Packed<CAP>`](crate::PackedWord) for the two
/// capacities the engine instantiates; the trait exists so the engine
/// can be generic without const-generic arithmetic.
pub trait WordRepr: Copy + Eq + Ord + Hash + ShardKey + fmt::Debug + Send + Sync + 'static {
    /// Maximum domain size a word can cover.
    const CAPACITY: usize;

    /// The identity word on `len` indices.
    fn identity(len: usize) -> Self;

    /// Packs a 0-based image table.
    fn from_slice(images: &[u8]) -> Self;

    /// The number of domain indices the word covers.
    fn len(&self) -> usize;

    /// `true` iff the word covers no indices (never the case for words
    /// the engine builds; provided for API completeness).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The active image table.
    fn as_slice(&self) -> &[u8];

    /// Post-composes through `table`: `out[i] = table[self[i]]`.
    fn map_through(&self, table: &[u8]) -> Self;

    /// The image of 0-based domain index `index`.
    fn at(&self, index: usize) -> u8;
}

impl<const CAP: usize> WordRepr for Packed<CAP> {
    const CAPACITY: usize = CAP;

    fn identity(len: usize) -> Self {
        Packed::identity(len)
    }

    fn from_slice(images: &[u8]) -> Self {
        Packed::from_slice(images)
    }

    fn len(&self) -> usize {
        Packed::len(self)
    }

    fn as_slice(&self) -> &[u8] {
        Packed::as_slice(self)
    }

    fn map_through(&self, table: &[u8]) -> Self {
        Packed::map_through(self, table)
    }

    #[inline]
    fn at(&self, index: usize) -> u8 {
        self.as_slice()[index]
    }
}

/// The packed S-trace representation of a search width: one byte per
/// binary pattern, least-significant slot first.
pub trait TraceRepr:
    Copy + Eq + Ord + Hash + ShardKey + fmt::Debug + Send + Sync + 'static
{
    /// Most binary patterns a trace can pack.
    const SLOTS: usize;

    /// Serialized width in bytes (little-endian, equals [`Self::SLOTS`]).
    const BYTES: usize;

    /// The empty trace.
    const ZERO: Self;

    /// The packed byte in `slot`.
    fn byte(self, slot: usize) -> u8;

    /// ORs `value` into `slot` (slots are written at most once).
    #[must_use]
    fn or_byte(self, slot: usize, value: u8) -> Self;

    /// Appends the little-endian bytes to `out`.
    fn write_le(self, out: &mut Vec<u8>);

    /// Reads a trace from exactly [`Self::BYTES`] little-endian bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() != Self::BYTES`.
    fn read_le(bytes: &[u8]) -> Self;
}

impl TraceRepr for u64 {
    const SLOTS: usize = 8;
    const BYTES: usize = 8;
    const ZERO: Self = 0;

    #[inline]
    fn byte(self, slot: usize) -> u8 {
        (self >> (8 * slot)) as u8
    }

    #[inline]
    fn or_byte(self, slot: usize, value: u8) -> Self {
        self | (u64::from(value) << (8 * slot))
    }

    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn read_le(bytes: &[u8]) -> Self {
        u64::from_le_bytes(bytes.try_into().expect("8 trace bytes"))
    }
}

impl TraceRepr for u128 {
    const SLOTS: usize = 16;
    const BYTES: usize = 16;
    const ZERO: Self = 0;

    #[inline]
    fn byte(self, slot: usize) -> u8 {
        (self >> (8 * slot)) as u8
    }

    #[inline]
    fn or_byte(self, slot: usize, value: u8) -> Self {
        self | (u128::from(value) << (8 * slot))
    }

    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn read_le(bytes: &[u8]) -> Self {
        // lint: allow(panic) callers pass exactly 16 bytes (trace wire format)
        u128::from_le_bytes(bytes.try_into().expect("16 trace bytes"))
    }
}

/// The banned-set bitmask representation of a search width: bit `i − 1`
/// set ⇔ 1-based domain index `i` banned.
pub trait MaskRepr: Copy + Default + PartialEq + fmt::Debug + Send + Sync + 'static {
    /// Sets the bit for 0-based domain index `bit`.
    fn set_bit(&mut self, bit: usize);

    /// `true` iff the two masks share a set bit — the reasonable-product
    /// test (`image ∩ banned ≠ ∅` bans the gate).
    fn intersects(&self, other: &Self) -> bool;

    /// Appends the mask's little-endian bytes to `out` (for the snapshot
    /// library fingerprint).
    fn write_le(&self, out: &mut Vec<u8>);
}

impl MaskRepr for u64 {
    #[inline]
    fn set_bit(&mut self, bit: usize) {
        *self |= 1u64 << bit;
    }

    #[inline]
    fn intersects(&self, other: &Self) -> bool {
        self & other != 0
    }

    fn write_le(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

/// A 256-bit bitset over domain indices — the wide counterpart of the
/// `u64` banned masks, sized to [`Wide`]'s 256-index word capacity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Mask256([u64; 4]);

impl Mask256 {
    /// The mask with the bits for every 0-based index in `bits` set.
    pub fn from_bits(bits: impl IntoIterator<Item = usize>) -> Self {
        let mut mask = Self::default();
        for bit in bits {
            mask.set_bit(bit);
        }
        mask
    }
}

impl MaskRepr for Mask256 {
    #[inline]
    fn set_bit(&mut self, bit: usize) {
        self.0[bit / 64] |= 1u64 << (bit % 64);
    }

    #[inline]
    fn intersects(&self, other: &Self) -> bool {
        (self.0[0] & other.0[0])
            | (self.0[1] & other.0[1])
            | (self.0[2] & other.0[2])
            | (self.0[3] & other.0[3])
            != 0
    }

    fn write_le(&self, out: &mut Vec<u8>) {
        for limb in self.0 {
            out.extend_from_slice(&limb.to_le_bytes());
        }
    }
}

/// A bundle of the packed representations the search core is generic
/// over (see the module docs).
pub trait SearchWidth:
    Copy + Clone + Default + PartialEq + Eq + Hash + fmt::Debug + Send + Sync + 'static
{
    /// Short name used in width-mismatch diagnostics.
    const LABEL: &'static str;

    /// The circuit-permutation word type.
    type Word: WordRepr;

    /// The packed S-trace type.
    type Trace: TraceRepr;

    /// The banned-mask type.
    type Mask: MaskRepr;
}

/// The historical 3-wire widths: `[u8; 64]` words, `u64` traces, `u64`
/// masks. Covers every library with ≤ 64 domain patterns and ≤ 8 binary
/// patterns (wire counts 1–3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Narrow;

impl SearchWidth for Narrow {
    const LABEL: &'static str = "narrow (64-pattern words, u64 traces)";
    type Word = Packed<64>;
    type Trace = u64;
    type Mask = u64;
}

/// The 4-wire widths: `[u8; 256]` words, `u128` traces (16 packed
/// bytes), [`Mask256`] banned masks. Covers the 176-pattern permutable
/// 4-wire domain with headroom to the permutation substrate's 255-point
/// ceiling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Wide;

impl SearchWidth for Wide {
    const LABEL: &'static str = "wide (256-pattern words, u128 traces)";
    type Word = Packed<256>;
    type Trace = u128;
    type Mask = Mask256;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_bytes_roundtrip() {
        let t64 = 0x0102_0304_0506_0708u64;
        assert_eq!(t64.byte(0), 0x08);
        assert_eq!(t64.byte(7), 0x01);
        let mut out = Vec::new();
        t64.write_le(&mut out);
        assert_eq!(u64::read_le(&out), t64);

        let t128 = (u128::from(t64) << 64) | 0x99;
        assert_eq!(t128.byte(0), 0x99);
        assert_eq!(t128.byte(8), 0x08);
        assert_eq!(t128.byte(15), 0x01);
        let mut out = Vec::new();
        t128.write_le(&mut out);
        assert_eq!(out.len(), 16);
        assert_eq!(u128::read_le(&out), t128);
    }

    #[test]
    fn or_byte_packs_slots() {
        let mut t = <u128 as TraceRepr>::ZERO;
        for slot in 0..16 {
            t = t.or_byte(slot, slot as u8 + 1);
        }
        for slot in 0..16 {
            assert_eq!(t.byte(slot), slot as u8 + 1);
        }
    }

    #[test]
    fn mask256_set_and_intersect() {
        let mut a = Mask256::default();
        a.set_bit(0);
        a.set_bit(63);
        a.set_bit(64);
        a.set_bit(255);
        let b = Mask256::from_bits([64]);
        let c = Mask256::from_bits([65, 130]);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(!Mask256::default().intersects(&a));
    }

    #[test]
    fn mask256_bytes_are_little_endian_limbs() {
        let mask = Mask256::from_bits([0, 64]);
        let mut out = Vec::new();
        mask.write_le(&mut out);
        assert_eq!(out.len(), 32);
        assert_eq!(out[0], 1);
        assert_eq!(out[8], 1);
    }

    #[test]
    fn u64_mask_matches_plain_bit_ops() {
        let mut m = 0u64;
        m.set_bit(5);
        m.set_bit(63);
        assert_eq!(m, (1 << 5) | (1 << 63));
        assert!(m.intersects(&(1u64 << 5)));
        assert!(!m.intersects(&(1u64 << 6)));
    }

    #[test]
    fn shard_hash_u128_differs_from_truncation() {
        // The 128-bit shard hash must see the high bytes.
        let low = 42u128;
        let high = low | (1u128 << 100);
        assert_ne!(low.shard_hash(), high.shard_hash());
    }
}
