use std::collections::{BTreeMap, HashMap};

use mvq_logic::{Gate, GateLibrary};
use mvq_perm::Perm;

use crate::{Circuit, CostModel};

/// A compact circuit-permutation: 0-based image table over the domain.
type Word = Box<[u8]>;

/// Per-element search metadata: discovery cost and the library-gate index
/// that produced it (`u8::MAX` for the identity seed).
#[derive(Debug, Clone, Copy)]
struct Meta {
    cost: u32,
    last_gate: u8,
}

/// A reversible-circuit equivalence class discovered by FMCF: the
/// restriction to binary patterns, its minimal cost, and every witness
/// (full domain permutation) found *at that minimal cost*.
#[derive(Debug, Clone)]
struct GClass {
    cost: u32,
    witnesses: Vec<Word>,
}

/// The result of a successful MCE synthesis.
#[derive(Debug, Clone)]
pub struct Synthesis {
    /// The synthesized circuit: optional NOT layer followed by the
    /// minimal 2-qubit-gate cascade, in execution order.
    pub circuit: Circuit,
    /// The minimal quantum cost `t` (2-qubit gates only).
    pub cost: u32,
    /// The NOT gates of the Theorem 2 coset layer (`d[0]`; empty when the
    /// target fixes the all-zeros pattern).
    pub not_layer: Vec<Gate>,
    /// The number of distinct minimal-cost implementations the search
    /// level contains for this target (distinct domain permutations
    /// restricting to it — the paper reports 2 for Peres, 4 for Toffoli).
    pub implementation_count: usize,
}

/// The paper's FMCF + MCE engines over one gate library and cost model.
///
/// [`SynthesisEngine::expand_to_cost`] materializes the sets `A[k]`,
/// `B[k]`, `G[k]` level by level (Section 3's
/// Finding_Minimum_Cost_Circuits); the level data is cached, so repeated
/// syntheses reuse it. [`SynthesisEngine::synthesize`] runs
/// Minimum_Cost_Expressing on top.
///
/// # Examples
///
/// ```
/// use mvq_core::SynthesisEngine;
///
/// let mut engine = SynthesisEngine::unit_cost();
/// engine.expand_to_cost(3);
/// // Table 2, first four columns (verified counts; the paper's printed
/// // row has arithmetic slips at k = 2, 3 — see `EXPECTED_TABLE_2`).
/// assert_eq!(engine.g_counts(), &[1, 6, 24, 51]);
/// ```
#[derive(Debug)]
pub struct SynthesisEngine {
    library: GateLibrary,
    model: CostModel,
    /// Per-library-gate 0-based image tables.
    gate_images: Vec<Vec<u8>>,
    /// Per-library-gate inverse image tables (for path reconstruction).
    gate_inverse_images: Vec<Vec<u8>>,
    /// Per-library-gate banned masks.
    gate_banned: Vec<u64>,
    /// Per-library-gate costs.
    gate_costs: Vec<u32>,
    /// Every discovered element of `A[∞]` with its metadata.
    seen: HashMap<Word, Meta>,
    /// Pending frontier elements keyed by their (exact) cost.
    pending: BTreeMap<u32, Vec<Word>>,
    /// Highest cost whose level has been fully expanded.
    completed: Option<u32>,
    /// Reversible classes: binary restriction → minimal cost + witnesses.
    classes: HashMap<Word, GClass>,
    /// `|G[k]|` for each completed cost level `k`.
    g_counts: Vec<usize>,
    /// `|B[k]|` for each completed cost level `k`.
    b_counts: Vec<usize>,
}

impl SynthesisEngine {
    /// Engine for the paper's setting: 3 wires, 18-gate library, unit
    /// costs.
    pub fn unit_cost() -> Self {
        Self::new(GateLibrary::standard(3), CostModel::unit())
    }

    /// Engine over an explicit library and cost model.
    pub fn new(library: GateLibrary, model: CostModel) -> Self {
        let gate_images: Vec<Vec<u8>> = library
            .gates()
            .iter()
            .map(|g| g.perm().as_images().to_vec())
            .collect();
        let gate_inverse_images: Vec<Vec<u8>> = library
            .gates()
            .iter()
            .map(|g| g.perm().inverse().as_images().to_vec())
            .collect();
        let gate_banned: Vec<u64> = library.gates().iter().map(|g| g.banned_mask()).collect();
        let gate_costs: Vec<u32> = library
            .gates()
            .iter()
            .map(|g| model.cost(g.gate()))
            .collect();
        let identity: Word = (0..library.domain().len() as u8).collect();
        let mut seen = HashMap::new();
        seen.insert(
            identity.clone(),
            Meta {
                cost: 0,
                last_gate: u8::MAX,
            },
        );
        let mut pending = BTreeMap::new();
        pending.insert(0u32, vec![identity]);
        Self {
            library,
            model,
            gate_images,
            gate_inverse_images,
            gate_banned,
            gate_costs,
            seen,
            pending,
            completed: None,
            classes: HashMap::new(),
            g_counts: Vec::new(),
            b_counts: Vec::new(),
        }
    }

    /// The gate library in use.
    pub fn library(&self) -> &GateLibrary {
        &self.library
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.model
    }

    /// `|G[k]|` for every fully expanded level `k = 0, 1, …`.
    pub fn g_counts(&self) -> &[usize] {
        &self.g_counts
    }

    /// `|B[k]|` (new quantum circuits at exact cost `k`) for every fully
    /// expanded level.
    pub fn b_counts(&self) -> &[usize] {
        &self.b_counts
    }

    /// Total number of distinct quantum circuits discovered so far
    /// (`|A[completed]|`).
    pub fn a_size(&self) -> usize {
        self.seen.len()
    }

    /// The number of distinct reversible classes discovered so far —
    /// the cumulative `Σ |G[k]|`. When this reaches `(2^n − 1)!` (5040
    /// for three wires) every NOT-free reversible function has a known
    /// minimal cost.
    pub fn classes_found(&self) -> usize {
        self.classes.len()
    }

    /// Expands FMCF levels until cost `cb` is fully processed.
    ///
    /// Levels already expanded are reused; the search is cumulative.
    pub fn expand_to_cost(&mut self, cb: u32) {
        while self.completed.is_none_or(|c| c < cb) {
            if !self.expand_next_level() {
                break; // search space exhausted
            }
        }
    }

    /// Expands exactly one cost level. Returns `false` when the reachable
    /// space is exhausted.
    fn expand_next_level(&mut self) -> bool {
        let Some((&cost, _)) = self.pending.first_key_value() else {
            return false;
        };
        let bucket = self.pending.remove(&cost).expect("bucket exists");
        // Defensive: levels complete in ascending order, and every element
        // of the bucket was discovered at minimal cost (positive gate
        // costs make this Dijkstra-like expansion exact).
        debug_assert!(self.completed.map_or(cost == 0, |c| cost > c));

        // 1. Register reversible classes (pre_G[cost] − earlier G's: the
        //    subtraction is implicit in first-seen-wins).
        let binary = self.library.binary_set();
        let mut g_new = 0usize;
        for word in &bucket {
            if let Some(restriction) = restrict(word, binary) {
                match self.classes.get_mut(&restriction) {
                    None => {
                        self.classes.insert(
                            restriction,
                            GClass {
                                cost,
                                witnesses: vec![word.clone()],
                            },
                        );
                        g_new += 1;
                    }
                    Some(class) if class.cost == cost => {
                        class.witnesses.push(word.clone());
                    }
                    Some(_) => {} // already realizable at lower cost
                }
            }
        }

        // 2. Expand reasonable products into later buckets.
        for word in &bucket {
            let image_mask = binary_image_mask(word, binary);
            for gate_idx in 0..self.gate_images.len() {
                if image_mask & self.gate_banned[gate_idx] != 0 {
                    continue; // not a reasonable product
                }
                let next: Word = word
                    .iter()
                    .map(|&mid| self.gate_images[gate_idx][mid as usize])
                    .collect();
                let next_cost = cost + self.gate_costs[gate_idx];
                if !self.seen.contains_key(&next) {
                    self.seen.insert(
                        next.clone(),
                        Meta {
                            cost: next_cost,
                            last_gate: gate_idx as u8,
                        },
                    );
                    self.pending.entry(next_cost).or_default().push(next);
                }
            }
        }

        // 3. Record level statistics. With non-unit costs some levels are
        //    empty; fill the gap so indices equal costs.
        let prev = self.completed.map_or(-1i64, |c| c as i64);
        for _ in prev + 1..cost as i64 {
            self.b_counts.push(0);
            self.g_counts.push(0);
        }
        self.b_counts.push(bucket.len());
        self.g_counts.push(g_new);
        self.completed = Some(cost);
        true
    }

    /// The paper's MCE (Minimum_Cost_Expressing) algorithm: synthesizes a
    /// minimal-cost implementation of the reversible function `target`
    /// (a permutation of `{1, …, 2^n}`), searching up to cost `cb`.
    ///
    /// Returns `None` if the target's minimal cost exceeds `cb`
    /// (the paper's `flag = 0` case).
    ///
    /// # Panics
    ///
    /// Panics if `target.degree() != 2^n` for the library's wire count.
    pub fn synthesize(&mut self, target: &Perm, cb: u32) -> Option<Synthesis> {
        let n = self.library.domain().wires();
        let patterns = 1usize << n;
        assert_eq!(
            target.degree(),
            patterns,
            "target must permute the {patterns} binary patterns"
        );

        // Theorem 2: strip a NOT layer d[0] so that the remainder fixes
        // pattern 1 (all zeros). d[0] maps pattern 1 to target⁻¹(1)… i.e.
        // its bits are those of the pattern that target sends to 1.
        let bits = target.preimage(1) - 1;
        let not_layer: Vec<Gate> = (0..n)
            .filter(|w| bits & (1 << (n - 1 - w)) != 0)
            .map(Gate::not)
            .collect();
        let d0 = not_layer_perm(bits, n);
        let reduced = d0.inverse() * target.clone();
        debug_assert_eq!(reduced.image(1), 1);

        // Search G[k] levels for the reduced permutation.
        let key: Word = reduced.as_images().iter().copied().collect();
        loop {
            if let Some(class) = self.classes.get(&key) {
                if self.completed.is_some_and(|c| c >= class.cost) {
                    let witness = class.witnesses[0].clone();
                    let count = class.witnesses.len();
                    let cost = class.cost;
                    let mut gates = not_layer.clone();
                    gates.extend(self.reconstruct(&witness));
                    return Some(Synthesis {
                        circuit: Circuit::new(n, gates),
                        cost,
                        not_layer: not_layer.clone(),
                        implementation_count: count,
                    });
                }
            }
            let done = self.completed.map_or(0, |c| c + 1);
            if done > cb {
                return None;
            }
            if !self.expand_next_level() {
                return None;
            }
        }
    }

    /// Returns every distinct minimal-cost implementation of `target`
    /// found by the level search (one circuit per distinct domain
    /// permutation), up to cost `cb`.
    ///
    /// The paper reports 2 such implementations for Peres and 4 for
    /// Toffoli.
    pub fn synthesize_all(&mut self, target: &Perm, cb: u32) -> Vec<Synthesis> {
        let Some(first) = self.synthesize(target, cb) else {
            return Vec::new();
        };
        let n = self.library.domain().wires();
        let bits = target.preimage(1) - 1;
        let d0 = not_layer_perm(bits, n);
        let reduced = d0.inverse() * target.clone();
        let key: Word = reduced.as_images().iter().copied().collect();
        let class = self.classes.get(&key).expect("synthesize found the class");
        let witnesses = class.witnesses.clone();
        witnesses
            .iter()
            .map(|w| {
                let mut gates = first.not_layer.clone();
                gates.extend(self.reconstruct(w));
                Synthesis {
                    circuit: Circuit::new(n, gates),
                    cost: first.cost,
                    not_layer: first.not_layer.clone(),
                    implementation_count: witnesses.len(),
                }
            })
            .collect()
    }

    /// Reconstructs the gate cascade that produced `word`, walking the
    /// `last_gate` chain back to the identity.
    fn reconstruct(&self, word: &Word) -> Vec<Gate> {
        let mut gates = Vec::new();
        let mut current = word.clone();
        loop {
            let meta = self.seen.get(&current).expect("witness is in A");
            if meta.last_gate == u8::MAX {
                break;
            }
            let gate_idx = meta.last_gate as usize;
            gates.push(self.library.gates()[gate_idx].gate());
            // parent = current * gate⁻¹.
            current = current
                .iter()
                .map(|&mid| self.gate_inverse_images[gate_idx][mid as usize])
                .collect();
        }
        gates.reverse();
        gates
    }

    /// The minimal quantum cost of `target`, if within `cb`.
    pub fn minimal_cost(&mut self, target: &Perm, cb: u32) -> Option<u32> {
        self.synthesize(target, cb).map(|s| s.cost)
    }

    /// All reversible circuits of minimal cost exactly `k` — the paper's
    /// set `G[k]` — as `(binary permutation, witness circuit)` pairs.
    ///
    /// Expands levels up to `k` if necessary. Pairs are sorted by the
    /// binary permutation for determinism.
    pub fn reversible_circuits_at_cost(&mut self, k: u32) -> Vec<(Perm, Circuit)> {
        self.expand_to_cost(k);
        let n = self.library.domain().wires();
        let mut out: Vec<(Perm, Circuit)> = self
            .classes
            .iter()
            .filter(|(_, class)| class.cost == k)
            .map(|(key, class)| {
                let images: Vec<usize> = key.iter().map(|&b| b as usize + 1).collect();
                let perm = Perm::from_images(&images).expect("valid restriction");
                let circuit = Circuit::new(n, self.reconstruct(&class.witnesses[0]));
                (perm, circuit)
            })
            .collect();
        out.sort_by(|(a, _), (b, _)| a.cmp(b));
        out
    }

    /// Synthesizes a circuit realizing an arbitrary (possibly
    /// *probabilistic*) specification: `images[i]` is the 1-based domain
    /// index that binary input pattern `i + 1` must map to. Mixed-valued
    /// targets are allowed — this is the Section 4 front-end used for
    /// quantum random generators and probabilistic machines.
    ///
    /// Returns the first (minimal-cost) matching cascade within cost `cb`,
    /// or `None`.
    ///
    /// # Panics
    ///
    /// Panics if `images` does not have one entry per binary pattern or
    /// mentions an index outside the domain.
    pub fn synthesize_quaternary(&mut self, images: &[usize], cb: u32) -> Option<Synthesis> {
        let n = self.library.domain().wires();
        let binary = self.library.binary_set().to_vec();
        assert_eq!(images.len(), binary.len(), "one target per binary pattern");
        for &img in images {
            assert!(
                img >= 1 && img <= self.library.domain().len(),
                "target index {img} outside the domain"
            );
        }
        let matches = |word: &Word| -> bool {
            binary
                .iter()
                .zip(images)
                .all(|(&p, &img)| word[p - 1] as usize + 1 == img)
        };
        let mut level = 0u32;
        loop {
            if self.completed.is_none_or(|c| c < level) && !self.expand_next_level() {
                return None;
            }
            let completed = self.completed.expect("at least one level done");
            while level <= completed {
                // Scan the elements discovered at exactly `level`.
                let hit: Option<Word> = self
                    .seen
                    .iter()
                    .find(|(w, m)| m.cost == level && matches(w))
                    .map(|(w, _)| w.clone());
                if let Some(word) = hit {
                    let gates = self.reconstruct(&word);
                    return Some(Synthesis {
                        circuit: Circuit::new(n, gates),
                        cost: level,
                        not_layer: Vec::new(),
                        implementation_count: 1,
                    });
                }
                level += 1;
                if level > cb {
                    return None;
                }
            }
        }
    }
}

/// Restriction of a 0-based image word to the binary index set, if closed.
fn restrict(word: &Word, binary: &[usize]) -> Option<Word> {
    let mut out = Vec::with_capacity(binary.len());
    for &p in binary {
        let img = word[p - 1] as usize + 1;
        let pos = binary.binary_search(&img).ok()?;
        out.push(pos as u8);
    }
    Some(out.into_boxed_slice())
}

/// Bitmask of the images of the binary set under a word.
fn binary_image_mask(word: &Word, binary: &[usize]) -> u64 {
    binary
        .iter()
        .map(|&p| 1u64 << word[p - 1])
        .fold(0, |acc, bit| acc | bit)
}

/// The permutation of `{1, …, 2^n}` realized by NOT gates on the wires
/// whose bit is set in `bits` (wire A = most significant).
fn not_layer_perm(bits: usize, n: usize) -> Perm {
    let images: Vec<usize> = (0..1usize << n).map(|p| (p ^ bits) + 1).collect();
    Perm::from_images(&images).expect("xor is a bijection")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::known;

    #[test]
    fn level_0_is_identity_only() {
        let mut e = SynthesisEngine::unit_cost();
        e.expand_to_cost(0);
        assert_eq!(e.g_counts(), &[1]);
        assert_eq!(e.b_counts(), &[1]);
        assert_eq!(e.a_size(), 19); // identity + 18 gates discovered
    }

    #[test]
    fn table_2_prefix() {
        // |G[k]| for k = 0..3: the verified counts (see
        // `census::EXPECTED_TABLE_2` for why k = 2, 3 differ from the
        // paper's printed 30 and 52).
        let mut e = SynthesisEngine::unit_cost();
        e.expand_to_cost(3);
        assert_eq!(e.g_counts(), &[1, 6, 24, 51]);
    }

    #[test]
    fn g1_is_feynman_gates_only() {
        // "G[1] consists of the binary-input binary-output circuits which
        // are the combinations of 1 Feynman gate" — six of them.
        let mut e = SynthesisEngine::unit_cost();
        e.expand_to_cost(1);
        assert_eq!(e.g_counts()[1], 6);
    }

    #[test]
    fn peres_synthesis_cost_4() {
        let mut e = SynthesisEngine::unit_cost();
        let syn = e.synthesize(&known::peres_perm(), 5).expect("reachable");
        assert_eq!(syn.cost, 4);
        assert!(syn.not_layer.is_empty());
        assert!(syn.circuit.verify_against_binary_perm(&known::peres_perm()));
    }

    #[test]
    fn toffoli_synthesis_cost_5() {
        let mut e = SynthesisEngine::unit_cost();
        let syn = e.synthesize(&known::toffoli_perm(), 6).expect("reachable");
        assert_eq!(syn.cost, 5);
        assert!(syn
            .circuit
            .verify_against_binary_perm(&known::toffoli_perm()));
    }

    #[test]
    fn feynman_costs_1() {
        let mut e = SynthesisEngine::unit_cost();
        let target: Perm = "(5,7)(6,8)".parse::<Perm>().unwrap().extended(8);
        let syn = e.synthesize(&target, 3).expect("one Feynman gate");
        assert_eq!(syn.cost, 1);
        assert_eq!(syn.circuit.gates().len(), 1);
    }

    #[test]
    fn identity_costs_0() {
        let mut e = SynthesisEngine::unit_cost();
        let syn = e.synthesize(&Perm::identity(8), 2).expect("trivial");
        assert_eq!(syn.cost, 0);
        assert!(syn.circuit.gates().is_empty());
    }

    #[test]
    fn pure_not_target_costs_0() {
        // NOT(C): (1,2)(3,4)(5,6)(7,8) — coset layer only.
        let target: Perm = "(1,2)(3,4)(5,6)(7,8)".parse().unwrap();
        let mut e = SynthesisEngine::unit_cost();
        let syn = e.synthesize(&target, 2).expect("not layer");
        assert_eq!(syn.cost, 0);
        assert_eq!(syn.not_layer, vec![Gate::not(2)]);
        assert!(syn.circuit.verify_against_binary_perm(&target));
    }

    #[test]
    fn cost_exceeding_bound_returns_none() {
        let mut e = SynthesisEngine::unit_cost();
        // Toffoli needs 5.
        assert!(e.synthesize(&known::toffoli_perm(), 4).is_none());
    }

    #[test]
    fn synthesize_all_returns_distinct_verified_circuits() {
        let mut e = SynthesisEngine::unit_cost();
        let all = e.synthesize_all(&known::peres_perm(), 5);
        assert!(!all.is_empty());
        for syn in &all {
            assert_eq!(syn.cost, 4);
            assert!(syn.circuit.verify_against_binary_perm(&known::peres_perm()));
        }
        // Distinct circuits.
        let mut circuits: Vec<String> = all.iter().map(|s| s.circuit.to_string()).collect();
        circuits.sort();
        circuits.dedup();
        assert_eq!(circuits.len(), all.len());
    }

    #[test]
    fn weighted_costs_change_levels() {
        // With Feynman cost 1 and V costs 2, Peres should cost
        // 1 (Feynman) + 3 × 2 (V gates) = 7.
        let lib = GateLibrary::standard(3);
        let mut e = SynthesisEngine::new(lib, CostModel::weighted(2, 2, 1));
        let syn = e.synthesize(&known::peres_perm(), 8).expect("reachable");
        assert_eq!(syn.cost, 7);
        assert!(syn.circuit.verify_against_binary_perm(&known::peres_perm()));
    }

    #[test]
    fn two_wire_engine_works() {
        // On 2 wires the only reversible circuits are Feynman products.
        let lib = GateLibrary::standard(2);
        let mut e = SynthesisEngine::new(lib, CostModel::unit());
        // CNOT (B ^= A): patterns (1,0)↔? pattern idx: 1=(00),2=(01),
        // 3=(10),4=(11); B^=A swaps 3,4.
        let target: Perm = "(3,4)".parse::<Perm>().unwrap().extended(4);
        let syn = e.synthesize(&target, 3).expect("single CNOT");
        assert_eq!(syn.cost, 1);
    }
}
